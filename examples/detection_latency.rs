//! A miniature Fig. 7: inject faults into the forwarded data of one
//! workload and plot the detection-latency distribution.
//!
//! ```sh
//! cargo run --release --example detection_latency -- [workload] [injections]
//! ```

use flexstep_bench::{
    by_name, inject_random_fault, Clock, FabricConfig, LatencyStats, Scale, VerifiedRun,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("streamcluster", String::as_str);
    let injections: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(40);
    let workload = by_name(name).ok_or("unknown workload")?;
    let program = workload.program(Scale::Test);
    let clock = Clock::paper();

    // Fault-free span, to draw injection instants from.
    let mut probe = VerifiedRun::dual_core(&program, FabricConfig::paper())?;
    let horizon = probe.run_to_completion(u64::MAX).main_finish_cycle;

    let mut rng = StdRng::seed_from_u64(99);
    let mut latencies = Vec::new();
    let mut masked = 0;
    for _ in 0..injections {
        let at = rng.gen_range(horizon / 10..horizon);
        let mut run = VerifiedRun::dual_core(&program, FabricConfig::paper())?;
        if !run.run_until_cycle(at) {
            continue;
        }
        let mut record = None;
        loop {
            let now = run.fs.soc.now();
            if let Some(r) = inject_random_fault(&mut run.fs.fabric, 0, now, &mut rng) {
                record = Some(r);
                break;
            }
            if !run.step_once() {
                break;
            }
        }
        let Some(record) = record else { continue };
        let report = run.run_to_completion(u64::MAX);
        match report.detections.first() {
            Some(d) => latencies.push(d.detected_at - record.at_cycle),
            None => masked += 1,
        }
    }

    println!(
        "workload {name}: {} detections, {masked} masked",
        latencies.len()
    );
    if let Some(stats) = LatencyStats::from_cycles(&latencies, clock) {
        println!(
            "latency µs: mean {:.1}  p50 {:.1}  p99 {:.1}  max {:.1}",
            stats.mean_us, stats.p50_us, stats.p99_us, stats.max_us
        );
        let mut us: Vec<f64> = latencies.iter().map(|&c| clock.cycles_to_us(c)).collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!("distribution:");
        for bucket in 0..12 {
            let lo = bucket as f64 * 8.0;
            let hi = lo + 8.0;
            let n = us.iter().filter(|&&v| v >= lo && v < hi).count();
            println!("  {:>3.0}-{:>3.0} µs |{}", lo, hi, "#".repeat(n));
        }
    }
    Ok(())
}
