//! A miniature Fig. 7: inject faults into the forwarded data of one
//! workload via declarative fault plans and plot the detection-latency
//! distribution.
//!
//! ```sh
//! cargo run --release --example detection_latency -- [workload] [injections]
//! ```

use flexstep_bench::{by_name, Clock, FaultPlan, LatencyStats, Scale, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("streamcluster", String::as_str);
    let injections: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(40);
    let workload = by_name(name).ok_or("unknown workload")?;
    let program = workload.program(Scale::Test);
    let clock = Clock::paper();

    // Fault-free span, to draw injection instants from.
    let mut probe = Scenario::new(&program).cores(2).build()?;
    let horizon = probe.run_to_completion(u64::MAX).main_finish_cycle;

    let mut rng = StdRng::seed_from_u64(99);
    let mut latencies = Vec::new();
    let mut masked = 0;
    for _ in 0..injections {
        let at = rng.gen_range(horizon / 10..horizon);
        let shot_seed: u64 = rng.gen();
        let mut run = Scenario::new(&program)
            .cores(2)
            .fault_plan(FaultPlan::random_with_seed(at, shot_seed))
            .build()?;
        let report = run.run_to_completion(u64::MAX);
        let Some(injection) = report.injections.first() else {
            continue; // finished before the shot landed
        };
        match report.detections.first() {
            Some(d) => latencies.push(d.detected_at - injection.at_cycle),
            None => masked += 1,
        }
    }

    println!(
        "workload {name}: {} detections, {masked} masked",
        latencies.len()
    );
    if let Some(stats) = LatencyStats::from_cycles(&latencies, clock) {
        println!(
            "latency µs: mean {:.1}  p50 {:.1}  p99 {:.1}  max {:.1}",
            stats.mean_us, stats.p50_us, stats.p99_us, stats.max_us
        );
        let mut us: Vec<f64> = latencies.iter().map(|&c| clock.cycles_to_us(c)).collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!("distribution:");
        for bucket in 0..12 {
            let lo = bucket as f64 * 8.0;
            let hi = lo + 8.0;
            let n = us.iter().filter(|&&v| v >= lo && v < hi).count();
            println!("  {:>3.0}-{:>3.0} µs |{}", lo, hi, "#".repeat(n));
        }
    }
    Ok(())
}
