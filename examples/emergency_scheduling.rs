//! The Fig. 1 scenario: three tasks on two cores, an emergency triggers
//! error checking for τ2, and FlexStep's asynchronous, preemptive
//! checking lets every deadline be met — where rigid LockStep (Fig. 1(a))
//! would waste a whole core on checking everything.
//!
//! ```sh
//! cargo run --release --example emergency_scheduling
//! ```

use flexstep::core::FabricConfig;
use flexstep::isa::{asm::Assembler, XReg};
use flexstep::kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep::kernel::{KernelConfig, System};
use flexstep::sim::SocConfig;
use std::sync::Arc;

fn spin(name: &str, iters: i64, slot: u64) -> Arc<flexstep::isa::Program> {
    let mut asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.la(XReg::A2, "buf");
    asm.li(XReg::A0, iters);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    Arc::new(asm.finish().unwrap())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = 1_600_000u64; // one millisecond of cycles at 1.6 GHz

    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(), // asynchronous checking with DMA spill
        KernelConfig::default(),
    );

    // τ1: non-verification, period 2 ms, runs on core 0.
    sys.add_task(TaskDef {
        id: TaskId(1),
        name: "τ1".into(),
        class: TaskClass::Normal,
        body: TaskBody::Guest(spin("t1", 150_000, 0)),
        period: 2 * ms,
        phase: 0,
        core: 0,
        checkers: vec![],
        max_jobs: Some(3),
    })?;
    // τ2: the emergency — its job must be error-checked (double check).
    // FlexStep verifies it asynchronously on core 1.
    sys.add_task(TaskDef {
        id: TaskId(2),
        name: "τ2".into(),
        class: TaskClass::Verified2,
        body: TaskBody::Guest(spin("t2", 150_000, 1)),
        period: 5 * ms,
        phase: 0,
        core: 0,
        checkers: vec![1],
        max_jobs: Some(1),
    })?;
    // τ3: non-verification, short jobs on core 1 — it freely preempts
    // the checker thread there (the paper's headline flexibility).
    sys.add_task(TaskDef {
        id: TaskId(3),
        name: "τ3".into(),
        class: TaskClass::Normal,
        body: TaskBody::Guest(spin("t3", 50_000, 2)),
        period: 2 * ms,
        phase: 0,
        core: 1,
        checkers: vec![],
        max_jobs: Some(3),
    })?;

    sys.boot()?;
    let summary = sys.run_until(7 * ms);

    println!("FlexStep schedule over 7 ms (one column ≈ 100 µs):");
    println!("{}", sys.trace.render_core(0, 7 * ms, ms / 10));
    println!("{}", sys.trace.render_core(1, 7 * ms, ms / 10));
    println!();
    println!(
        "{:<8} {:>9} {:>10} {:>7} {:>14}",
        "task", "released", "completed", "misses", "max response"
    );
    for t in &summary.tasks {
        println!(
            "{:<8} {:>9} {:>10} {:>7} {:>11} cyc",
            t.name, t.released, t.completed, t.misses, t.max_response
        );
    }
    println!();
    let checker = sys.checker_state(1);
    println!(
        "τ2 verification: {} segments checked, {} failed — all deadlines met: {}",
        checker.segments_checked,
        checker.segments_failed,
        summary.total_misses() == 0
    );
    assert_eq!(
        summary.total_misses(),
        0,
        "the Fig. 1(c) schedule meets every deadline"
    );
    Ok(())
}
