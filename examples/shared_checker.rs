//! §III-C conflict resolution: three main cores compete for a single
//! checker core. The arbiter grants the channel in request order; the
//! waiting mains keep buffering checking segments into their own FIFOs
//! (spilling to main memory over DMA), so *no* checking work is lost and
//! every stream is eventually verified — the N:1 consolidation scenario
//! that rigid core-bound LockStep cannot express at all.
//!
//! ```sh
//! cargo run --release --example shared_checker
//! ```

use flexstep::core::{FabricConfig, Scenario, Topology};
use flexstep::isa::{asm::Assembler, Program, XReg};

/// A checksum loop in a private text/data window per main core.
fn job(slot: u64, iters: i64) -> Result<Program, Box<dyn std::error::Error>> {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A1, data as i64);
    asm.li(XReg::A3, 0);
    asm.label("loop")?;
    asm.sd(XReg::A1, XReg::A0, 0);
    asm.ld(XReg::A2, XReg::A1, 0);
    asm.add(XReg::A3, XReg::A3, XReg::A2);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "loop");
    asm.ecall();
    Ok(asm.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = [job(0, 12_000)?, job(1, 8_000)?, job(2, 4_000)?];
    // Cores 0–2 are mains, core 3 the single shared checker.
    let mut run = Scenario::new(&programs[0])
        .program(&programs[1])
        .program(&programs[2])
        .cores(4)
        .topology(Topology::SharedChecker { checkers: 1 })
        .fabric(FabricConfig::paper())
        .build()?;
    let report = run.run_to_completion(500_000_000);

    println!("Shared-checker run: 3 main cores -> 1 checker core");
    println!();
    println!(
        "{:<8} {:>10} {:>14} {:>10}",
        "main", "completed", "finish cycle", "retired"
    );
    for m in &report.per_main {
        println!(
            "{:<8} {:>10} {:>14} {:>10}",
            format!("core {}", m.core),
            m.completed,
            m.finish_cycle,
            m.retired
        );
    }
    println!();
    let arbiter = &report.arbiters[0];
    println!(
        "arbiter: {} immediate grant(s), {} conflict(s), {} hand-over(s)",
        arbiter.immediate_grants, arbiter.conflicts, arbiter.switches
    );
    println!(
        "checker: {} segments verified, {} failed, drained at cycle {}",
        report.segments_checked, report.segments_failed, report.drain_cycle
    );
    assert!(report.per_main.iter().all(|m| m.completed));
    assert_eq!(report.segments_failed, 0, "clean run must verify clean");
    Ok(())
}
