//! §III-C conflict resolution: three main cores compete for a single
//! checker core. The arbiter grants the channel in request order; the
//! waiting mains keep buffering checking segments into their own FIFOs
//! (spilling to main memory over DMA), so *no* checking work is lost and
//! every stream is eventually verified — the N:1 consolidation scenario
//! that rigid core-bound LockStep cannot express at all.
//!
//! ```sh
//! cargo run --release --example shared_checker
//! ```

use flexstep::core::share::SharedCheckerRun;
use flexstep::core::FabricConfig;
use flexstep::isa::{asm::Assembler, Program, XReg};

/// A checksum loop in a private text/data window per main core.
fn job(slot: u64, iters: i64) -> Result<Program, Box<dyn std::error::Error>> {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A1, data as i64);
    asm.li(XReg::A3, 0);
    asm.label("loop")?;
    asm.sd(XReg::A1, XReg::A0, 0);
    asm.ld(XReg::A2, XReg::A1, 0);
    asm.add(XReg::A3, XReg::A3, XReg::A2);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "loop");
    asm.ecall();
    Ok(asm.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = vec![job(0, 12_000)?, job(1, 8_000)?, job(2, 4_000)?];
    let mut run = SharedCheckerRun::new(&programs, FabricConfig::paper())?;
    let report = run.run_to_completion(500_000_000);

    println!("Shared-checker run: 3 main cores -> 1 checker core");
    println!();
    println!(
        "{:<8} {:>10} {:>14} {:>10}",
        "main", "completed", "finish cycle", "retired"
    );
    for m in &report.mains {
        println!(
            "{:<8} {:>10} {:>14} {:>10}",
            format!("core {}", m.core),
            m.completed,
            m.finish_cycle,
            m.retired
        );
    }
    println!();
    println!(
        "arbiter: {} immediate grant(s), {} conflict(s), {} hand-over(s)",
        report.arbiter.immediate_grants, report.arbiter.conflicts, report.arbiter.switches
    );
    println!(
        "checker: {} segments verified, {} failed, drained at cycle {}",
        report.segments_checked, report.segments_failed, report.drain_cycle
    );
    assert!(report.mains.iter().all(|m| m.completed));
    assert_eq!(report.segments_failed, 0, "clean run must verify clean");
    Ok(())
}
