//! Rollback recovery and graceful degradation, end to end:
//!
//! 1. A dual-core run under `RecoveryPolicy::Rollback` — a fault plan
//!    corrupts a forwarded store, the checker detects the mismatch, and
//!    instead of merely flagging it the harness restores the main core
//!    from the last verified segment boundary's SCP checkpoint, flushes
//!    the in-flight DBC stream, and re-executes until the segment
//!    verifies clean. The final architectural state matches a fault-free
//!    golden run bit for bit.
//! 2. A 6-core shared-checker pool where one of the two checkers dies
//!    mid-run (`kill_checker_at`): the arbiter drains the dead checker,
//!    re-pairs its mains onto the survivor, and the run completes with
//!    the degradation accounted for in the report.
//!
//! ```sh
//! cargo run --release --example recovery
//! ```

use flexstep::core::{FabricConfig, FaultPlan, FaultTarget, RecoveryPolicy, Scenario, Topology};
use flexstep::isa::{asm::Assembler, XReg};

/// A store-heavy checksum loop assembled into a per-slot text/data
/// window so several mains can run disjoint copies side by side.
fn checksum_loop(slot: u64) -> Result<flexstep::isa::asm::Program, Box<dyn std::error::Error>> {
    let mut asm = Assembler::with_bases(
        "checksum",
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.data_label("acc")?;
    asm.data_u64s(&[0]);
    asm.la(XReg::A1, "acc");
    asm.li(XReg::A2, 4000);
    asm.li(XReg::A0, 0);
    asm.label("loop")?;
    asm.add(XReg::A0, XReg::A0, XReg::A2);
    asm.sd(XReg::A1, XReg::A0, 0);
    asm.addi(XReg::A2, XReg::A2, -1);
    asm.bnez(XReg::A2, "loop");
    asm.ecall();
    Ok(asm.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. rollback recovery on a paired dual core ---------------------
    let program = checksum_loop(0)?;

    // Golden reference: same program, no faults.
    let mut golden = Scenario::new(&program)
        .cores(2)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .build()?;
    let golden_report = golden.run_to_completion(50_000_000);
    assert!(golden_report.completed);
    let golden_state = golden.soc().core(0).state.snapshot();

    // Faulted run: one bit flip in a forwarded store entry, recovered by
    // rolling back to the enclosing segment's checkpoint.
    let mut run = Scenario::new(&program)
        .cores(2)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .fault_plan(FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(7))
        .recovery(RecoveryPolicy::Rollback { max_retries: 3 })
        .build()?;
    let report = run.run_to_completion(50_000_000);
    assert!(report.completed);

    let m = &report.per_main[0];
    println!("rollback recovery (dual core):");
    println!(
        "  detections {} | recoveries {} | unrecovered {} | wasted cycles {}",
        report.detections.len(),
        m.recoveries,
        m.unrecovered,
        m.wasted_cycles
    );
    for (i, lat) in m.recovery_latency_cycles.iter().enumerate() {
        println!("  recovery {i}: detect -> verified-again in {lat} cycles");
    }
    assert!(
        m.recoveries >= 1,
        "the planned fault must trigger a rollback"
    );
    assert_eq!(m.unrecovered, 0, "one retry is enough for a transient");
    assert_eq!(
        run.soc().core(0).state.snapshot(),
        golden_state,
        "recovered state matches the fault-free run bit for bit"
    );
    println!("  final architectural state == fault-free golden run");

    // --- 2. graceful degradation in a shared-checker pool ---------------
    let programs: Vec<_> = (0..4).map(checksum_loop).collect::<Result<_, _>>()?;
    let mut sc = Scenario::new(&programs[0])
        .cores(6)
        .topology(Topology::SharedChecker { checkers: 2 })
        .fabric(FabricConfig::paper())
        .fault_plan(FaultPlan::kill_checker_at(5_000).on_checker(0))
        .recovery(RecoveryPolicy::Rollback { max_retries: 3 });
    for p in &programs[1..] {
        sc = sc.program(p);
    }
    let mut pool = sc.build()?;
    let pool_report = pool.run_to_completion(200_000_000);
    assert!(pool_report.completed);

    println!();
    println!("graceful degradation (6 cores, 2-checker pool, checker 0 killed):");
    println!(
        "  checkers lost {} | re-pair latencies {:?} cycles | warnings {:?}",
        pool_report.checkers_lost, pool_report.repair_latency_cycles, pool_report.warnings
    );
    assert_eq!(pool_report.checkers_lost, 1);
    assert!(
        !pool_report.repair_latency_cycles.is_empty(),
        "orphaned mains re-pair onto the survivor"
    );
    assert!(
        pool_report.warnings.is_empty(),
        "a survivor exists, so nothing degrades to unchecked execution"
    );
    println!("  all mains re-paired onto the surviving checker; run verified");

    println!();
    println!("report JSON:");
    println!("{}", pool_report.to_json());
    Ok(())
}
