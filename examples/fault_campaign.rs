//! A Fig. 7-style fault-injection campaign on a many-core SoC, in a
//! dozen lines through the `flexstep_bench::campaign` runner.
//!
//! Hundreds of `FaultPlan` shots are fired across a 16-core
//! shared-checker SoC in parallel simulation chunks; every detection is
//! attributed one-to-one to the injection that caused it (each shot is
//! consumed by at most one detection, so `detected <= landed <= armed`
//! holds by construction), and the report splits the latency
//! distribution per checker pool.
//!
//! ```sh
//! cargo run --release --example fault_campaign -- [cores]
//! ```

use flexstep_bench::campaign::{campaign_row, CampaignConfig};
use flexstep_bench::latency_histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    let cfg = CampaignConfig::quick(cores);
    println!(
        "{cores}-core campaign: {} chunks x {} shots = {} armed",
        cfg.runs,
        cfg.shots_per_run,
        cfg.armed()
    );
    let row = campaign_row(&cfg)?;

    println!(
        "outcome: {} landed, {} expired, {} detected \
         (coverage {:.1}% of landed, {:.1}% of armed)",
        row.landed,
        row.expired,
        row.detected,
        100.0 * row.coverage_landed(),
        100.0 * row.coverage_armed(),
    );
    if let Some(s) = row.stats {
        println!(
            "latency: mean {:.1} µs, p50 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
            s.mean_us, s.p50_us, s.p99_us, s.max_us
        );
        println!(
            "distribution 0..120 µs: |{}|",
            latency_histogram(&row.latencies_us)
        );
    }
    println!();
    println!(
        "per checker pool ({} pools over {} mains):",
        row.checkers, row.mains
    );
    for pool in &row.per_pool {
        println!(
            "  checker {:>3}: {:>3}/{:>3} detected, mean {} µs",
            pool.core,
            pool.detected,
            pool.landed,
            pool.stats
                .map_or("  n/a".into(), |s| format!("{:>5.1}", s.mean_us)),
        );
    }

    assert!(row.completed, "every chunk must finish");
    assert!(
        row.detected <= row.landed && row.landed <= row.armed,
        "one-to-one attribution keeps detected <= landed <= armed"
    );
    assert_eq!(
        row.per_pool.iter().map(|p| p.detected).sum::<usize>(),
        row.detected,
        "pool splits partition the campaign"
    );
    Ok(())
}
