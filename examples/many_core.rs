//! Many-core FlexStep: a 16-core SoC with a pool of shared checkers,
//! built in a dozen lines through the `Scenario` front door — the
//! ROADMAP's Fig. 8-style experiment as an example.
//!
//! Twelve main cores each run their own workload in a private address
//! window; four checker cores are shared 3:1 through §III-C FIFO
//! arbitration. A fault plan sprays bit flips across three streams, an
//! observer records the protocol, and the report attributes every
//! detection to the corrupted main core.
//!
//! ```sh
//! cargo run --release --example many_core -- [cores]
//! ```

use flexstep::core::{FabricConfig, FaultPlan, RecordingObserver, Scenario, Topology};
use flexstep::isa::Program;
// The same per-slot workload the `fig8` sweep simulates.
use flexstep_bench::manycore::many_core_job;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let checkers = (cores / 4).max(1);
    let mains = cores - checkers;

    let programs: Vec<Program> = (0..mains)
        .map(|i| many_core_job(i as u64, 1_500 + 200 * (i as i64 % 4)))
        .collect();

    // Three staggered random bit flips on three different streams
    // (armed early, while the segments are still in flight; later
    // channels queue for their shared checker and buffer longest).
    let plan = FaultPlan::none()
        .then_random_at(5_000)
        .on_channel(0)
        .then_random_at(12_000)
        .on_channel(mains / 2)
        .then_random_at(18_000)
        .on_channel(mains - 1)
        .with_seed(2025);

    let mut scenario = Scenario::new(&programs[0])
        .cores(cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .fault_plan(plan)
        .record_events();
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build()?;

    println!("{cores}-core SoC: {mains} mains -> {checkers} shared checkers (§III-C arbitration)");
    let report = run.run_to_completion(u64::MAX);

    println!();
    println!(
        "run: {} engine steps, drained at cycle {}, {} retired instructions",
        report.engine_steps, report.drain_cycle, report.retired
    );
    println!(
        "verification: {} segments checked, {} failed, {} backpressure stalls",
        report.segments_checked, report.segments_failed, report.backpressure_stalls
    );
    let (conflicts, switches) = report
        .arbiters
        .iter()
        .fold((0, 0), |(c, s), a| (c + a.conflicts, s + a.switches));
    println!("arbitration: {conflicts} conflicts, {switches} channel hand-overs");

    println!();
    println!(
        "fault plan: {} armed, {} landed, {} expired",
        report.shots_armed,
        report.injections.len(),
        report.shots_expired
    );
    // One-to-one attribution: each detection consumes the earliest
    // unconsumed injection on its main, so no shot is counted twice.
    let matched = report.matched_detections();
    for injection in &report.injections {
        let pair = matched
            .iter()
            .find(|m| m.main_core == injection.main_core && m.injected_at == injection.at_cycle);
        match pair {
            Some(m) => println!(
                "  core {:>2} {} @ cycle {:>7} -> detected by checker {} after {} cycles",
                injection.main_core,
                injection.target,
                injection.at_cycle,
                m.checker_core,
                m.latency_cycles(),
            ),
            None => println!(
                "  core {:>2} {} @ cycle {:>7} -> architecturally masked",
                injection.main_core, injection.target, injection.at_cycle
            ),
        }
    }

    let mut recorder = RecordingObserver::new();
    run.replay_events(&mut recorder);
    let summary = recorder.summary();
    println!();
    println!("observer summary: {}", summary.to_json());

    assert!(report.completed, "all mains must finish");
    assert!(switches > 0, "shared checkers must hand over");
    assert!(
        !report.injections.is_empty(),
        "the fault plan must land shots"
    );
    assert_eq!(
        summary.checks_passed + summary.checks_failed,
        report.segments_checked,
        "the observer saw every verdict"
    );
    Ok(())
}
