//! Visualising a many-core FlexStep schedule: a 16-core SoC with a
//! shared-checker pool, exported as Chrome `trace_event` JSON.
//!
//! The run records segment spans on every main core's lane, checker
//! occupancy (which main each checker was verifying, and when) on every
//! checker's lane, §III-C arbiter grants/parks, and instants for the
//! injected faults and their detections. Open the emitted file in
//! `chrome://tracing` or <https://ui.perfetto.dev>: the checker lanes
//! alternate between main-core colours exactly where the arbiters hand
//! channels over.
//!
//! ```sh
//! cargo run --release --example trace_schedule -- [out.trace.json]
//! ```

use flexstep::core::{FabricConfig, FaultPlan, Scenario, Topology};
use flexstep::isa::Program;
use flexstep_bench::manycore::many_core_job;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_schedule.trace.json".into());

    // The fig8 16-core layout: 12 mains, 4 shared checkers (3:1).
    let cores = 16;
    let checkers = 4;
    let mains = cores - checkers;
    let programs: Vec<Program> = (0..mains)
        .map(|i| many_core_job(i as u64, 900 + 150 * (i as i64 % 3)))
        .collect();

    // Two staggered bit flips so the trace shows detection instants.
    let plan = FaultPlan::none()
        .then_random_at(6_000)
        .on_channel(0)
        .then_random_at(14_000)
        .on_channel(mains - 1)
        .with_seed(42);

    let mut scenario = Scenario::new(&programs[0])
        .cores(cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .fault_plan(plan)
        .trace_to(&out);
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build()?;

    let report = run.run_to_completion(u64::MAX);
    let written = run.write_trace()?.expect("trace_to was configured");

    let trace = run.trace().expect("trace_to was configured");
    let (spans, instants, dropped) = (
        trace.spans_recorded(),
        trace.instants_recorded(),
        trace.dropped(),
    );
    println!(
        "{cores}-core SoC ({mains} mains -> {checkers} shared checkers): \
         {} segments checked, {} detections",
        report.segments_checked,
        report.detections.len()
    );
    println!(
        "trace: {spans} spans + {instants} instants ({dropped} dropped) -> {}",
        written.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");

    assert!(report.completed, "all mains must finish");
    assert!(
        spans >= report.segments_checked,
        "every verified segment is a span"
    );
    assert!(
        !report.detections.is_empty(),
        "the fault plan must produce visible detections"
    );
    let json = std::fs::read_to_string(&written)?;
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.trim_end().ends_with('}'));
    Ok(())
}
