//! A miniature Fig. 5: sweep task-set utilisation and print the
//! percentage of schedulable sets under LockStep, HMR and FlexStep.
//!
//! ```sh
//! cargo run --release --example schedulability
//! ```

use flexstep::sched::{sweep, Fig5Config};

fn main() {
    let cfg = Fig5Config {
        m: 8,
        n: 160,
        alpha: 0.125,
        beta: 0.125,
    };
    println!(
        "m={} n={} α={}% β={}%   (100 sets per point)",
        cfg.m,
        cfg.n,
        cfg.alpha * 100.0,
        cfg.beta * 100.0
    );
    println!(
        "{:>6} {:>10} {:>8} {:>10}",
        "util", "LockStep", "HMR", "FlexStep"
    );
    let axis: Vec<f64> = (0..=12).map(|i| 0.35 + 0.05 * f64::from(i)).collect();
    for p in sweep(&cfg, &axis, 100, 42) {
        let bar = |v: f64| "▮".repeat((v / 10.0).round() as usize);
        println!(
            "{:>6.2} {:>9.1}% {:>7.1}% {:>9.1}%   F|{}",
            p.utilization,
            p.lockstep,
            p.hmr,
            p.flexstep,
            bar(p.flexstep)
        );
    }
}
