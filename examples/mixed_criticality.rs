//! Mixed-criticality consolidation: the intro's motivating scenario —
//! tasks with *varying* reliability requirements sharing one multi-core
//! processor — taken all the way through the stack:
//!
//! 1. model the task set (§V: `T^N`, `T^V2`, `T^V3`) and check
//!    admission with Al. 3 (virtual-deadline density analysis),
//! 2. realise the admitted set on the simulated SoC with per-core DBC
//!    channels (verified tasks sharing a main core share a channel; a
//!    channel may carry more redundancy than one task strictly needs —
//!    "one-to-two, or more modes"),
//! 3. run everything under the FlexStep kernel as real guest programs,
//! 4. check that the analysis' promise holds at runtime: zero deadline
//!    misses, every verified job replay-checked.
//!
//! ```sh
//! cargo run --release --example mixed_criticality
//! ```

use flexstep::core::FabricConfig;
use flexstep::isa::{asm::Assembler, Program, XReg};
use flexstep::kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep::kernel::{KernelConfig, System};
use flexstep::sched::{FlexStepPartitioner, Partitioner, ReliabilityClass, SpTask, TaskSet};
use flexstep::sim::SocConfig;
use std::sync::Arc;

/// One millisecond of cycles at the paper's 1.6 GHz clock.
const MS: u64 = 1_600_000;

/// Builds a guest program whose execution time approximates `ms`
/// milliseconds (the spin loop costs ~7 cycles per iteration with the
/// store hitting L1).
fn workload(name: &str, ms: f64, slot: u64) -> Arc<Program> {
    let iters = (ms * MS as f64 / 7.0) as i64;
    let mut asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.la(XReg::A2, "buf");
    asm.li(XReg::A0, iters.max(1));
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    Arc::new(asm.finish().unwrap())
}

/// (name, WCET ms, period ms, class, main core, checker cores).
///
/// The placement concentrates the verified originals on core 0 sharing
/// one 1:2 channel to checkers {1, 2}, nav on core 3 with a 1:1 channel
/// to checker 4, and the non-verification tasks on the remaining
/// capacity — a channel-aware realisation of the demand Al. 3 admits.
type Placed = (
    &'static str,
    f64,
    f64,
    ReliabilityClass,
    usize,
    &'static [usize],
);

const SPEC: &[Placed] = &[
    (
        "attitude",
        1.0,
        5.0,
        ReliabilityClass::TripleCheck,
        0,
        &[1, 2],
    ), // flight-critical
    (
        "actuator",
        0.8,
        5.0,
        ReliabilityClass::DoubleCheck,
        0,
        &[1, 2],
    ), // shares the channel
    ("nav", 1.2, 10.0, ReliabilityClass::DoubleCheck, 3, &[4]),
    ("telemetry", 1.5, 10.0, ReliabilityClass::Normal, 3, &[]),
    ("logging", 2.0, 20.0, ReliabilityClass::Normal, 5, &[]),
    ("ui", 1.0, 20.0, ReliabilityClass::Normal, 5, &[]),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Admission: Al. 3's density analysis over the abstract set.
    let m = 6;
    let ts = TaskSet::new(
        SPEC.iter()
            .enumerate()
            .map(|(id, &(_, c, t, class, ..))| SpTask {
                id,
                wcet: c,
                period: t,
                class,
            })
            .collect(),
    );
    let partition = FlexStepPartitioner
        .partition(&ts, m)
        .expect("Al. 3 admits the mix on 6 cores");
    println!(
        "Al. 3 admission: schedulable on {m} cores, max core density {:.3}",
        partition.max_density()
    );
    println!(
        "(utilisation: {:.3} originals, {:.3} with verification copies)\n",
        ts.utilization(),
        ts.utilization_with_copies()
    );

    // 2–3. The channel-aware realisation, run as real guest programs.
    let mut sys = System::new(
        SocConfig::paper(m),
        FabricConfig::paper(),
        KernelConfig::default(),
    );
    let horizon = 40 * MS;
    println!("placement (channels are per main core):");
    for (id, &(name, c, t, class, core, checkers)) in SPEC.iter().enumerate() {
        let period = (t * MS as f64) as u64;
        println!(
            "  {:<10} {:?} on core {core}{}",
            name,
            class,
            if checkers.is_empty() {
                String::new()
            } else {
                format!(", checked on {checkers:?}")
            }
        );
        sys.add_task(TaskDef {
            id: TaskId(id as u32 + 1),
            name: name.into(),
            class: match class {
                ReliabilityClass::Normal => TaskClass::Normal,
                ReliabilityClass::DoubleCheck => TaskClass::Verified2,
                ReliabilityClass::TripleCheck => TaskClass::Verified3,
            },
            body: TaskBody::Guest(workload(name, c, id as u64)),
            period,
            phase: 0,
            core,
            checkers: checkers.to_vec(),
            max_jobs: Some(horizon / period),
        })?;
    }
    sys.boot()?;
    let summary = sys.run_until(horizon);

    // 4. Report and check.
    println!("\n40 ms of consolidated execution:");
    println!(
        "{:<14} {:>8} {:>9} {:>6} {:>16}",
        "task", "released", "completed", "miss", "max response µs"
    );
    for t in summary.tasks.iter().filter(|t| !t.name.contains('✓')) {
        println!(
            "{:<14} {:>8} {:>9} {:>6} {:>13.1}",
            t.name,
            t.released,
            t.completed,
            t.misses,
            t.max_response as f64 / 1600.0
        );
    }
    let verified_segments: u64 = (0..m).map(|c| sys.checker_state(c).segments_checked).sum();
    let failed: u64 = (0..m).map(|c| sys.checker_state(c).segments_failed).sum();
    println!(
        "\nverification: {verified_segments} segments replay-checked, {failed} failed, \
         {} deadline misses — the admitted set held at runtime",
        summary.total_misses()
    );
    assert_eq!(summary.total_misses(), 0, "admission must hold at runtime");
    assert_eq!(failed, 0, "fault-free run must verify clean");
    assert!(
        verified_segments > 0,
        "verified tasks were actually checked"
    );
    Ok(())
}
