//! Selective checking: §V's emergency model, where a verification task's
//! jobs are checked only when the system demands it.
//!
//! A `T^V2` task runs with checking off; mid-run an "emergency" arrives
//! and the kernel flags the next two jobs for verification via
//! `System::trigger_check_window`. The checker core is free for other
//! work the rest of the time — the resource win FlexStep's flexibility
//! buys over HMR's static ("template") verification.
//!
//! ```sh
//! cargo run --release --example selective_checking
//! ```

use flexstep::core::FabricConfig;
use flexstep::isa::{asm::Assembler, XReg};
use flexstep::kernel::task::{TaskBody, TaskClass, TaskDef, TaskId};
use flexstep::kernel::{CheckDemand, KernelConfig, System};
use flexstep::sim::SocConfig;
use std::sync::Arc;

fn spin(name: &str, iters: i64, slot: u64) -> Arc<flexstep::isa::Program> {
    let mut asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.la(XReg::A2, "buf");
    asm.li(XReg::A0, iters);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    Arc::new(asm.finish().unwrap())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let period = 2_000_000u64; // 1.25 ms at 1.6 GHz
    let mut sys = System::new(
        SocConfig::paper(2),
        FabricConfig::paper(),
        KernelConfig::default(),
    );

    // τ1 *may* require checking (T^V2), but starts with no demand.
    sys.add_task(TaskDef {
        id: TaskId(1),
        name: "τ1".into(),
        class: TaskClass::Verified2,
        body: TaskBody::Guest(spin("t1", 30_000, 0)),
        period,
        phase: 0,
        core: 0,
        checkers: vec![1],
        max_jobs: Some(5),
    })?;
    sys.set_check_demand(TaskId(1), CheckDemand::Never)?;
    sys.boot()?;

    // Two quiet jobs…
    sys.run_until(2 * period);
    println!(
        "after 2 quiet jobs: segments verified = {}",
        sys.checker_state(1).segments_checked
    );

    // …then the emergency: flag the next two jobs for checking.
    let (from, until) = sys.trigger_check_window(TaskId(1), 2)?;
    println!("emergency! checking demanded for jobs {from}..{until}");

    let summary = sys.run_until(6 * period);
    let checker = sys.checker_state(1);
    println!(
        "after the emergency window: segments verified = {}, failed = {}",
        checker.segments_checked, checker.segments_failed
    );

    let t1 = summary.task(TaskId(1)).expect("task exists");
    let ct = sys.checker_thread_of(TaskId(1), 1).expect("checker thread");
    let ct_summary = summary.task(ct).expect("summary exists");
    println!(
        "τ1: {}/{} jobs completed, {} misses; checker thread ran {} jobs (exactly the window)",
        t1.completed, t1.released, t1.misses, ct_summary.completed
    );
    assert_eq!(
        ct_summary.completed, 2,
        "only the flagged jobs were verified"
    );
    assert_eq!(summary.total_misses(), 0);
    Ok(())
}
