//! Synthesis-report-style area/power breakdown of the Vanilla and
//! FlexStep SoCs (the Tab. III / Fig. 8 model).
//!
//! ```sh
//! cargo run --example soc_report -- [cores]
//! ```

use flexstep::soc::{flexstep_soc, vanilla_soc};

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let v = vanilla_soc(cores);
    let f = flexstep_soc(cores);
    println!("{v}");
    println!("{f}");
    println!(
        "FlexStep overhead: area {:+.2}%  power {:+.2}%",
        100.0 * (f.area_mm2() - v.area_mm2()) / v.area_mm2(),
        100.0 * (f.power_w() - v.power_w()) / v.power_w()
    );
}
