//! Quickstart: verify a small program on a FlexStep dual-core platform,
//! then corrupt the forwarded data and watch the checker catch it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexstep::core::{inject_random_fault, FabricConfig, VerifiedRun};
use flexstep::isa::{asm::Assembler, XReg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a guest program with the built-in assembler: a checksum
    //    loop that reads and writes memory.
    let mut asm = Assembler::new("checksum");
    asm.data_label("buf")?;
    asm.data_u64s(&(0..256u64).map(|i| i * i + 1).collect::<Vec<_>>());
    asm.la(XReg::A1, "buf");
    asm.li(XReg::A2, 256); // words
    asm.li(XReg::A0, 0); // checksum
    asm.label("loop")?;
    asm.ld(XReg::A3, XReg::A1, 0);
    asm.add(XReg::A0, XReg::A0, XReg::A3);
    asm.sd(XReg::A1, XReg::A0, 0); // running checksum back into the buffer
    asm.addi(XReg::A1, XReg::A1, 8);
    asm.addi(XReg::A2, XReg::A2, -1);
    asm.bnez(XReg::A2, "loop");
    asm.ecall();
    let program = asm.finish()?;

    // 2. Clean run: core 0 executes, core 1 replays and verifies every
    //    checking segment (SCP → log → IC → ECP, §III of the paper).
    let mut run = VerifiedRun::dual_core(&program, FabricConfig::paper())?;
    let report = run.run_to_completion(10_000_000);
    println!("— clean run —");
    println!("  retired          : {} instructions", report.retired);
    println!("  finished at      : cycle {}", report.main_finish_cycle);
    println!("  segments checked : {}", report.segments_checked);
    println!("  segments failed  : {}", report.segments_failed);
    assert_eq!(report.segments_failed, 0);

    // 3. Faulty run: flip one bit in the in-flight forwarded data
    //    mid-run. The checker must detect the divergence.
    let mut run = VerifiedRun::dual_core(&program, FabricConfig::paper())?;
    run.run_until_cycle(5_000);
    let mut rng = StdRng::seed_from_u64(1);
    let now = run.fs.soc.now();
    let injected =
        inject_random_fault(&mut run.fs.fabric, 0, now, &mut rng).expect("data in flight");
    let report = run.run_to_completion(10_000_000);
    println!("— faulty run —");
    println!(
        "  injected         : {} bit {} @ cycle {}",
        injected.target, injected.bit, injected.at_cycle
    );
    match report.detections.first() {
        Some(d) => {
            let clock = run.fs.soc.clock();
            let latency = d.detected_at - injected.at_cycle;
            println!("  detected         : {}", d.kind);
            println!(
                "  latency          : {} cycles ({:.2} µs at 1.6 GHz)",
                latency,
                clock.cycles_to_us(latency)
            );
        }
        None => println!("  fault was architecturally masked (dead value)"),
    }
    Ok(())
}
