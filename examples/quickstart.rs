//! Quickstart: verify a small program on a FlexStep dual-core platform,
//! then corrupt the forwarded data with a declarative fault plan and
//! watch the checker catch it — all through the `Scenario` front door.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexstep::core::{FabricConfig, FaultPlan, RecordingObserver, Scenario, Topology};
use flexstep::isa::{asm::Assembler, XReg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a guest program with the built-in assembler: a checksum
    //    loop that reads and writes memory.
    let mut asm = Assembler::new("checksum");
    asm.data_label("buf")?;
    asm.data_u64s(&(0..256u64).map(|i| i * i + 1).collect::<Vec<_>>());
    asm.la(XReg::A1, "buf");
    asm.li(XReg::A2, 256); // words
    asm.li(XReg::A0, 0); // checksum
    asm.label("loop")?;
    asm.ld(XReg::A3, XReg::A1, 0);
    asm.add(XReg::A0, XReg::A0, XReg::A3);
    asm.sd(XReg::A1, XReg::A0, 0); // running checksum back into the buffer
    asm.addi(XReg::A1, XReg::A1, 8);
    asm.addi(XReg::A2, XReg::A2, -1);
    asm.bnez(XReg::A2, "loop");
    asm.ecall();
    let program = asm.finish()?;

    // 2. Clean run: core 0 executes, core 1 replays and verifies every
    //    checking segment (SCP → log → IC → ECP, §III of the paper).
    let mut run = Scenario::new(&program)
        .cores(2)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .build()?;
    let report = run.run_to_completion(10_000_000);
    println!("— clean run —");
    println!("  retired          : {} instructions", report.retired);
    println!("  finished at      : cycle {}", report.main_finish_cycle);
    println!("  segments checked : {}", report.segments_checked);
    println!("  segments failed  : {}", report.segments_failed);
    assert_eq!(report.segments_failed, 0);

    // 3. Faulty run: the fault plan arms at cycle 5 000 and flips one
    //    bit in the in-flight forwarded data as soon as the stream
    //    carries a packet. The checker must detect the divergence; the
    //    recorded event buffer lets us replay the protocol afterwards.
    let mut run = Scenario::new(&program)
        .cores(2)
        .fault_plan(FaultPlan::random_with_seed(5_000, 1))
        .record_events()
        .build()?;
    let clock = run.clock();
    let report = run.run_to_completion(10_000_000);
    println!("— faulty run —");
    let injected = report
        .injections
        .first()
        .expect("the plan fires once data is in flight");
    println!(
        "  injected         : {} bit(s) {:?} @ cycle {}",
        injected.target, injected.bits, injected.at_cycle
    );
    match report.detections.first() {
        Some(d) => {
            let latency = d.detected_at - injected.at_cycle;
            println!("  detected         : {}", d.kind);
            println!(
                "  latency          : {} cycles ({:.2} µs at 1.6 GHz)",
                latency,
                clock.cycles_to_us(latency)
            );
        }
        None => println!("  fault was architecturally masked (dead value)"),
    }
    let mut recorder = RecordingObserver::new();
    run.replay_events(&mut recorder);
    println!("  observer summary : {}", recorder.summary().to_json());
    Ok(())
}
