//! # FlexStep
//!
//! Umbrella crate for the FlexStep reproduction — *"FlexStep: Enabling
//! Flexible Error Detection in Multi/Many-core Real-time Systems"*
//! (DAC 2025) — re-exporting the whole stack:
//!
//! - [`isa`]: RV64 instruction model, assembler, FlexStep custom ISA.
//! - [`mem`]: caches, coherence and the memory system.
//! - [`sim`]: the Rocket-like multi-core simulator.
//! - [`core`]: the FlexStep error-detection microarchitecture (RCPM, MAL,
//!   DBC, checker replay, fault injection).
//! - [`kernel`]: the partitioned-EDF RTOS layer (Al. 1 context switch,
//!   Al. 2 checker thread).
//! - [`sched`]: the §V scheduling theory (Al. 3, LockStep/HMR baselines,
//!   UUniFast, EDF simulation).
//! - [`workloads`]: Parsec/SPECint-equivalent guest kernels and the nZDC
//!   baseline.
//! - [`soc`]: the 28 nm area/power model.
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment map.
//!
//! ## Quick start
//!
//! Every experiment goes through the [`core::Scenario`] builder:
//!
//! ```
//! use flexstep::core::{FabricConfig, Scenario, Topology};
//! use flexstep::workloads::{by_name, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = by_name("dedup").unwrap().program(Scale::Test);
//! let mut run = Scenario::new(&program)
//!     .cores(2)
//!     .topology(Topology::PairedLockstep)
//!     .fabric(FabricConfig::paper())
//!     .build()?;
//! let report = run.run_to_completion(100_000_000);
//! assert!(report.completed);
//! assert_eq!(report.segments_failed, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use flexstep_core as core;
pub use flexstep_isa as isa;
pub use flexstep_kernel as kernel;
pub use flexstep_mem as mem;
pub use flexstep_sched as sched;
pub use flexstep_sim as sim;
pub use flexstep_soc as soc;
pub use flexstep_workloads as workloads;
