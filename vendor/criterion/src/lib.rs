//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the criterion 0.5 API surface the FlexStep
//! micro-benchmarks use — `Criterion`, benchmark groups, `Bencher::iter`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — over a simple wall-clock harness: each benchmark warms up,
//! then times `sample_size` batches and reports min/mean/max time per
//! iteration (plus element throughput when configured).
//!
//! No statistical outlier analysis, no HTML reports, no saved baselines —
//! but the numbers are honest wall-clock medians, good enough to compare
//! hot-path changes across commits in CI logs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group, mirroring
/// `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        let mut g = self.benchmark_group("");
        g.sample_size(sample_size);
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of timed samples for this group.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };

        // Warm-up and calibration: grow the batch size until one batch
        // takes ≥ ~2 ms so Instant overhead stays negligible.
        loop {
            bencher.samples.clear();
            let start = Instant::now();
            f(&mut bencher);
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || bencher.iters_per_sample >= 1 << 20 {
                break;
            }
            bencher.iters_per_sample *= 4;
        }

        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }

        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        print!(
            "{full:<48} [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                println!("  {:.1} Melem/s", n as f64 / mean / 1e6);
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                println!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0));
            }
            _ => println!(),
        }
        self
    }

    /// Ends the group (upstream parity; prints nothing extra).
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark timing context handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times one sample of `routine`, running it the calibrated number of
    /// iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
