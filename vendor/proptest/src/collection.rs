//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec()`]: a fixed size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec size range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Returns a strategy generating vectors of `element` values with a length
/// drawn from `size`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
