//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the subset of the proptest 1.x API that the
//! FlexStep property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`, ranges, tuples,
//!   [`strategy::Just`] and weighted [`prop_oneof!`] unions;
//! - [`arbitrary::any`] for the primitive types the tests draw;
//! - [`collection::vec`] with a size range;
//! - the [`proptest!`], [`prop_compose!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros with `ProptestConfig::with_cases`.
//!
//! The semantics intentionally differ from upstream in one way: there is
//! **no shrinking**. A failing case reports its generated inputs (via the
//! panic message) and the deterministic per-test RNG makes every failure
//! reproducible, which is what a CI reproduction needs; minimisation is a
//! debugging luxury this offline stub drops.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` style paths work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
