//! `any::<T>()` for the primitive types the workspace draws.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Returns the canonical strategy for `Self`.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy over the full domain of a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, f64);

macro_rules! impl_arbitrary_signed {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { _marker: std::marker::PhantomData }
            }
        }
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$u>() as $t
            }
        }
    )*};
}

impl_arbitrary_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

impl Arbitrary for usize {
    fn arbitrary() -> ArbitraryStrategy<usize> {
        ArbitraryStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}
impl Strategy for ArbitraryStrategy<usize> {
    type Value = usize;
    fn new_value(&self, rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

/// Returns the canonical whole-domain strategy for `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}
