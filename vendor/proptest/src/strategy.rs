//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike upstream proptest there is no value *tree* (no shrinking): a
/// strategy draws a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies with a common
    /// `Value` can live in one collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies over a common value type; built by
/// `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or every weight is zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively-weighted arm"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Weighted choice among strategies with a common value type.
///
/// Supports both the unweighted form `prop_oneof![a, b, c]` and the
/// weighted form `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($arg:tt)*) ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}
