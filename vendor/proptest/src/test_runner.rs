//! Test-runner configuration and the failure type used by the
//! `prop_assert*` macros.

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property; produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a hash of a test's fully-qualified name, used as its per-test RNG
/// seed so every run of a given test draws the identical case sequence.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each test draws `cases` inputs from its strategies with a deterministic
/// per-test seed; failures panic with the case index so they reproduce
/// exactly. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                // Build the strategies once; a tuple of strategies is
                // itself a strategy drawing each element left-to-right.
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    // The stringified condition must NOT pass through format! — it may
    // contain braces (e.g. `matches!(x, Kind { .. })`).
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body, mirroring
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}
