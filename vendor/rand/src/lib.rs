//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the exact subset of `rand` 0.8 that the
//! FlexStep workspace uses: [`rngs::StdRng`] (a xoshiro256++ engine,
//! deterministically seedable through [`SeedableRng::seed_from_u64`]),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism matters more than distribution pedigree here: every
//! experiment seeds its generator explicitly, so the only requirements
//! are (a) identical streams for identical seeds across runs and
//! platforms, and (b) decent statistical quality, which xoshiro256++
//! provides.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's "standard"
/// distribution (the `rand` `Standard` equivalent).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts (the `SampleRange` equivalent).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire's
/// multiply-shift with a rejection loop for exactness.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from empty range");
    // Zone rejection keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding in the affine map can land exactly on the exclusive
        // upper bound; clamp to the largest value strictly below it.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`] (the `rand::Rng` equivalent).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform over
    /// the domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the `rand::SeedableRng` equivalent, `u64`
/// convenience entry point only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as the reference xoshiro implementations recommend.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the ChaCha12 engine the real `rand` 0.8 uses, but every
    /// FlexStep experiment treats `StdRng` as an opaque deterministic
    /// stream, so only reproducibility across runs matters.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (the `rand::seq` equivalent).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }
}
