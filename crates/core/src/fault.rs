//! Fault injection into forwarded data (§VI-C methodology).
//!
//! Faults are injected into the data *forwarded* from the main core —
//! memory-access log entries and checkpoint snapshots sitting in the DBC
//! FIFOs — "simulating the hardware faults without disrupting the main
//! core's normal execution". The checker must then detect the divergence;
//! the cycle distance from injection to the detection event is the
//! error-detection latency of Fig. 7.

use crate::fabric::Fabric;
use crate::packet::{PacketMut, PacketRef};
use rand::Rng;
use std::fmt;

/// Where an injected fault landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A log entry's address word.
    EntryAddr,
    /// A log entry's data word.
    EntryData,
    /// A checkpoint snapshot bit (SCP or ECP payload).
    Checkpoint,
    /// The instruction-count packet.
    InstCount,
    /// A forwarded branch-outcome packet (out-of-order mains only).
    BranchOutcome,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultTarget::EntryAddr => "entry.addr",
            FaultTarget::EntryData => "entry.data",
            FaultTarget::Checkpoint => "checkpoint",
            FaultTarget::InstCount => "inst-count",
            FaultTarget::BranchOutcome => "branch-outcome",
        };
        f.write_str(s)
    }
}

/// Record of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The main core whose stream was corrupted.
    pub main_core: usize,
    /// What was corrupted.
    pub target: FaultTarget,
    /// Bit index flipped within the target word/snapshot.
    pub bit: u32,
    /// Cycle at which the flip was applied.
    pub at_cycle: u64,
}

/// Flips one random bit in one random in-flight packet of `main`'s FIFO.
///
/// Returns `None` when the FIFO holds no packets (the caller should retry
/// at a later cycle — the paper's campaign draws injection times at
/// random over the run).
pub fn inject_random_fault<R: Rng>(
    fabric: &mut Fabric,
    main: usize,
    now: u64,
    rng: &mut R,
) -> Option<InjectionRecord> {
    let unit = fabric.unit_mut(main);
    let len = unit.fifo.len();
    if len == 0 {
        return None;
    }
    let idx = rng.gen_range(0..len);
    let packet = unit.fifo.packet_mut(idx).expect("index in range");
    let (target, bit) = match packet {
        PacketMut::Mem(e) => {
            if rng.gen_bool(0.5) && !matches!(e.kind, crate::packet::LogKind::ScResult) {
                let bit = rng.gen_range(0..32u32); // plausible physical address bits
                e.addr ^= 1 << bit;
                (FaultTarget::EntryAddr, bit)
            } else {
                let bit = rng.gen_range(0..(u32::from(e.size) * 8));
                e.data ^= 1 << bit;
                (FaultTarget::EntryData, bit)
            }
        }
        PacketMut::Scp(cp) | PacketMut::Ecp(cp) => {
            let bit = rng.gen_range(0..(66 * 64) as u32);
            cp.snapshot.flip_bit(bit as usize);
            (FaultTarget::Checkpoint, bit)
        }
        PacketMut::InstCount(v) => {
            let bit = rng.gen_range(0..8u32); // low bits keep counts plausible
            *v ^= 1 << bit;
            (FaultTarget::InstCount, bit)
        }
        PacketMut::Branch(pc) => {
            // Instruction-aligned flips keep the corrupted target a
            // plausible pc (bits 0/1 would be trivially malformed).
            let bit = rng.gen_range(2..32u32);
            *pc ^= 1 << bit;
            (FaultTarget::BranchOutcome, bit)
        }
    };
    drop_recordings(fabric, main);
    Some(InjectionRecord {
        main_core: main,
        target,
        bit,
        at_cycle: now,
    })
}

/// Drops any in-progress verdict-memo recording on `main`'s checkers.
///
/// Mutating an in-flight packet already poisons the DBC's banked
/// fingerprints, but a checker that captured its segment's fingerprint
/// *before* the flip could still finish recording against the pristine
/// hashes and cache a profile for a stream that no longer exists — this
/// is the injectors' half of the fault-bypass contract (DESIGN.md §13).
fn drop_recordings(fabric: &mut Fabric, main: usize) {
    let checkers: Vec<usize> = fabric.checkers_of(main).to_vec();
    for checker in checkers {
        fabric.unit_mut(checker).checker.recording = None;
    }
}

/// Record of a targeted (coverage-sweep) injection: one packet of the
/// requested class corrupted with one or more bit flips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedInjection {
    /// The main core whose stream was corrupted.
    pub main_core: usize,
    /// The packet class that was corrupted.
    pub target: FaultTarget,
    /// Bit indices flipped (distinct).
    pub bits: Vec<u32>,
    /// Cycle at which the flips were applied.
    pub at_cycle: u64,
}

/// Flips `bits` distinct random bits in one in-flight packet of the
/// requested class in `main`'s FIFO — the fault-coverage sweep's
/// deterministic-target counterpart to [`inject_random_fault`].
///
/// Multi-bit flips model burst upsets; all flips land in the same word
/// (entry address, entry data, checkpoint payload or count), which is the
/// worst case for silent masking since flips may cancel.
///
/// Returns `None` when no packet of the requested class is currently
/// buffered (the caller should step the platform and retry).
pub fn inject_targeted_fault<R: Rng>(
    fabric: &mut Fabric,
    main: usize,
    target: FaultTarget,
    bits: u32,
    now: u64,
    rng: &mut R,
) -> Option<TargetedInjection> {
    let unit = fabric.unit_mut(main);
    let len = unit.fifo.len();
    // Collect candidate packet indices of the requested class.
    let mut candidates = Vec::new();
    for idx in 0..len {
        let p = unit.fifo.packet_ref_at(idx).expect("index in range");
        let matches = match (target, p) {
            (FaultTarget::EntryAddr, PacketRef::Mem(e)) => {
                // Supplementary µop entries carry no address.
                !matches!(
                    e.kind,
                    crate::packet::LogKind::ScResult | crate::packet::LogKind::AmoLoad
                )
            }
            (FaultTarget::EntryData, PacketRef::Mem(_)) => true,
            (FaultTarget::Checkpoint, PacketRef::Scp(_) | PacketRef::Ecp(_)) => true,
            (FaultTarget::InstCount, PacketRef::InstCount(_)) => true,
            (FaultTarget::BranchOutcome, PacketRef::Branch(_)) => true,
            _ => false,
        };
        if matches {
            candidates.push(idx);
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let idx = candidates[rng.gen_range(0..candidates.len())];
    let width = match (target, unit.fifo.packet_ref_at(idx).expect("in range")) {
        (FaultTarget::EntryAddr, _) => 32,
        (FaultTarget::EntryData, PacketRef::Mem(e)) => u32::from(e.size) * 8,
        (FaultTarget::Checkpoint, _) => (66 * 64) as u32,
        (FaultTarget::InstCount, _) => 13, // log2(5000) ≈ 12.3: plausible counts
        (FaultTarget::BranchOutcome, _) => 32,
        _ => unreachable!("candidate class checked above"),
    };
    let bits = bits.min(width);
    let mut flipped: Vec<u32> = Vec::with_capacity(bits as usize);
    while (flipped.len() as u32) < bits {
        let b = rng.gen_range(0..width);
        if !flipped.contains(&b) {
            flipped.push(b);
        }
    }
    let mut packet = unit.fifo.packet_mut(idx).expect("candidate in range");
    for &b in &flipped {
        match (target, &mut packet) {
            (FaultTarget::EntryAddr, PacketMut::Mem(e)) => e.addr ^= 1 << b,
            (FaultTarget::EntryData, PacketMut::Mem(e)) => e.data ^= 1 << b,
            (FaultTarget::Checkpoint, PacketMut::Scp(cp) | PacketMut::Ecp(cp)) => {
                cp.snapshot.flip_bit(b as usize);
            }
            (FaultTarget::InstCount, PacketMut::InstCount(v)) => **v ^= 1 << b,
            (FaultTarget::BranchOutcome, PacketMut::Branch(pc)) => **pc ^= 1 << b,
            _ => unreachable!("candidate class checked above"),
        }
    }
    drop_recordings(fabric, main);
    Some(TargetedInjection {
        main_core: main,
        target,
        bits: flipped,
        at_cycle: now,
    })
}

/// One sample of a detection-latency campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySample {
    /// The injection that produced this sample.
    pub injection: InjectionRecord,
    /// Cycle of the detection event.
    pub detected_at: u64,
}

impl LatencySample {
    /// Detection latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.detected_at.saturating_sub(self.injection.at_cycle)
    }
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Maximum latency, µs.
    pub max_us: f64,
}

impl LatencyStats {
    /// Computes statistics from cycle latencies at a given clock.
    ///
    /// Returns `None` for an empty sample set.
    pub fn from_cycles(latencies: &[u64], clock: flexstep_sim::Clock) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut us: Vec<f64> = latencies.iter().map(|&c| clock.cycles_to_us(c)).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let n = us.len();
        let mean = us.iter().sum::<f64>() / n as f64;
        let pick = |q: f64| us[((n - 1) as f64 * q).round() as usize];
        Some(LatencyStats {
            n,
            mean_us: mean,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: us[n - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::packet::{LogEntry, LogKind, Packet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fabric_with_entries(n: usize) -> Fabric {
        let mut f = Fabric::new(2, FabricConfig::paper());
        f.configure(&[0], &[1]).unwrap();
        f.associate(0, &[1]).unwrap();
        for i in 0..n {
            f.unit_mut(0)
                .fifo
                .push(Packet::Mem(LogEntry {
                    kind: LogKind::Load,
                    addr: 0x1000 + i as u64 * 8,
                    size: 8,
                    data: i as u64,
                }))
                .unwrap();
        }
        f
    }

    #[test]
    fn injection_requires_in_flight_data() {
        let mut f = fabric_with_entries(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(inject_random_fault(&mut f, 0, 100, &mut rng), None);
    }

    #[test]
    fn injection_mutates_exactly_one_packet() {
        let mut f = fabric_with_entries(8);
        let before: Vec<Packet> = (0..8)
            .map(|i| f.unit_mut(0).fifo.packet_at(i).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let rec = inject_random_fault(&mut f, 0, 55, &mut rng).unwrap();
        assert_eq!(rec.at_cycle, 55);
        let after: Vec<Packet> = (0..8)
            .map(|i| f.unit_mut(0).fifo.packet_at(i).unwrap())
            .collect();
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert_eq!(changed, 1, "exactly one packet must change");
    }

    #[test]
    fn targeted_injection_hits_requested_class() {
        use crate::packet::Checkpoint;
        use flexstep_sim::ArchState;
        let mut f = fabric_with_entries(4);
        f.unit_mut(0)
            .fifo
            .push(Packet::scp(Checkpoint {
                snapshot: ArchState::new(0).snapshot(),
                seq: 0,
                tag: 0,
            }))
            .unwrap();
        f.unit_mut(0).fifo.push(Packet::InstCount(100)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for target in [
            FaultTarget::EntryAddr,
            FaultTarget::EntryData,
            FaultTarget::Checkpoint,
            FaultTarget::InstCount,
        ] {
            let rec = inject_targeted_fault(&mut f, 0, target, 1, 42, &mut rng)
                .unwrap_or_else(|| panic!("{target} must be injectable"));
            assert_eq!(rec.target, target);
            assert_eq!(rec.bits.len(), 1);
            assert_eq!(rec.at_cycle, 42);
        }
    }

    #[test]
    fn targeted_injection_multi_bit_flips_are_distinct() {
        let mut f = fabric_with_entries(2);
        let mut rng = StdRng::seed_from_u64(9);
        let rec = inject_targeted_fault(&mut f, 0, FaultTarget::EntryData, 8, 0, &mut rng).unwrap();
        assert_eq!(rec.bits.len(), 8);
        let mut sorted = rec.bits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "flipped bits must be distinct");
    }

    #[test]
    fn targeted_injection_none_when_class_absent() {
        // Only Mem entries buffered: no checkpoint to corrupt.
        let mut f = fabric_with_entries(3);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(
            inject_targeted_fault(&mut f, 0, FaultTarget::Checkpoint, 1, 0, &mut rng),
            None
        );
        assert_eq!(
            inject_targeted_fault(&mut f, 0, FaultTarget::InstCount, 1, 0, &mut rng),
            None
        );
    }

    #[test]
    fn targeted_injection_even_flips_cancel_on_same_word() {
        // Flipping the same packet twice with the SAME bit set would
        // cancel; the injector draws distinct bits per call, so two
        // injections into a 1-entry FIFO must leave the packet corrupted
        // relative to pristine unless the two draws coincide exactly.
        let mut f = fabric_with_entries(1);
        let pristine = f.unit_mut(0).fifo.packet_at(0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let a = inject_targeted_fault(&mut f, 0, FaultTarget::EntryData, 2, 0, &mut rng).unwrap();
        let now = f.unit_mut(0).fifo.packet_at(0).unwrap();
        assert_ne!(pristine, now, "two distinct flips cannot cancel: {a:?}");
    }

    #[test]
    fn latency_stats_percentiles() {
        let clock = flexstep_sim::Clock::paper();
        // 1600 cycles = 1 µs at 1.6 GHz.
        let lat: Vec<u64> = (1..=100).map(|i| i * 1600).collect();
        let s = LatencyStats::from_cycles(&lat, clock).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.max_us - 100.0).abs() < 1e-9);
        assert!((s.p50_us - 50.5).abs() <= 0.6);
        assert!((s.p99_us - 99.0).abs() <= 1.0);
        assert!(LatencyStats::from_cycles(&[], clock).is_none());
    }

    #[test]
    fn sample_latency_subtracts_injection_time() {
        let s = LatencySample {
            injection: InjectionRecord {
                main_core: 0,
                target: FaultTarget::EntryData,
                bit: 3,
                at_cycle: 1000,
            },
            detected_at: 33_000,
        };
        assert_eq!(s.latency_cycles(), 32_000);
    }
}
