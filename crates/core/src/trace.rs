//! Chrome `trace_event` export of verified-run schedules.
//!
//! A many-core FlexStep run is a schedule: segments opening and closing
//! on main cores, checker cores replaying one granted stream at a time,
//! the §III-C arbiters handing channels over, faults landing and being
//! caught. [`TraceObserver`] records that schedule through the ordinary
//! [`Observer`] callbacks and serialises it as Chrome `trace_event`
//! JSON — load the file in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) and every core becomes a lane on
//! a shared timeline:
//!
//! - **Segment spans** (`ph: "X"`, category `segment`) on each main
//!   core's lane, from [`Observer::on_segment_open`] to
//!   [`Observer::on_segment_close`].
//! - **Checker-occupancy spans** (category `check`) on each checker
//!   core's lane, from [`Observer::on_check_start`] (the SCP apply that
//!   enters replay) to the verdict
//!   ([`Observer::on_check_pass`]/[`Observer::on_check_fail`]), named
//!   after the main core being verified — arbitration interleavings are
//!   directly visible as alternating span colours.
//! - **Recovery spans** (category `recovery`) on a dedicated
//!   `recovery m{N}` lane per main core, covering the detect →
//!   verified-again window of a rollback (consecutive retries extend
//!   one span). They get their own lane because the main keeps opening
//!   segments while it re-executes — the windows nest, and Chrome lanes
//!   only render non-overlapping spans truthfully.
//! - **Instant events** (`ph: "i"`) for arbiter grants and parks
//!   (category `arbiter`), landed faults and expired shots (category
//!   `fault`), detections (category `detect`), checker deaths
//!   (category `fault`, `killed`) and main-core completion
//!   (category `run`).
//!
//! Timestamps are simulated microseconds (`ts`/`dur`), converted from
//! cycles with the platform [`Clock`] (`Clock::paper()` = 1.6 GHz by
//! default); the raw cycle numbers ride along in each event's `args`.
//! All events share `pid` 1 (the SoC); `tid` is the core index
//! (recovery lanes sit at `RECOVERY_LANE_OFFSET + main`).
//!
//! # Attaching a trace
//!
//! [`Scenario::trace_to`](crate::Scenario::trace_to) attaches the
//! recorder by value: the run owns it (so the run stays `Send`), writes
//! the file via
//! [`VerifiedRun::write_trace`](crate::VerifiedRun::write_trace), and
//! exposes it for programmatic access via
//! [`VerifiedRun::trace`](crate::VerifiedRun::trace):
//!
//! ```
//! use flexstep_core::Scenario;
//! use flexstep_isa::{asm::Assembler, XReg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new("tiny");
//! asm.li(XReg::A0, 200);
//! asm.li(XReg::A1, 0x2000_0000);
//! asm.label("l")?;
//! asm.sd(XReg::A1, XReg::A0, 0);
//! asm.addi(XReg::A0, XReg::A0, -1);
//! asm.bnez(XReg::A0, "l");
//! asm.ecall();
//! let program = asm.finish()?;
//!
//! let dir = std::env::temp_dir().join("flexstep_trace_doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("tiny.json");
//! let mut run = Scenario::new(&program)
//!     .cores(2)
//!     .trace_to(&path)
//!     .build()?;
//! assert!(run.run_to_completion(10_000_000).completed);
//!
//! let json = run.trace().expect("tracing is on").to_chrome_json();
//! assert!(json.starts_with("{\"traceEvents\": ["));
//! assert!(json.contains("\"ph\": \"X\""), "segments become spans");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! # Bounded mode
//!
//! A 3600-shot campaign emits millions of events; [`TraceObserver::
//! bounded`](TraceObserver::bounded) keeps a ring of the last N
//! completed events (dropping the oldest first and counting them in
//! [`TraceObserver::dropped`]), so the file size is capped no matter
//! how long the run is. The experiment binaries (`fig8 --trace`,
//! `fig7_manycore --trace`) use [`DEFAULT_RING_CAPACITY`].

use crate::detect::{DetectionEvent, SegmentResult};
use crate::json::{number, JsonObject};
use crate::scenario::{Injection, Observer};
use flexstep_sim::Clock;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::Path;

/// Ring capacity the experiment binaries use for `--trace`: large
/// enough for a full 16-core example schedule, small enough that a
/// 3600-shot campaign's artifact stays in the tens of megabytes.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// `tid` offset of the per-main recovery lanes: far above any plausible
/// core index, so recovery spans never collide with a core's own lane.
pub const RECOVERY_LANE_OFFSET: usize = 4096;

/// An [`Observer`] that records the run as Chrome `trace_event` JSON.
///
/// See the [module documentation](self) for the event model and a
/// worked example.
#[derive(Debug)]
pub struct TraceObserver {
    /// Completed events, already rendered as JSON objects (one string
    /// per event). Bounded by `capacity` as a ring of the newest.
    events: VecDeque<String>,
    capacity: Option<usize>,
    dropped: u64,
    clock: Clock,
    /// Open segment per main core: `(seq, open_cycle)`.
    open_segments: BTreeMap<usize, (u64, u64)>,
    /// Open check per checker core: `(main, seq, start_cycle)`.
    open_checks: BTreeMap<usize, (usize, u64, u64)>,
    /// In-flight rollback recovery per main core: `(seq, detect_cycle)`.
    open_recoveries: BTreeMap<usize, (u64, u64)>,
    /// Mains that recovered at least once (for recovery-lane metadata).
    recovery_lanes: BTreeSet<usize>,
    /// Cores seen as mains / checkers (for thread-name metadata).
    mains: BTreeSet<usize>,
    checkers: BTreeSet<usize>,
    /// Latest cycle any callback reported (closes truncated spans).
    last_cycle: u64,
    spans: u64,
    instants: u64,
}

impl Default for TraceObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceObserver {
    /// An unbounded recorder at the paper clock
    /// ([`Clock::paper`], 1.6 GHz).
    pub fn new() -> Self {
        TraceObserver {
            events: VecDeque::new(),
            capacity: None,
            dropped: 0,
            clock: Clock::paper(),
            open_segments: BTreeMap::new(),
            open_checks: BTreeMap::new(),
            open_recoveries: BTreeMap::new(),
            recovery_lanes: BTreeSet::new(),
            mains: BTreeSet::new(),
            checkers: BTreeSet::new(),
            last_cycle: 0,
            spans: 0,
            instants: 0,
        }
    }

    /// A size-bounded recorder keeping only the newest `capacity`
    /// completed events (a ring; the oldest are dropped and counted in
    /// [`TraceObserver::dropped`]).
    pub fn bounded(capacity: usize) -> Self {
        TraceObserver {
            capacity: Some(capacity.max(1)),
            ..Self::new()
        }
    }

    /// Replaces the cycle→µs clock (construction-time option: events
    /// are rendered as they are recorded).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Completed events currently held (spans + instants, after ring
    /// eviction).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans recorded over the observer's lifetime (ring eviction does
    /// not decrement).
    pub fn spans_recorded(&self) -> u64 {
        self.spans
    }

    /// Instant events recorded over the observer's lifetime.
    pub fn instants_recorded(&self) -> u64 {
        self.instants
    }

    fn us(&self, cycle: u64) -> String {
        number(self.clock.cycles_to_us(cycle))
    }

    fn push(&mut self, event: String) {
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// Renders one complete (`ph: "X"`) span event.
    fn span(&mut self, tid: usize, name: &str, cat: &str, start: u64, end: u64, args: String) {
        let mut o = JsonObject::new();
        o.field_str("name", name)
            .field_str("cat", cat)
            .field_str("ph", "X")
            .field_u64("pid", 1)
            .field_u64("tid", tid as u64)
            .field_raw("ts", &self.us(start))
            .field_raw("dur", &self.us(end.saturating_sub(start)))
            .field_raw("args", &args);
        self.spans += 1;
        self.push(o.finish());
    }

    /// Renders one thread-scoped instant (`ph: "i"`) event.
    fn instant(&mut self, tid: usize, name: &str, cat: &str, cycle: u64, args: String) {
        let mut o = JsonObject::new();
        o.field_str("name", name)
            .field_str("cat", cat)
            .field_str("ph", "i")
            .field_str("s", "t")
            .field_u64("pid", 1)
            .field_u64("tid", tid as u64)
            .field_raw("ts", &self.us(cycle))
            .field_raw("args", &args);
        self.instants += 1;
        self.push(o.finish());
    }

    fn close_check(&mut self, checker: usize, end: u64, verdict: &str) {
        if let Some((main, seq, start)) = self.open_checks.remove(&checker) {
            let mut a = JsonObject::new();
            a.field_u64("main", main as u64)
                .field_u64("seq", seq)
                .field_str("verdict", verdict)
                .field_u64("start_cycle", start)
                .field_u64("end_cycle", end);
            self.span(
                checker,
                &format!("check m{main} seg {seq}"),
                "check",
                start,
                end,
                a.finish(),
            );
        }
    }

    /// Serialises the recorded schedule as a Chrome `trace_event` JSON
    /// document (the object form, one event per line). Open spans — a
    /// run stopped mid-segment — are closed at the last observed cycle
    /// and flagged `"truncated": true` so every emitted span is
    /// well-formed.
    pub fn to_chrome_json(&self) -> String {
        // Metadata: one process for the SoC, one named lane per core.
        let mut metadata: Vec<String> = Vec::new();
        let meta = |name: &str, tid: usize, args: String| {
            let mut o = JsonObject::new();
            o.field_str("name", name)
                .field_str("ph", "M")
                .field_u64("pid", 1)
                .field_u64("tid", tid as u64)
                .field_raw("args", &args);
            o.finish()
        };
        {
            let mut a = JsonObject::new();
            a.field_str("name", "FlexStep SoC");
            metadata.push(meta("process_name", 0, a.finish()));
        }
        let mut lanes: BTreeMap<usize, String> = BTreeMap::new();
        for &m in &self.mains {
            lanes.insert(m, format!("main {m}"));
        }
        for &c in &self.checkers {
            lanes.entry(c).or_insert_with(|| format!("checker {c}"));
        }
        for &m in &self.recovery_lanes {
            lanes.insert(RECOVERY_LANE_OFFSET + m, format!("recovery m{m}"));
        }
        for (&tid, name) in &lanes {
            let mut a = JsonObject::new();
            a.field_str("name", name);
            metadata.push(meta("thread_name", tid, a.finish()));
            let mut s = JsonObject::new();
            s.field_u64("sort_index", tid as u64);
            metadata.push(meta("thread_sort_index", tid, s.finish()));
        }

        // Close anything still open (truncated runs) at the last
        // observed cycle, without mutating the recorder.
        let mut tail = TraceObserver {
            clock: self.clock,
            ..TraceObserver::new()
        };
        for (&main, &(seq, start)) in &self.open_segments {
            let mut a = JsonObject::new();
            a.field_u64("seq", seq)
                .field_u64("open_cycle", start)
                .field_u64("close_cycle", self.last_cycle)
                .field_bool("truncated", true);
            tail.span(
                main,
                &format!("seg {seq}"),
                "segment",
                start,
                self.last_cycle,
                a.finish(),
            );
        }
        for (&checker, &(main, seq, start)) in &self.open_checks {
            let mut a = JsonObject::new();
            a.field_u64("main", main as u64)
                .field_u64("seq", seq)
                .field_str("verdict", "truncated")
                .field_u64("start_cycle", start)
                .field_u64("end_cycle", self.last_cycle)
                .field_bool("truncated", true);
            tail.span(
                checker,
                &format!("check m{main} seg {seq}"),
                "check",
                start,
                self.last_cycle,
                a.finish(),
            );
        }
        for (&main, &(seq, start)) in &self.open_recoveries {
            let mut a = JsonObject::new();
            a.field_u64("seq", seq)
                .field_u64("detect_cycle", start)
                .field_u64("end_cycle", self.last_cycle)
                .field_bool("truncated", true);
            tail.span(
                RECOVERY_LANE_OFFSET + main,
                &format!("recover seg {seq}"),
                "recovery",
                start,
                self.last_cycle,
                a.finish(),
            );
        }
        // Stream everything into one buffer — no cloned intermediate
        // of the (potentially DEFAULT_RING_CAPACITY-sized) event list.
        let body: usize = metadata
            .iter()
            .chain(self.events.iter())
            .chain(tail.events.iter())
            .map(|e| e.len() + 2)
            .sum();
        let mut out = String::with_capacity(body + 128);
        out.push_str("{\"traceEvents\": [\n");
        for (i, event) in metadata
            .iter()
            .chain(self.events.iter())
            .chain(tail.events.iter())
            .enumerate()
        {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(event);
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\", \"meta\": ");
        let mut m = JsonObject::new();
        // Include the truncation-closing spans so the counters agree
        // with the document's own event list.
        m.field_raw("clock_hz", &number(self.clock.hz))
            .field_u64("spans", self.spans + tail.spans)
            .field_u64("instants", self.instants)
            .field_u64("dropped", self.dropped);
        out.push_str(&m.finish());
        out.push('}');
        out
    }

    /// Writes [`TraceObserver::to_chrome_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

impl Observer for TraceObserver {
    fn on_segment_open(&mut self, main: usize, seq: u64, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        self.open_segments.insert(main, (seq, cycle));
    }

    fn on_segment_close(&mut self, main: usize, seq: u64, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let start = match self.open_segments.remove(&main) {
            Some((open_seq, start)) if open_seq == seq => start,
            // Close without a matching open (observer attached
            // mid-run): degrade to a zero-length span at the close.
            _ => cycle,
        };
        let mut a = JsonObject::new();
        a.field_u64("seq", seq)
            .field_u64("open_cycle", start)
            .field_u64("close_cycle", cycle);
        self.span(
            main,
            &format!("seg {seq}"),
            "segment",
            start,
            cycle,
            a.finish(),
        );
    }

    fn on_check_start(&mut self, checker: usize, main: usize, seq: u64, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.checkers.insert(checker);
        // A dangling open check (should not happen: replay always ends
        // in a verdict) is closed defensively to keep lanes overlap-free.
        self.close_check(checker, cycle, "superseded");
        self.open_checks.insert(checker, (main, seq, cycle));
    }

    fn on_check_pass(&mut self, checker: usize, result: &SegmentResult) {
        self.last_cycle = self.last_cycle.max(result.at);
        self.checkers.insert(checker);
        self.close_check(checker, result.at, "pass");
    }

    fn on_check_fail(&mut self, checker: usize, result: &SegmentResult) {
        self.last_cycle = self.last_cycle.max(result.at);
        self.checkers.insert(checker);
        self.close_check(checker, result.at, "fail");
    }

    fn on_detection(&mut self, event: &DetectionEvent) {
        self.last_cycle = self.last_cycle.max(event.detected_at);
        self.checkers.insert(event.checker_core);
        let mut a = JsonObject::new();
        a.field_u64("main", event.main_core as u64)
            .field_u64("seq", event.segment_seq)
            .field_str("kind", &event.kind.to_string())
            .field_u64("cycle", event.detected_at);
        self.instant(
            event.checker_core,
            &format!("detect m{} seg {}", event.main_core, event.segment_seq),
            "detect",
            event.detected_at,
            a.finish(),
        );
    }

    fn on_fault_injected(&mut self, injection: &Injection) {
        self.last_cycle = self.last_cycle.max(injection.at_cycle);
        self.mains.insert(injection.main_core);
        let mut a = JsonObject::new();
        a.field_str("target", &injection.target.to_string())
            .field_array("bits", injection.bits.iter().map(u32::to_string))
            .field_u64("cycle", injection.at_cycle);
        self.instant(
            injection.main_core,
            &format!("fault {}", injection.target),
            "fault",
            injection.at_cycle,
            a.finish(),
        );
    }

    fn on_shot_expired(&mut self, main: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(main, "shot expired", "fault", cycle, a.finish());
    }

    fn on_checker_granted(&mut self, checker: usize, main: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.checkers.insert(checker);
        self.mains.insert(main);
        let mut a = JsonObject::new();
        a.field_u64("main", main as u64).field_u64("cycle", cycle);
        self.instant(
            checker,
            &format!("grant m{main}"),
            "arbiter",
            cycle,
            a.finish(),
        );
    }

    fn on_checker_parked(&mut self, checker: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.checkers.insert(checker);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(checker, "park", "arbiter", cycle, a.finish());
    }

    fn on_main_finished(&mut self, main: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(main, "finished", "run", cycle, a.finish());
    }

    fn on_recovery_start(&mut self, main: usize, seq: u64, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        self.recovery_lanes.insert(main);
        // Consecutive retries extend the original span: the recovery
        // window is detect -> verified-again, not per-rollback.
        self.open_recoveries.entry(main).or_insert((seq, cycle));
    }

    fn on_recovery_complete(&mut self, main: usize, cycle: u64, latency: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let (seq, start) = self
            .open_recoveries
            .remove(&main)
            .unwrap_or((0, cycle.saturating_sub(latency)));
        let mut a = JsonObject::new();
        a.field_u64("seq", seq)
            .field_u64("detect_cycle", start)
            .field_u64("end_cycle", cycle)
            .field_u64("latency_cycles", latency);
        self.recovery_lanes.insert(main);
        self.span(
            RECOVERY_LANE_OFFSET + main,
            &format!("recover seg {seq}"),
            "recovery",
            start,
            cycle,
            a.finish(),
        );
    }

    fn on_checker_killed(&mut self, checker: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.checkers.insert(checker);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(checker, "killed", "fault", cycle, a.finish());
    }

    fn on_checker_released(&mut self, main: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(main, "release checker", "pairing", cycle, a.finish());
    }

    fn on_checker_acquired(&mut self, main: usize, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        self.mains.insert(main);
        let mut a = JsonObject::new();
        a.field_u64("cycle", cycle);
        self.instant(main, "acquire checker", "pairing", cycle, a.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::MismatchKind;

    #[test]
    fn spans_pair_opens_with_closes() {
        let mut t = TraceObserver::new();
        t.on_segment_open(0, 1, 100);
        t.on_segment_close(0, 1, 1_700);
        assert_eq!(t.len(), 1);
        assert_eq!(t.spans_recorded(), 1);
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\": \"seg 1\""));
        // 100 cycles @1.6GHz = 0.0625 µs; dur 1600 cycles = 1 µs.
        assert!(json.contains("\"ts\": 0.0625"));
        assert!(json.contains("\"dur\": 1.0"));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn recovery_spans_pair_and_checker_kills_are_instants() {
        let mut t = TraceObserver::new();
        t.on_recovery_start(0, 7, 1_000);
        // A consecutive retry extends the original window rather than
        // opening a second span.
        t.on_recovery_start(0, 9, 1_500);
        t.on_recovery_complete(0, 3_000, 2_000);
        t.on_checker_killed(1, 4_000);
        assert_eq!(t.spans_recorded(), 1);
        assert_eq!(t.instants_recorded(), 1);
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\": \"recover seg 7\""));
        assert!(json.contains("\"latency_cycles\": 2000"));
        assert!(json.contains("\"recovery\""));
        assert!(json.contains("\"name\": \"killed\""));
    }

    #[test]
    fn truncated_recovery_spans_close_at_last_cycle() {
        let mut t = TraceObserver::new();
        t.on_recovery_start(2, 4, 500);
        t.on_checker_killed(3, 900);
        let json = t.to_chrome_json();
        assert!(json.contains("\"recover seg 4\""));
        assert!(json.contains("\"truncated\": true"));
    }

    #[test]
    fn check_spans_attribute_the_main_and_verdict() {
        let mut t = TraceObserver::new();
        t.on_check_start(3, 0, 7, 200);
        t.on_check_fail(
            3,
            &SegmentResult {
                seq: 7,
                tag: 0,
                mismatch: Some(MismatchKind::LogUnderrun),
                at: 360,
            },
        );
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\": \"check m0 seg 7\""));
        assert!(json.contains("\"verdict\": \"fail\""));
        assert!(json.contains("\"checker 3\""));
    }

    #[test]
    fn bounded_ring_drops_oldest_and_counts() {
        let mut t = TraceObserver::bounded(2);
        for seq in 0..5u64 {
            t.on_segment_open(0, seq, seq * 10);
            t.on_segment_close(0, seq, seq * 10 + 5);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.spans_recorded(), 5);
        let json = t.to_chrome_json();
        assert!(!json.contains("\"seg 0\""), "oldest evicted");
        assert!(json.contains("\"seg 4\""));
        assert!(json.contains("\"dropped\": 3"));
    }

    #[test]
    fn truncated_open_spans_are_closed_at_last_cycle() {
        let mut t = TraceObserver::new();
        t.on_segment_open(0, 3, 1_000);
        t.on_check_start(1, 0, 3, 1_200);
        t.on_main_finished(0, 2_000);
        let json = t.to_chrome_json();
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert_eq!(json.matches("\"truncated\": true").count(), 2);
        // Serialisation must not consume the recorder.
        assert_eq!(t.to_chrome_json(), json);
    }
}
