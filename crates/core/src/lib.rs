//! # flexstep-core
//!
//! The FlexStep error-detection microarchitecture — the primary
//! contribution of *"FlexStep: Enabling Flexible Error Detection in
//! Multi/Many-core Real-time Systems"* (DAC 2025) — implemented over the
//! `flexstep-sim` multi-core simulator:
//!
//! - [`rcpm`]: Register Checkpoint Management (CPC instruction counter +
//!   privilege monitor, ASS snapshot storage) — checking segments open at
//!   user-mode execution and close at the 5 000-instruction limit or on a
//!   privilege switch (Fig. 3).
//! - [`packet`] / [`dbc`]: the Memory Access Log entry format (with
//!   multi-µop packaging of LR/SC/AMO) and the Data Buffering and
//!   Channelling FIFOs with configurable 1:1 / 1:2 interconnect channels
//!   and DMA spill.
//! - [`checker`]: the log-backed replay port — the same executor as the
//!   main core with memory access halted, loads served from the log and
//!   stores verified at commit.
//! - [`fabric`] / [`engine`]: dynamic core attributes (compute / main /
//!   checker), the Tab. I custom-ISA operations, asynchronous checker
//!   stepping and main-core backpressure.
//! - [`fault`]: bit-flip injection into forwarded data for the
//!   detection-latency experiments (Fig. 7).
//! - [`scenario`] / [`harness`]: the [`Scenario`] builder — the single
//!   front door for experiments (topology, fault plans, observers) —
//!   and the [`VerifiedRun`] driver it builds, from dual-core Fig. 4
//!   runs to many-core shared-checker SoCs.
//! - [`trace`]: Chrome `trace_event` export of the schedule an observer
//!   sees (segment spans, checker occupancy, arbitration, detections) —
//!   load the file in `chrome://tracing`/Perfetto.
//!
//! ## Example: verified execution end to end
//!
//! ```
//! use flexstep_core::{FabricConfig, FlexSoc};
//! use flexstep_isa::{asm::Assembler, XReg};
//! use flexstep_sim::{PrivMode, SocConfig, StepKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small kernel that stores a running sum.
//! let mut asm = Assembler::new("sum_store");
//! asm.li(XReg::A0, 0);
//! asm.li(XReg::A1, 50);
//! asm.li(XReg::A2, 0x2000_0000);
//! asm.label("loop")?;
//! asm.add(XReg::A0, XReg::A0, XReg::A1);
//! asm.sd(XReg::A2, XReg::A0, 0);
//! asm.addi(XReg::A1, XReg::A1, -1);
//! asm.bnez(XReg::A1, "loop");
//! asm.ecall();
//! let program = asm.finish()?;
//!
//! // Core 0 is the main core, core 1 its checker (1:1 channel).
//! let mut fs = FlexSoc::new(SocConfig::paper(2), FabricConfig::paper())?;
//! fs.op_g_configure(&[0], &[1])?;
//! fs.op_m_associate(0, &[1])?;
//! fs.op_m_check(0, true)?;
//! fs.op_c_check_state(1, true)?;
//!
//! fs.soc.load_program(&program);
//! fs.soc.core_mut(0).state.pc = program.entry;
//! fs.soc.core_mut(0).state.prv = PrivMode::User;
//! fs.soc.core_mut(0).unpark();
//! fs.soc.core_mut(1).unpark();
//!
//! // Interleave both cores until the program ends and the checker drains.
//! let mut done = false;
//! for _ in 0..200_000 {
//!     if !done {
//!         if let flexstep_core::EngineStep::Core(StepKind::Trap { .. }) = fs.step(0) {
//!             done = true; // ecall: program finished
//!         }
//!     }
//!     fs.step(1);
//!     if done && fs.fabric.unit(0).fifo.is_fully_drained() {
//!         break;
//!     }
//! }
//! let checker = fs.checker_state(1);
//! assert!(checker.segments_checked > 0);
//! assert_eq!(checker.segments_failed, 0, "clean run must verify clean");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod dbc;
pub mod detect;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod harness;
pub mod json;
mod memo;
pub mod packet;
pub mod rcpm;
pub mod scenario;
pub mod share;
pub mod sink;
pub mod trace;

pub use checker::{CheckPhase, CheckerState, ReplayPort};
pub use dbc::{BufferFifo, FifoFull};
pub use detect::{DetectionEvent, MismatchKind, SegmentResult};
pub use engine::{EngineStep, FlexSoc};
pub use fabric::{CoreAttr, Fabric, FabricConfig, FabricStats, FlexError};
pub use fault::{
    inject_random_fault, inject_targeted_fault, FaultTarget, InjectionRecord, LatencySample,
    LatencyStats, TargetedInjection,
};
pub use flexstep_sim::{
    CoreModelKind, PairingAction, PairingEvent, PairingSchedule, ReliabilityMode, RELIABILITY_MODES,
};
pub use harness::{
    baseline_cycles, MainReport, MatchedDetection, ModeStats, RunReport, RunWarning, VerifiedRun,
};
pub use packet::{log_entries, Checkpoint, LogEntry, LogKind, Packet, PacketMut, PacketRef};
pub use rcpm::{Ass, SegmentClose, SegmentTracker, DEFAULT_SEGMENT_LIMIT};
pub use scenario::{
    FaultPlan, Injection, Observer, ObserverEvent, ObserverSummary, RecordingObserver,
    RecoveryPolicy, Scenario, ScenarioError, Topology,
};
pub use share::{ArbiterStats, CheckerArbiter};
pub use sink::{EventBuffer, RunEvent};
pub use trace::{TraceObserver, DEFAULT_RING_CAPACITY};
