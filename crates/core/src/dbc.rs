//! Data Buffering and Channelling units (Fig. 2.c).
//!
//! Each core owns a [`BufferFifo`] — the SRAM FIFO that buffers a main
//! core's outgoing checking-segment data. The System Interconnect
//! (a MUX/DEMUX network controlled by the global configuration register)
//! routes a main core's FIFO to one or more checker cores: the FIFO
//! therefore supports *multiple consumers with independent cursors*, and a
//! packet's storage is only reclaimed once every consumer has passed it.
//! This is what makes triple-core mode (1 : 2) slightly slower than
//! dual-core mode in Fig. 6 — the slower checker gates reclamation and
//! back-pressures the main core sooner.

use crate::packet::{
    entry_bytes, hash_mix, hash_snapshot, Checkpoint, CpHandle, CpSlab, LogEntry, Packet,
    PacketMut, PacketRef, HASH_SEED,
};
use std::collections::VecDeque;
use std::fmt;

/// Domain separators mixed into the segment fingerprint ahead of each
/// packet's payload, so streams that differ only in packet framing (e.g.
/// an `InstCount(3)` vs a Mem entry whose fields happen to collide) hash
/// differently.
const HASH_TAG_SCP: u64 = 0x53;
const HASH_TAG_MEM: u64 = 0x4d;
const HASH_TAG_BRANCH: u64 = 0x42;
const HASH_TAG_COUNT: u64 = 0x49;
const HASH_TAG_ECP: u64 = 0x45;

/// Error returned when a push would exceed the FIFO capacity.
///
/// Entry-class packets need `needed` bytes of DBC SRAM; checkpoint
/// packets need `needed_slots` ASS slots — the rejected push reports the
/// class it actually failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull {
    /// Entry bytes the rejected push needed (0 for pure checkpoints).
    pub needed: usize,
    /// Entry bytes currently free.
    pub free: usize,
    /// Checkpoint slots the rejected push needed (0 for pure entries).
    pub needed_slots: usize,
    /// Checkpoint slots currently free.
    pub free_slots: usize,
}

impl fmt::Display for FifoFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fifo full: need {} bytes + {} slots, {} bytes + {} slots free",
            self.needed, self.needed_slots, self.free, self.free_slots
        )
    }
}

impl std::error::Error for FifoFull {}

/// One stream position in the FIFO. Entry-class payloads are stored
/// inline; checkpoint payloads (>0.5 KiB of [`ArchSnapshot`]) live out of
/// line in the checkpoint slab behind generation-checked handles — the
/// in-order queue stays small and cache-resident, mirroring the paper's
/// physical split between the DBC entry SRAM and the ASS checkpoint
/// slots.
///
/// [`ArchSnapshot`]: flexstep_sim::ArchSnapshot
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// SCP; payload behind a generation-checked slab handle.
    Scp(CpHandle),
    /// A memory-access log entry, inline.
    Mem(LogEntry),
    /// A forwarded branch outcome (`next_pc`), inline.
    Branch(u64),
    /// The segment's instruction count, inline.
    InstCount(u64),
    /// ECP; payload behind a generation-checked slab handle.
    Ecp(CpHandle),
}

/// An SRAM data-buffer FIFO with independent consumer cursors.
///
/// Capacity is accounted per packet class, mirroring the paper's storage
/// split: log entries and instruction counts occupy the DBC SRAM
/// (`entry_capacity` bytes, 1 088 B in Tab. III), while SCP/ECP
/// checkpoints stage through the ASS and are limited by *slots*
/// (`checkpoint_slots`, double-buffered per §III-A). Optionally, overflow
/// spills to main memory via DMA (§III-C), making pushes unbounded but
/// tracked for cost accounting.
#[derive(Debug, Clone)]
pub struct BufferFifo {
    entry_capacity: usize,
    checkpoint_slots: usize,
    spill: bool,
    /// Stream positions not yet consumed by *all* consumers, oldest
    /// first.
    queue: VecDeque<Slot>,
    /// Out-of-line checkpoint payloads, slab-allocated.
    slab: CpSlab,
    /// Absolute sequence number of `queue[0]`.
    head_seq: u64,
    /// Running fingerprint of the currently-open segment (everything
    /// pushed since the last ECP), folded in at push time.
    seg_hash: u64,
    /// Set when an in-flight packet of the open segment was mutated
    /// (fault injection): the open fingerprint no longer describes the
    /// buffered bytes and finalises to `None`.
    seg_hash_poisoned: bool,
    /// Finalised fingerprints of complete buffered segments, oldest
    /// first; `None` marks a segment whose buffered packets were mutated
    /// after hashing. Front entry describes ECP number `seg_hash_head`.
    seg_hashes: VecDeque<Option<u64>>,
    /// Absolute ECP number of `seg_hashes[0]`.
    seg_hash_head: u64,
    /// Absolute position of each consumer (next packet to read).
    cursors: Vec<u64>,
    /// Number of cursors currently equal to `head_seq`. Storage reclaim
    /// only needs a cursor scan when this count drops to zero — i.e.
    /// when the *minimum* cursor actually moves.
    at_min: usize,
    /// Entry-class bytes held by `queue`.
    used: usize,
    /// Checkpoint packets held by `queue`.
    checkpoints: usize,
    /// High-water mark of entry bytes, for experiments.
    peak_used: usize,
    /// Packets pushed beyond SRAM capacity (DMA spill traffic).
    spilled: u64,
    /// Total packets ever pushed.
    pushed: u64,
    /// ECP packets ever pushed (complete-segment tracking).
    ecps_pushed: u64,
    /// ECP packets consumed, per consumer.
    ecps_consumed: Vec<u64>,
}

impl BufferFifo {
    /// Creates a FIFO with the given entry-byte capacity, checkpoint
    /// slots, and one consumer.
    pub fn new(entry_capacity: usize, checkpoint_slots: usize) -> Self {
        BufferFifo {
            entry_capacity,
            checkpoint_slots,
            spill: false,
            queue: VecDeque::new(),
            slab: CpSlab::default(),
            head_seq: 0,
            seg_hash: HASH_SEED,
            seg_hash_poisoned: false,
            seg_hashes: VecDeque::new(),
            seg_hash_head: 0,
            cursors: vec![0],
            at_min: 1,
            used: 0,
            checkpoints: 0,
            peak_used: 0,
            spilled: 0,
            pushed: 0,
            ecps_pushed: 0,
            ecps_consumed: vec![0],
        }
    }

    /// Enables or disables DMA spill to main memory: when enabled, pushes
    /// never fail, but packets beyond SRAM capacity are counted in
    /// [`BufferFifo::spilled`](Self::spilled_packets) so the engine can
    /// charge DMA cycles.
    pub fn set_spill(&mut self, spill: bool) {
        self.spill = spill;
    }

    /// Packets pushed while the SRAM was full (went through DMA spill).
    pub fn spilled_packets(&self) -> u64 {
        self.spilled
    }

    /// Reconfigures the number of consumers (1 for DCLS-like, 2 for
    /// TCLS-like channels). Resets cursors; only valid on an empty FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is not empty — the interconnect may only be
    /// reconfigured between segments.
    pub fn set_consumers(&mut self, n: usize) {
        assert!(self.queue.is_empty(), "cannot re-channel a non-empty FIFO");
        assert!(n >= 1, "at least one consumer required");
        self.cursors = vec![self.head_seq; n];
        self.at_min = n;
        self.ecps_consumed = vec![self.ecps_pushed; n];
        debug_assert!(
            self.seg_hashes.is_empty(),
            "empty FIFO cannot hold banked fingerprints"
        );
        self.seg_hash_head = self.ecps_pushed;
    }

    /// Number of consumers.
    pub fn consumers(&self) -> usize {
        self.cursors.len()
    }

    /// Entry-class capacity in bytes (the DBC SRAM size).
    pub fn capacity_bytes(&self) -> usize {
        self.entry_capacity
    }

    /// Entry-class bytes currently buffered (not yet consumed by all
    /// consumers).
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Checkpoints currently in flight.
    pub fn checkpoints_in_flight(&self) -> usize {
        self.checkpoints
    }

    /// Highest entry-byte usage observed.
    pub fn peak_used_bytes(&self) -> usize {
        self.peak_used
    }

    /// Total packets pushed over the FIFO's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Whether `entry_bytes` more entry bytes and `cps` more checkpoints
    /// would fit right now (always `true` with spill enabled).
    #[inline]
    pub fn can_accept(&self, entry_bytes: usize, cps: usize) -> bool {
        self.spill
            || (self.used + entry_bytes <= self.entry_capacity
                && self.checkpoints + cps <= self.checkpoint_slots)
    }

    /// Storage cost of a packet: `(entry bytes, checkpoint slots)`.
    #[inline]
    fn cost(packet: &Packet) -> (usize, usize) {
        if packet.is_checkpoint() {
            (0, 1)
        } else {
            (packet.bytes(), 0)
        }
    }

    fn full_error(&self, needed: usize, needed_slots: usize) -> FifoFull {
        FifoFull {
            needed,
            free: self.entry_capacity.saturating_sub(self.used),
            needed_slots,
            free_slots: self.checkpoint_slots.saturating_sub(self.checkpoints),
        }
    }

    /// Occupancy accounting for one packet about to be enqueued whose
    /// capacity was already checked (or that spills).
    #[inline]
    fn note_push(&mut self, entry_bytes: usize, cps: usize) {
        if self.used + entry_bytes > self.entry_capacity
            || self.checkpoints + cps > self.checkpoint_slots
        {
            self.spilled += 1;
        }
        self.used += entry_bytes;
        self.checkpoints += cps;
        self.peak_used = self.peak_used.max(self.used);
        self.pushed += 1;
    }

    /// Enqueues an SCP, folding its architectural payload (not `seq`
    /// or `tag`) into the open segment fingerprint.
    #[inline]
    fn enqueue_scp(&mut self, cp: Checkpoint) {
        self.seg_hash = hash_snapshot(hash_mix(self.seg_hash, HASH_TAG_SCP), &cp.snapshot);
        let h = self.slab.alloc(cp);
        self.queue.push_back(Slot::Scp(h));
    }

    /// Enqueues a log entry, folding its fields into the fingerprint.
    #[inline]
    fn enqueue_mem(&mut self, e: LogEntry) {
        let mut h = hash_mix(self.seg_hash, HASH_TAG_MEM);
        h = hash_mix(h, ((e.kind as u64) << 8) | u64::from(e.size));
        h = hash_mix(h, e.addr);
        self.seg_hash = hash_mix(h, e.data);
        self.queue.push_back(Slot::Mem(e));
    }

    /// Enqueues a forwarded branch outcome, folding it into the
    /// fingerprint.
    #[inline]
    fn enqueue_branch(&mut self, next_pc: u64) {
        self.seg_hash = hash_mix(hash_mix(self.seg_hash, HASH_TAG_BRANCH), next_pc);
        self.queue.push_back(Slot::Branch(next_pc));
    }

    /// Enqueues an instruction count, folding it into the fingerprint.
    #[inline]
    fn enqueue_count(&mut self, v: u64) {
        self.seg_hash = hash_mix(hash_mix(self.seg_hash, HASH_TAG_COUNT), v);
        self.queue.push_back(Slot::InstCount(v));
    }

    /// Enqueues an ECP and *finalises* the segment fingerprint: the
    /// running hash (now covering SCP payload, every entry, the count and
    /// the ECP payload) is banked in [`BufferFifo::seg_hashes`] — or
    /// `None` if an in-flight mutation poisoned it — and reset for the
    /// next segment.
    #[inline]
    fn enqueue_ecp(&mut self, cp: Checkpoint) {
        self.seg_hash = hash_snapshot(hash_mix(self.seg_hash, HASH_TAG_ECP), &cp.snapshot);
        let finalised = (!self.seg_hash_poisoned).then_some(self.seg_hash);
        self.seg_hashes.push_back(finalised);
        self.seg_hash = HASH_SEED;
        self.seg_hash_poisoned = false;
        let h = self.slab.alloc(cp);
        self.ecps_pushed += 1;
        self.queue.push_back(Slot::Ecp(h));
    }

    /// Accounting + enqueue for a packet whose capacity was already
    /// checked (or that spills).
    #[inline]
    fn push_unchecked(&mut self, packet: Packet, entry_bytes: usize, cps: usize) {
        self.note_push(entry_bytes, cps);
        match packet {
            Packet::Mem(e) => self.enqueue_mem(e),
            Packet::Branch(pc) => self.enqueue_branch(pc),
            Packet::InstCount(v) => self.enqueue_count(v),
            Packet::Scp(cp) => self.enqueue_scp(*cp),
            Packet::Ecp(cp) => self.enqueue_ecp(*cp),
        }
    }

    /// Resolves a slot to a borrowed packet view.
    #[inline]
    fn slot_ref<'a>(&'a self, slot: &'a Slot) -> PacketRef<'a> {
        let cp = |h: &CpHandle| {
            self.slab
                .get(*h)
                .expect("buffered checkpoint handle is live")
        };
        match slot {
            Slot::Mem(e) => PacketRef::Mem(e),
            Slot::Branch(pc) => PacketRef::Branch(*pc),
            Slot::InstCount(v) => PacketRef::InstCount(*v),
            Slot::Scp(h) => PacketRef::Scp(cp(h)),
            Slot::Ecp(h) => PacketRef::Ecp(cp(h)),
        }
    }

    /// Whether all consumers have drained everything.
    pub fn is_fully_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pushes a packet.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] when the packet does not fit; the producer
    /// (main core) must stall — this is the backpressure path. With spill
    /// enabled, never fails.
    pub fn push(&mut self, packet: Packet) -> Result<(), FifoFull> {
        let (entry_bytes, cps) = Self::cost(&packet);
        if !self.can_accept(entry_bytes, cps) {
            return Err(self.full_error(entry_bytes, cps));
        }
        self.push_unchecked(packet, entry_bytes, cps);
        Ok(())
    }

    /// Pushes a burst of packets under a *single* capacity check: either
    /// the whole burst fits (or spills) and is enqueued in order, or
    /// nothing is enqueued. This is the producer half of the
    /// segment-granular datapath — the engine pushes a retire's log
    /// entries and a segment-close `InstCount`+ECP pair as one burst.
    ///
    /// Borrowed packets are cloned in; the hot path uses
    /// [`BufferFifo::push_burst_owned`] to move boxed checkpoint
    /// payloads without the extra allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] with the burst's aggregate byte/slot need
    /// when it does not fit; with spill enabled, never fails.
    pub fn push_burst(&mut self, packets: &[Packet]) -> Result<(), FifoFull> {
        let mut total_bytes = 0;
        let mut total_cps = 0;
        for p in packets {
            let (b, c) = Self::cost(p);
            total_bytes += b;
            total_cps += c;
        }
        if !self.can_accept(total_bytes, total_cps) {
            return Err(self.full_error(total_bytes, total_cps));
        }
        self.queue.reserve(packets.len());
        for p in packets {
            let (b, c) = Self::cost(p);
            self.push_unchecked(p.clone(), b, c);
        }
        Ok(())
    }

    /// [`BufferFifo::push_burst`] taking the packets by value: boxed
    /// checkpoint payloads move straight into the ring with no clone —
    /// the engine's segment open/close path uses this.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] with the burst's aggregate byte/slot need
    /// when it does not fit; with spill enabled, never fails.
    pub fn push_burst_owned<const N: usize>(
        &mut self,
        packets: [Packet; N],
    ) -> Result<(), FifoFull> {
        let mut total_bytes = 0;
        let mut total_cps = 0;
        for p in &packets {
            let (b, c) = Self::cost(p);
            total_bytes += b;
            total_cps += c;
        }
        if !self.can_accept(total_bytes, total_cps) {
            return Err(self.full_error(total_bytes, total_cps));
        }
        self.queue.reserve(N);
        for p in packets {
            let (b, c) = Self::cost(&p);
            self.push_unchecked(p, b, c);
        }
        Ok(())
    }

    /// Pushes a segment-opening SCP straight into the checkpoint slab —
    /// the engine's hot-loop entry point, taking the checkpoint by value
    /// with no intermediate `Box` allocation ([`Packet`] keeps its boxed
    /// variants for the public API boundary only).
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] when no checkpoint slot is free; with spill
    /// enabled, never fails.
    pub fn push_scp(&mut self, cp: Checkpoint) -> Result<(), FifoFull> {
        if !self.can_accept(0, 1) {
            return Err(self.full_error(0, 1));
        }
        self.note_push(0, 1);
        self.enqueue_scp(cp);
        Ok(())
    }

    /// Pushes a segment-closing `InstCount` + ECP pair under a single
    /// capacity check (all-or-nothing, like [`BufferFifo::push_burst`]),
    /// taking the checkpoint by value with no `Box` — the engine's
    /// hot-loop segment-close path.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] with the pair's aggregate need when it does
    /// not fit; with spill enabled, never fails.
    pub fn push_count_ecp(&mut self, count: u64, cp: Checkpoint) -> Result<(), FifoFull> {
        if !self.can_accept(8, 1) {
            return Err(self.full_error(8, 1));
        }
        self.note_push(8, 0);
        self.enqueue_count(count);
        self.note_push(0, 1);
        self.enqueue_ecp(cp);
        Ok(())
    }

    /// Peeks the next packet for `consumer` without consuming it. The
    /// packet is handed out *by reference* ([`PacketRef`]) — checkpoint
    /// payloads are >0.5 KiB and the hot path must not move them.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn peek(&self, consumer: usize) -> Option<PacketRef<'_>> {
        let pos = self.cursors[consumer];
        let idx = (pos - self.head_seq) as usize;
        self.queue.get(idx).map(|s| self.slot_ref(s))
    }

    /// Consumes the next packet for `consumer` *without returning it* —
    /// the zero-copy companion of [`BufferFifo::peek`]. Packets are
    /// ~`ArchSnapshot`-sized, so the replay hot path borrows via `peek`
    /// and then advances, never copying the packet out.
    ///
    /// Returns `false` if the consumer has no packet ahead.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn advance(&mut self, consumer: usize) -> bool {
        let pos = self.cursors[consumer];
        let idx = (pos - self.head_seq) as usize;
        let is_ecp = match self.queue.get(idx) {
            Some(s) => matches!(s, Slot::Ecp(_)),
            None => return false,
        };
        self.cursors[consumer] = pos + 1;
        if is_ecp {
            self.ecps_consumed[consumer] += 1;
        }
        self.note_min_leave(pos);
        true
    }

    /// Consumes the next packet for `consumer`. Storage is reclaimed once
    /// the slowest consumer passes the packet.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn pop(&mut self, consumer: usize) -> Option<Packet> {
        if self.cursors.len() == 1 && self.cursors[0] == self.head_seq {
            // Single consumer at the head: the packet is reclaimed the
            // moment it is consumed — pop the queue directly.
            let slot = self.queue.pop_front()?;
            self.cursors[0] += 1;
            self.head_seq += 1;
            let packet = match slot {
                Slot::Mem(e) => {
                    self.used -= entry_bytes(&e);
                    Packet::Mem(e)
                }
                Slot::Branch(pc) => {
                    self.used -= 8;
                    Packet::Branch(pc)
                }
                Slot::InstCount(v) => {
                    self.used -= 8;
                    Packet::InstCount(v)
                }
                Slot::Scp(h) => {
                    self.checkpoints -= 1;
                    Packet::scp(self.slab.free(h))
                }
                Slot::Ecp(h) => {
                    self.checkpoints -= 1;
                    self.ecps_consumed[0] += 1;
                    let cp = self.slab.free(h);
                    self.gc_seg_hashes();
                    Packet::ecp(cp)
                }
            };
            return Some(packet);
        }
        let packet = self.peek(consumer)?.to_packet();
        self.advance(consumer);
        Some(packet)
    }

    /// Bookkeeping after `consumer` moved off position `pos`: reclaims
    /// storage only when the minimum cursor actually moved.
    #[inline]
    fn note_min_leave(&mut self, pos: u64) {
        if pos == self.head_seq {
            self.at_min -= 1;
            if self.at_min == 0 {
                self.reclaim();
            }
        }
    }

    /// Length (in packets, ECPs included) of the next *complete* segment
    /// ahead of `consumer`, or `None` when no complete segment is
    /// buffered.
    fn segment_len_ahead(&self, consumer: usize) -> Option<usize> {
        if self.complete_segments_ahead(consumer) == 0 {
            return None;
        }
        let idx = (self.cursors[consumer] - self.head_seq) as usize;
        let len = self
            .queue
            .iter()
            .skip(idx)
            .position(|s| matches!(s, Slot::Ecp(_)))
            .expect("a complete segment must end in an ECP")
            + 1;
        Some(len)
    }

    /// Advances `consumer` by `n` packets of which `ecps` are ECPs, with
    /// a single reclaim pass.
    fn advance_n(&mut self, consumer: usize, n: usize, ecps: u64) {
        let pos = self.cursors[consumer];
        self.cursors[consumer] = pos + n as u64;
        self.ecps_consumed[consumer] += ecps;
        self.note_min_leave(pos);
    }

    /// Hands `consumer` its next complete segment (through the ECP) in
    /// one call: packets are appended to `out` in stream order, the
    /// cursor advances past the segment, and storage is reclaimed once —
    /// the consumer half of the segment-granular datapath. Returns the
    /// number of packets transferred, or `None` when no complete segment
    /// is buffered.
    ///
    /// End state (cursor, ECP accounting, reclaim) is byte-for-byte
    /// identical to popping the same packets one at a time.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn drain_segment_into(&mut self, consumer: usize, out: &mut Vec<Packet>) -> Option<usize> {
        let len = self.segment_len_ahead(consumer)?;
        let idx = (self.cursors[consumer] - self.head_seq) as usize;
        out.extend(
            self.queue
                .iter()
                .skip(idx)
                .take(len)
                .map(|s| self.slot_ref(s).to_packet()),
        );
        self.advance_n(consumer, len, 1);
        Some(len)
    }

    /// [`BufferFifo::drain_segment_into`], allocating the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn drain_segment(&mut self, consumer: usize) -> Option<Vec<Packet>> {
        let mut out = Vec::new();
        self.drain_segment_into(consumer, &mut out)?;
        Some(out)
    }

    /// Skips `consumer` past its next complete segment without copying
    /// any packet out — segment-granular resynchronisation after an
    /// aborted replay. Returns the number of packets skipped, or `None`
    /// when no complete segment is buffered.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn skip_segment(&mut self, consumer: usize) -> Option<usize> {
        let len = self.segment_len_ahead(consumer)?;
        self.advance_n(consumer, len, 1);
        Some(len)
    }

    /// Number of *complete* segments (terminated by an ECP) ahead of
    /// `consumer`. The checker starts replaying a segment only when it is
    /// fully buffered (the IC bounds the replay and no mid-segment stall
    /// can occur) — the Paramedic-style consumption model the paper's
    /// asynchronous checking builds on.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn complete_segments_ahead(&self, consumer: usize) -> u64 {
        self.ecps_pushed - self.ecps_consumed[consumer]
    }

    /// Fingerprint of the next *complete* segment ahead of `consumer`:
    /// the running hash folded over the segment's SCP payload, every log
    /// entry, the instruction count and the ECP payload at push time
    /// (checkpoint `seq`/`tag` excluded — they differ on every segment).
    ///
    /// `None` when the segment ahead is still open (its ECP has not been
    /// pushed) or when its fingerprint was poisoned by an in-flight
    /// mutation (`BufferFifo::packet_mut`) — both cases mean the
    /// verdict memo must fall back to full replay.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn next_segment_hash(&self, consumer: usize) -> Option<u64> {
        let idx = self.ecps_consumed[consumer].checked_sub(self.seg_hash_head)?;
        self.seg_hashes.get(idx as usize).copied().flatten()
    }

    /// Absolute stream position of `consumer`'s cursor. The verdict-memo
    /// recorder diffs this across a replay step to learn how many log
    /// entries the step consumed.
    #[inline]
    pub(crate) fn cursor(&self, consumer: usize) -> u64 {
        self.cursors[consumer]
    }

    /// Number of packets still ahead of `consumer`.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    #[inline]
    pub fn backlog(&self, consumer: usize) -> usize {
        let pos = self.cursors[consumer];
        self.queue.len() - (pos - self.head_seq) as usize
    }

    /// Reclaims storage up to the minimum cursor. Only called when the
    /// minimum provably moved ([`BufferFifo::note_min_leave`]), so the
    /// cursor scan is amortised over the min's progress instead of
    /// running on every pop.
    fn reclaim(&mut self) {
        let min_pos = *self.cursors.iter().min().expect("at least one consumer");
        while self.head_seq < min_pos {
            let slot = self.queue.pop_front().expect("cursor past queue head");
            match slot {
                Slot::Mem(e) => self.used -= entry_bytes(&e),
                Slot::Branch(_) | Slot::InstCount(_) => self.used -= 8,
                Slot::Scp(h) | Slot::Ecp(h) => {
                    self.checkpoints -= 1;
                    self.slab.free(h);
                }
            }
            self.head_seq += 1;
        }
        self.at_min = self.cursors.iter().filter(|&&c| c == min_pos).count();
        self.gc_seg_hashes();
    }

    /// Drops banked segment fingerprints every consumer has moved past —
    /// they can no longer be looked up, exactly like packet storage
    /// behind the minimum cursor.
    fn gc_seg_hashes(&mut self) {
        let min_ecp = *self.ecps_consumed.iter().min().expect("consumer");
        while self.seg_hash_head < min_ecp {
            self.seg_hashes.pop_front();
            self.seg_hash_head += 1;
        }
    }

    /// Drops all buffered packets and realigns cursors (used when the OS
    /// tears down an association).
    pub fn reset(&mut self) {
        let dropped = self.queue.len() as u64;
        self.queue.clear();
        self.slab.clear();
        self.seg_hashes.clear();
        self.seg_hash_head = self.ecps_pushed;
        self.seg_hash = HASH_SEED;
        self.seg_hash_poisoned = false;
        self.used = 0;
        self.checkpoints = 0;
        let max = *self.cursors.iter().max().unwrap_or(&0);
        let base = max.max(self.head_seq).max(self.head_seq + dropped);
        self.head_seq = base;
        for c in &mut self.cursors {
            *c = base;
        }
        self.at_min = self.cursors.len();
        for e in &mut self.ecps_consumed {
            *e = self.ecps_pushed;
        }
    }

    /// Borrowed view of a buffered packet by queue index (fault-injection
    /// candidate scans).
    pub(crate) fn packet_ref_at(&self, idx: usize) -> Option<PacketRef<'_>> {
        self.queue.get(idx).map(|s| self.slot_ref(s))
    }

    /// Copy of a buffered packet by queue index (test convenience).
    #[cfg(test)]
    pub(crate) fn packet_at(&self, idx: usize) -> Option<Packet> {
        self.packet_ref_at(idx).map(|r| r.to_packet())
    }

    /// Mutable access to a buffered packet by queue index (fault
    /// injection into in-flight data).
    ///
    /// Handing out the mutable view *poisons every buffered segment
    /// fingerprint* (banked and open): a mutated stream no longer matches
    /// the hash computed at push time, and a poisoned fingerprint can
    /// never be looked up in — or inserted into — the verdict memo, so a
    /// faulted stream is structurally incapable of being served from
    /// cache.
    pub(crate) fn packet_mut(&mut self, idx: usize) -> Option<PacketMut<'_>> {
        // Checkpoint payloads live in the slab: resolve the handle first
        // so the queue borrow ends before the slab is borrowed mutably.
        let handle = match self.queue.get(idx)? {
            Slot::Scp(h) | Slot::Ecp(h) => Some(*h),
            _ => None,
        };
        for banked in &mut self.seg_hashes {
            *banked = None;
        }
        // The open segment's running hash is only tainted when the
        // mutated packet sits past the last buffered ECP, i.e. belongs to
        // the segment still being produced.
        if !self
            .queue
            .iter()
            .skip(idx)
            .any(|s| matches!(s, Slot::Ecp(_)))
        {
            self.seg_hash_poisoned = true;
        }
        if let Some(h) = handle {
            let is_scp = matches!(self.queue[idx], Slot::Scp(_));
            let cp = self
                .slab
                .get_mut(h)
                .expect("buffered checkpoint handle is live");
            return Some(if is_scp {
                PacketMut::Scp(cp)
            } else {
                PacketMut::Ecp(cp)
            });
        }
        match self.queue.get_mut(idx)? {
            Slot::Mem(e) => Some(PacketMut::Mem(e)),
            Slot::Branch(pc) => Some(PacketMut::Branch(pc)),
            Slot::InstCount(v) => Some(PacketMut::InstCount(v)),
            Slot::Scp(_) | Slot::Ecp(_) => unreachable!("handled above"),
        }
    }

    /// Number of packets currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{LogEntry, LogKind};

    fn entry(data: u64) -> Packet {
        Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0x100,
            size: 8,
            data,
        })
    }

    #[test]
    fn fifo_orders_packets() {
        let mut f = BufferFifo::new(1024, 4);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        assert_eq!(f.pop(0), Some(entry(1)));
        assert_eq!(f.pop(0), Some(entry(2)));
        assert_eq!(f.pop(0), None);
    }

    #[test]
    fn capacity_enforced_and_reported() {
        let mut f = BufferFifo::new(40, 2); // fits two 16-byte entries
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        let err = f.push(entry(3)).unwrap_err();
        assert_eq!(
            err,
            FifoFull {
                needed: 16,
                free: 8,
                needed_slots: 0,
                free_slots: 2,
            }
        );
        f.pop(0);
        assert!(f.push(entry(3)).is_ok());
    }

    #[test]
    fn rejected_checkpoint_reports_slot_need() {
        use crate::packet::Checkpoint;
        use flexstep_sim::ArchState;
        let cp = |n: u64| {
            Packet::scp(Checkpoint {
                snapshot: ArchState::new(n).snapshot(),
                seq: n,
                tag: 0,
            })
        };
        let mut f = BufferFifo::new(1024, 1);
        f.push(cp(0)).unwrap();
        let err = f.push(cp(1)).unwrap_err();
        assert_eq!(
            err,
            FifoFull {
                needed: 0,
                free: 1024,
                needed_slots: 1,
                free_slots: 0,
            },
            "a checkpoint reject is a slot shortage, not a byte shortage"
        );
    }

    #[test]
    fn push_burst_is_all_or_nothing() {
        let mut f = BufferFifo::new(40, 2); // fits two 16-byte entries
        f.push(entry(0)).unwrap();
        let err = f.push_burst(&[entry(1), entry(2)]).unwrap_err();
        assert_eq!(err.needed, 32, "burst reports aggregate need");
        assert_eq!(f.len(), 1, "failed burst enqueues nothing");
        f.push_burst(&[entry(1)]).unwrap();
        assert_eq!(f.pop(0), Some(entry(0)));
        assert_eq!(f.pop(0), Some(entry(1)));
    }

    #[test]
    fn push_burst_owned_matches_borrowed_burst() {
        use crate::packet::Checkpoint;
        use flexstep_sim::ArchState;
        let cp = Packet::ecp(Checkpoint {
            snapshot: ArchState::new(3).snapshot(),
            seq: 0,
            tag: 0,
        });
        let mut borrowed = BufferFifo::new(64, 2);
        borrowed
            .push_burst(&[Packet::InstCount(2), cp.clone()])
            .unwrap();
        let mut owned = BufferFifo::new(64, 2);
        owned
            .push_burst_owned([Packet::InstCount(2), cp.clone()])
            .unwrap();
        for c in [&mut borrowed, &mut owned] {
            assert_eq!(c.pop(0), Some(Packet::InstCount(2)));
            assert_eq!(c.pop(0), Some(cp.clone()));
        }
        // All-or-nothing holds for the owned variant too.
        let mut tight = BufferFifo::new(24, 2);
        let err = tight.push_burst_owned([entry(1), entry(2)]).unwrap_err();
        assert_eq!(err.needed, 32, "owned burst reports aggregate need");
        assert_eq!(tight.len(), 0, "failed owned burst enqueues nothing");
    }

    #[test]
    fn advance_consumes_without_copying_out() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        assert!(f.advance(0));
        assert_eq!(f.peek(0).map(|r| r.to_packet()), Some(entry(2)));
        assert_eq!(f.used_bytes(), 16, "advanced packet was reclaimed");
        assert!(f.advance(0));
        assert!(!f.advance(0), "nothing left");
        assert!(f.is_fully_drained());
    }

    #[test]
    fn drain_segment_hands_whole_segment() {
        use crate::packet::Checkpoint;
        use flexstep_sim::ArchState;
        let snap = ArchState::new(0).snapshot();
        let scp = Packet::scp(Checkpoint {
            snapshot: snap,
            seq: 0,
            tag: 0,
        });
        let ecp = Packet::ecp(Checkpoint {
            snapshot: snap,
            seq: 0,
            tag: 0,
        });
        let mut f = BufferFifo::new(4096, 4);
        f.push_burst(&[scp.clone(), entry(1), entry(2), Packet::InstCount(2)])
            .unwrap();
        assert_eq!(f.drain_segment(0), None, "segment still open");
        f.push(ecp.clone()).unwrap();
        // The ECP completes it — now the whole segment comes out at once.
        let seg = {
            let mut f2 = f.clone();
            f2.push(entry(9)).unwrap(); // next segment's first packet
            f2.drain_segment(0).unwrap()
        };
        assert_eq!(seg.len(), 5);
        assert_eq!(seg[0], scp);
        assert_eq!(seg[4], ecp);
        // skip_segment reaches the same cursor/reclaim state.
        let mut f3 = f.clone();
        f3.push(entry(9)).unwrap();
        assert_eq!(f3.skip_segment(0), Some(5));
        assert_eq!(f3.peek(0).map(|r| r.to_packet()), Some(entry(9)));
        assert_eq!(f3.len(), 1, "segment storage reclaimed in one pass");
        assert_eq!(f3.complete_segments_ahead(0), 0);
    }

    #[test]
    fn two_consumers_share_storage() {
        let mut f = BufferFifo::new(64, 2);
        f.set_consumers(2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        // Consumer 0 reads both; storage is NOT reclaimed yet.
        assert_eq!(f.pop(0), Some(entry(1)));
        assert_eq!(f.pop(0), Some(entry(2)));
        assert_eq!(f.used_bytes(), 32, "slow consumer still holds the data");
        assert!(!f.can_accept(64, 0));
        // Consumer 1 catches up; storage frees.
        assert_eq!(f.pop(1), Some(entry(1)));
        assert_eq!(f.used_bytes(), 16);
        assert_eq!(f.pop(1), Some(entry(2)));
        assert_eq!(f.used_bytes(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(9)).unwrap();
        assert_eq!(f.peek(0).map(|r| r.to_packet()), Some(entry(9)));
        assert_eq!(f.peek(0).map(|r| r.to_packet()), Some(entry(9)));
        assert_eq!(f.backlog(0), 1);
        f.pop(0);
        assert!(f.peek(0).is_none());
        assert_eq!(f.backlog(0), 0);
    }

    #[test]
    fn peak_usage_tracked() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        f.pop(0);
        f.pop(0);
        assert_eq!(f.used_bytes(), 0);
        assert_eq!(f.peak_used_bytes(), 32);
        assert_eq!(f.total_pushed(), 2);
    }

    #[test]
    fn reset_realigns_all_cursors() {
        let mut f = BufferFifo::new(128, 2);
        f.set_consumers(2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        f.pop(0);
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.used_bytes(), 0);
        f.push(entry(3)).unwrap();
        assert_eq!(f.pop(0), Some(entry(3)));
        assert_eq!(f.pop(1), Some(entry(3)));
    }

    #[test]
    #[should_panic(expected = "cannot re-channel")]
    fn rechannel_requires_empty() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(1)).unwrap();
        f.set_consumers(2);
    }

    use crate::packet::Checkpoint;
    use flexstep_sim::ArchState;

    /// Pushes one complete segment `[SCP, entry(d1), entry(d2), IC, ECP]`
    /// built from `hart`'s reset state, with checkpoint bookkeeping
    /// `seq`/`tag`.
    fn push_segment(f: &mut BufferFifo, hart: u64, d: [u64; 2], seq: u64, tag: u64) {
        let snap = ArchState::new(hart).snapshot();
        f.push(Packet::scp(Checkpoint {
            snapshot: snap,
            seq,
            tag,
        }))
        .unwrap();
        f.push(entry(d[0])).unwrap();
        f.push(entry(d[1])).unwrap();
        f.push_burst_owned([
            Packet::InstCount(2),
            Packet::ecp(Checkpoint {
                snapshot: snap,
                seq,
                tag,
            }),
        ])
        .unwrap();
    }

    #[test]
    fn identical_streams_fingerprint_identically_despite_seq_and_tag() {
        let mut f = BufferFifo::new(4096, 8);
        f.set_spill(true);
        // Same architectural content, different seq/tag bookkeeping.
        push_segment(&mut f, 1, [10, 20], 0, 7);
        push_segment(&mut f, 1, [10, 20], 1, 8);
        // Different content.
        push_segment(&mut f, 1, [10, 21], 2, 7);
        let h0 = f.next_segment_hash(0).expect("complete segment");
        f.skip_segment(0).unwrap();
        let h1 = f.next_segment_hash(0).expect("complete segment");
        f.skip_segment(0).unwrap();
        let h2 = f.next_segment_hash(0).expect("complete segment");
        assert_eq!(h0, h1, "seq/tag must not perturb the fingerprint");
        assert_ne!(h0, h2, "a one-bit data change must perturb it");
    }

    #[test]
    fn open_segment_has_no_fingerprint_yet() {
        let snap = ArchState::new(0).snapshot();
        let mut f = BufferFifo::new(4096, 8);
        f.push(Packet::scp(Checkpoint {
            snapshot: snap,
            seq: 0,
            tag: 0,
        }))
        .unwrap();
        f.push(entry(1)).unwrap();
        assert_eq!(f.next_segment_hash(0), None, "no ECP pushed yet");
        f.push_burst_owned([
            Packet::InstCount(1),
            Packet::ecp(Checkpoint {
                snapshot: snap,
                seq: 0,
                tag: 0,
            }),
        ])
        .unwrap();
        assert!(f.next_segment_hash(0).is_some());
    }

    #[test]
    fn direct_push_apis_match_the_packet_path_bit_for_bit() {
        let snap = ArchState::new(3).snapshot();
        let scp = Checkpoint {
            snapshot: snap,
            seq: 5,
            tag: 1,
        };
        let ecp = Checkpoint {
            snapshot: snap,
            seq: 5,
            tag: 1,
        };
        let mut boxed = BufferFifo::new(4096, 8);
        boxed.push(Packet::scp(scp)).unwrap();
        boxed.push(entry(9)).unwrap();
        boxed
            .push_burst_owned([Packet::InstCount(1), Packet::ecp(ecp)])
            .unwrap();
        let mut direct = BufferFifo::new(4096, 8);
        direct.push_scp(scp).unwrap();
        direct.push(entry(9)).unwrap();
        direct.push_count_ecp(1, ecp).unwrap();
        assert_eq!(direct.next_segment_hash(0), boxed.next_segment_hash(0));
        assert_eq!(direct.len(), boxed.len());
        assert_eq!(direct.used_bytes(), boxed.used_bytes());
        for _ in 0..5 {
            assert_eq!(direct.pop(0), boxed.pop(0));
        }
    }

    #[test]
    fn in_flight_mutation_poisons_every_buffered_fingerprint() {
        let mut f = BufferFifo::new(4096, 8);
        f.set_spill(true);
        push_segment(&mut f, 1, [10, 20], 0, 0);
        push_segment(&mut f, 1, [30, 40], 1, 0);
        assert!(f.next_segment_hash(0).is_some());
        // Mutate one in-flight entry (what fault injection does).
        if let Some(PacketMut::Mem(e)) = f.packet_mut(1) {
            e.data ^= 1 << 4;
        } else {
            panic!("expected a mem entry at index 1");
        }
        assert_eq!(f.next_segment_hash(0), None, "banked fingerprints die");
        f.skip_segment(0).unwrap();
        assert_eq!(f.next_segment_hash(0), None, "all segments are suspect");
        // The poison does not outlive the buffered data: fresh segments
        // pushed after the mutation fingerprint normally again.
        f.skip_segment(0).unwrap();
        push_segment(&mut f, 1, [50, 60], 2, 0);
        assert!(f.next_segment_hash(0).is_some());
    }

    #[test]
    fn open_segment_mutation_poisons_its_eventual_fingerprint() {
        let snap = ArchState::new(0).snapshot();
        let mut f = BufferFifo::new(4096, 8);
        f.push(Packet::scp(Checkpoint {
            snapshot: snap,
            seq: 0,
            tag: 0,
        }))
        .unwrap();
        f.push(entry(1)).unwrap();
        // Mutate while the segment is still open...
        if let Some(PacketMut::Mem(e)) = f.packet_mut(1) {
            e.data = 99;
        }
        // ...then close it: the finalised fingerprint must be poisoned.
        f.push_burst_owned([
            Packet::InstCount(1),
            Packet::ecp(Checkpoint {
                snapshot: snap,
                seq: 0,
                tag: 0,
            }),
        ])
        .unwrap();
        assert_eq!(f.next_segment_hash(0), None);
    }

    #[test]
    fn slab_handles_die_across_skip_and_drain_resync() {
        let mut f = BufferFifo::new(4096, 8);
        f.set_spill(true);
        push_segment(&mut f, 1, [10, 20], 0, 0);
        push_segment(&mut f, 2, [30, 40], 1, 0);
        // Capture the handles of the first segment's SCP and ECP straight
        // from the queue slots.
        let (scp_h, ecp_h) = match (f.queue[0], f.queue[4]) {
            (Slot::Scp(s), Slot::Ecp(e)) => (s, e),
            other => panic!("unexpected slots: {other:?}"),
        };
        assert_eq!(f.slab.get(scp_h).unwrap().seq, 0);
        // Abort/resync path: skip the whole segment.
        f.skip_segment(0).unwrap();
        assert!(f.slab.get(scp_h).is_none(), "SCP handle freed on skip");
        assert!(f.slab.get(ecp_h).is_none(), "ECP handle freed on skip");
        // The second segment recycles slab slots under new generations;
        // its packets are intact and the stale handles still miss.
        let seg = f.drain_segment(0).unwrap();
        assert_eq!(seg.len(), 5);
        assert!(f.slab.get(scp_h).is_none(), "stale handle stays dead");
        assert_eq!(f.slab.live(), 0, "drain freed the recycled slots too");
    }

    #[test]
    fn reset_frees_all_slab_storage() {
        let mut f = BufferFifo::new(4096, 8);
        f.set_spill(true);
        push_segment(&mut f, 1, [10, 20], 0, 0);
        let h = match f.queue[0] {
            Slot::Scp(h) => h,
            _ => unreachable!(),
        };
        f.reset();
        assert!(f.slab.get(h).is_none(), "reset invalidates handles");
        assert_eq!(f.slab.live(), 0);
        assert_eq!(f.next_segment_hash(0), None);
    }
}
