//! Data Buffering and Channelling units (Fig. 2.c).
//!
//! Each core owns a [`BufferFifo`] — the SRAM FIFO that buffers a main
//! core's outgoing checking-segment data. The System Interconnect
//! (a MUX/DEMUX network controlled by the global configuration register)
//! routes a main core's FIFO to one or more checker cores: the FIFO
//! therefore supports *multiple consumers with independent cursors*, and a
//! packet's storage is only reclaimed once every consumer has passed it.
//! This is what makes triple-core mode (1 : 2) slightly slower than
//! dual-core mode in Fig. 6 — the slower checker gates reclamation and
//! back-pressures the main core sooner.

use crate::packet::Packet;
use std::collections::VecDeque;
use std::fmt;

/// Error returned when a push would exceed the FIFO capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull {
    /// Bytes the rejected packet needed.
    pub needed: usize,
    /// Bytes currently free.
    pub free: usize,
}

impl fmt::Display for FifoFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fifo full: need {} bytes, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for FifoFull {}

/// An SRAM data-buffer FIFO with independent consumer cursors.
///
/// Capacity is accounted per packet class, mirroring the paper's storage
/// split: log entries and instruction counts occupy the DBC SRAM
/// (`entry_capacity` bytes, 1 088 B in Tab. III), while SCP/ECP
/// checkpoints stage through the ASS and are limited by *slots*
/// (`checkpoint_slots`, double-buffered per §III-A). Optionally, overflow
/// spills to main memory via DMA (§III-C), making pushes unbounded but
/// tracked for cost accounting.
#[derive(Debug, Clone)]
pub struct BufferFifo {
    entry_capacity: usize,
    checkpoint_slots: usize,
    spill: bool,
    /// Packets not yet consumed by *all* consumers, oldest first.
    queue: VecDeque<Packet>,
    /// Absolute sequence number of `queue[0]`.
    head_seq: u64,
    /// Absolute position of each consumer (next packet to read).
    cursors: Vec<u64>,
    /// Entry-class bytes held by `queue`.
    used: usize,
    /// Checkpoint packets held by `queue`.
    checkpoints: usize,
    /// High-water mark of entry bytes, for experiments.
    peak_used: usize,
    /// Packets pushed beyond SRAM capacity (DMA spill traffic).
    spilled: u64,
    /// Total packets ever pushed.
    pushed: u64,
    /// ECP packets ever pushed (complete-segment tracking).
    ecps_pushed: u64,
    /// ECP packets consumed, per consumer.
    ecps_consumed: Vec<u64>,
}

impl BufferFifo {
    /// Creates a FIFO with the given entry-byte capacity, checkpoint
    /// slots, and one consumer.
    pub fn new(entry_capacity: usize, checkpoint_slots: usize) -> Self {
        BufferFifo {
            entry_capacity,
            checkpoint_slots,
            spill: false,
            queue: VecDeque::new(),
            head_seq: 0,
            cursors: vec![0],
            used: 0,
            checkpoints: 0,
            peak_used: 0,
            spilled: 0,
            pushed: 0,
            ecps_pushed: 0,
            ecps_consumed: vec![0],
        }
    }

    /// Enables or disables DMA spill to main memory: when enabled, pushes
    /// never fail, but packets beyond SRAM capacity are counted in
    /// [`BufferFifo::spilled`](Self::spilled_packets) so the engine can
    /// charge DMA cycles.
    pub fn set_spill(&mut self, spill: bool) {
        self.spill = spill;
    }

    /// Packets pushed while the SRAM was full (went through DMA spill).
    pub fn spilled_packets(&self) -> u64 {
        self.spilled
    }

    /// Reconfigures the number of consumers (1 for DCLS-like, 2 for
    /// TCLS-like channels). Resets cursors; only valid on an empty FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is not empty — the interconnect may only be
    /// reconfigured between segments.
    pub fn set_consumers(&mut self, n: usize) {
        assert!(self.queue.is_empty(), "cannot re-channel a non-empty FIFO");
        assert!(n >= 1, "at least one consumer required");
        self.cursors = vec![self.head_seq; n];
        self.ecps_consumed = vec![self.ecps_pushed; n];
    }

    /// Number of consumers.
    pub fn consumers(&self) -> usize {
        self.cursors.len()
    }

    /// Entry-class capacity in bytes (the DBC SRAM size).
    pub fn capacity_bytes(&self) -> usize {
        self.entry_capacity
    }

    /// Entry-class bytes currently buffered (not yet consumed by all
    /// consumers).
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Checkpoints currently in flight.
    pub fn checkpoints_in_flight(&self) -> usize {
        self.checkpoints
    }

    /// Highest entry-byte usage observed.
    pub fn peak_used_bytes(&self) -> usize {
        self.peak_used
    }

    /// Total packets pushed over the FIFO's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Whether `entry_bytes` more entry bytes and `cps` more checkpoints
    /// would fit right now (always `true` with spill enabled).
    pub fn can_accept(&self, entry_bytes: usize, cps: usize) -> bool {
        self.spill
            || (self.used + entry_bytes <= self.entry_capacity
                && self.checkpoints + cps <= self.checkpoint_slots)
    }

    /// Whether all consumers have drained everything.
    pub fn is_fully_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pushes a packet.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] when the packet does not fit; the producer
    /// (main core) must stall — this is the backpressure path. With spill
    /// enabled, never fails.
    pub fn push(&mut self, packet: Packet) -> Result<(), FifoFull> {
        let (entry_bytes, cps) = if packet.is_checkpoint() {
            (0, 1)
        } else {
            (packet.bytes(), 0)
        };
        if !self.can_accept(entry_bytes, cps) {
            return Err(FifoFull {
                needed: entry_bytes.max(cps * Packet::bytes(&packet)),
                free: self.entry_capacity.saturating_sub(self.used),
            });
        }
        if self.used + entry_bytes > self.entry_capacity
            || self.checkpoints + cps > self.checkpoint_slots
        {
            self.spilled += 1;
        }
        self.used += entry_bytes;
        self.checkpoints += cps;
        self.peak_used = self.peak_used.max(self.used);
        self.pushed += 1;
        if matches!(packet, Packet::Ecp(_)) {
            self.ecps_pushed += 1;
        }
        self.queue.push_back(packet);
        Ok(())
    }

    /// Peeks the next packet for `consumer` without consuming it.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn peek(&self, consumer: usize) -> Option<&Packet> {
        let pos = self.cursors[consumer];
        let idx = (pos - self.head_seq) as usize;
        self.queue.get(idx)
    }

    /// Consumes the next packet for `consumer`. Storage is reclaimed once
    /// the slowest consumer passes the packet.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn pop(&mut self, consumer: usize) -> Option<Packet> {
        let pos = self.cursors[consumer];
        let idx = (pos - self.head_seq) as usize;
        let packet = *self.queue.get(idx)?;
        self.cursors[consumer] += 1;
        if matches!(packet, Packet::Ecp(_)) {
            self.ecps_consumed[consumer] += 1;
        }
        self.reclaim();
        Some(packet)
    }

    /// Number of *complete* segments (terminated by an ECP) ahead of
    /// `consumer`. The checker starts replaying a segment only when it is
    /// fully buffered (the IC bounds the replay and no mid-segment stall
    /// can occur) — the Paramedic-style consumption model the paper's
    /// asynchronous checking builds on.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn complete_segments_ahead(&self, consumer: usize) -> u64 {
        self.ecps_pushed - self.ecps_consumed[consumer]
    }

    /// Number of packets still ahead of `consumer`.
    ///
    /// # Panics
    ///
    /// Panics if `consumer` is out of range.
    pub fn backlog(&self, consumer: usize) -> usize {
        let pos = self.cursors[consumer];
        self.queue.len() - (pos - self.head_seq) as usize
    }

    fn reclaim(&mut self) {
        let min_pos = *self.cursors.iter().min().expect("at least one consumer");
        while self.head_seq < min_pos {
            let packet = self.queue.pop_front().expect("cursor past queue head");
            if packet.is_checkpoint() {
                self.checkpoints -= 1;
            } else {
                self.used -= packet.bytes();
            }
            self.head_seq += 1;
        }
    }

    /// Drops all buffered packets and realigns cursors (used when the OS
    /// tears down an association).
    pub fn reset(&mut self) {
        let dropped = self.queue.len() as u64;
        self.queue.clear();
        self.used = 0;
        self.checkpoints = 0;
        let max = *self.cursors.iter().max().unwrap_or(&0);
        let base = max.max(self.head_seq).max(self.head_seq + dropped);
        self.head_seq = base;
        for c in &mut self.cursors {
            *c = base;
        }
        for e in &mut self.ecps_consumed {
            *e = self.ecps_pushed;
        }
    }

    /// Mutable access to a buffered packet by queue index (fault
    /// injection into in-flight data).
    pub(crate) fn packet_mut(&mut self, idx: usize) -> Option<&mut Packet> {
        self.queue.get_mut(idx)
    }

    /// Number of packets currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{LogEntry, LogKind};

    fn entry(data: u64) -> Packet {
        Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0x100,
            size: 8,
            data,
        })
    }

    #[test]
    fn fifo_orders_packets() {
        let mut f = BufferFifo::new(1024, 4);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        assert_eq!(f.pop(0), Some(entry(1)));
        assert_eq!(f.pop(0), Some(entry(2)));
        assert_eq!(f.pop(0), None);
    }

    #[test]
    fn capacity_enforced_and_reported() {
        let mut f = BufferFifo::new(40, 2); // fits two 16-byte entries
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        let err = f.push(entry(3)).unwrap_err();
        assert_eq!(
            err,
            FifoFull {
                needed: 16,
                free: 8
            }
        );
        f.pop(0);
        assert!(f.push(entry(3)).is_ok());
    }

    #[test]
    fn two_consumers_share_storage() {
        let mut f = BufferFifo::new(64, 2);
        f.set_consumers(2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        // Consumer 0 reads both; storage is NOT reclaimed yet.
        assert_eq!(f.pop(0), Some(entry(1)));
        assert_eq!(f.pop(0), Some(entry(2)));
        assert_eq!(f.used_bytes(), 32, "slow consumer still holds the data");
        assert!(!f.can_accept(64, 0));
        // Consumer 1 catches up; storage frees.
        assert_eq!(f.pop(1), Some(entry(1)));
        assert_eq!(f.used_bytes(), 16);
        assert_eq!(f.pop(1), Some(entry(2)));
        assert_eq!(f.used_bytes(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(9)).unwrap();
        assert_eq!(f.peek(0), Some(&entry(9)));
        assert_eq!(f.peek(0), Some(&entry(9)));
        assert_eq!(f.backlog(0), 1);
        f.pop(0);
        assert_eq!(f.peek(0), None);
        assert_eq!(f.backlog(0), 0);
    }

    #[test]
    fn peak_usage_tracked() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        f.pop(0);
        f.pop(0);
        assert_eq!(f.used_bytes(), 0);
        assert_eq!(f.peak_used_bytes(), 32);
        assert_eq!(f.total_pushed(), 2);
    }

    #[test]
    fn reset_realigns_all_cursors() {
        let mut f = BufferFifo::new(128, 2);
        f.set_consumers(2);
        f.push(entry(1)).unwrap();
        f.push(entry(2)).unwrap();
        f.pop(0);
        f.reset();
        assert!(f.is_empty());
        assert_eq!(f.used_bytes(), 0);
        f.push(entry(3)).unwrap();
        assert_eq!(f.pop(0), Some(entry(3)));
        assert_eq!(f.pop(1), Some(entry(3)));
    }

    #[test]
    #[should_panic(expected = "cannot re-channel")]
    fn rechannel_requires_empty() {
        let mut f = BufferFifo::new(64, 2);
        f.push(entry(1)).unwrap();
        f.set_consumers(2);
    }
}
