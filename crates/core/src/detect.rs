//! Detection events and mismatch classification.

use flexstep_sim::hart::SnapshotDiff;
use std::fmt;

/// How a divergence between main and checker execution was detected.
#[derive(Debug, Clone, PartialEq)]
pub enum MismatchKind {
    /// The replayed instruction's access class differs from the log entry
    /// (e.g. the checker executed a store where the log holds a load).
    LogKind {
        /// Entry kind found in the log.
        expected: String,
        /// Access class the checker produced.
        actual: String,
    },
    /// Effective-address mismatch on a logged access.
    LogAddr {
        /// Address recorded by the main core.
        expected: u64,
        /// Address computed by the checker.
        actual: u64,
    },
    /// Data mismatch on a store/SC/AMO entry.
    LogData {
        /// Data recorded by the main core.
        expected: u64,
        /// Data computed by the checker.
        actual: u64,
    },
    /// End-checkpoint architectural-state mismatch; carries the differing
    /// fields.
    Ecp {
        /// The differing checkpoint fields.
        diffs: Vec<SnapshotDiff>,
    },
    /// The checker needed a log entry but the stream held a control
    /// packet or ended prematurely (count corruption, protocol break).
    LogUnderrun,
    /// Replay execution itself faulted (illegal instruction, misaligned
    /// access) — corrupted forwarded state derailed the checker.
    CheckerFault {
        /// Human-readable fault description.
        what: String,
    },
    /// The replayed instruction count overran the received count packet.
    CountOverrun {
        /// Count received from the main core.
        expected: u64,
        /// Count the checker reached.
        actual: u64,
    },
    /// A forwarded branch outcome disagreed with the replayed control
    /// flow (out-of-order mains forward `next_pc` per retired branch).
    BranchOutcome {
        /// `next_pc` forwarded by the main core.
        expected: u64,
        /// `next_pc` the checker's replay produced.
        actual: u64,
    },
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchKind::LogKind { expected, actual } => {
                write!(
                    f,
                    "log kind mismatch: log has {expected}, checker did {actual}"
                )
            }
            MismatchKind::LogAddr { expected, actual } => {
                write!(
                    f,
                    "address mismatch: log {expected:#x}, checker {actual:#x}"
                )
            }
            MismatchKind::LogData { expected, actual } => {
                write!(f, "data mismatch: log {expected:#x}, checker {actual:#x}")
            }
            MismatchKind::Ecp { diffs } => {
                write!(f, "ECP mismatch in {} field(s)", diffs.len())?;
                if let Some(first) = diffs.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
            MismatchKind::LogUnderrun => write!(f, "log underrun / protocol break"),
            MismatchKind::CheckerFault { what } => write!(f, "checker fault: {what}"),
            MismatchKind::CountOverrun { expected, actual } => {
                write!(
                    f,
                    "count overrun: main reported {expected}, checker at {actual}"
                )
            }
            MismatchKind::BranchOutcome { expected, actual } => {
                write!(
                    f,
                    "branch outcome mismatch: forwarded {expected:#x}, replayed {actual:#x}"
                )
            }
        }
    }
}

/// An error-detection event reported by a checker core (`C.result`
/// returning a failure).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionEvent {
    /// The main core whose stream failed verification.
    pub main_core: usize,
    /// The checker core that detected it.
    pub checker_core: usize,
    /// The failing segment's sequence number.
    pub segment_seq: u64,
    /// The OS stream tag (task id) of the segment.
    pub tag: u64,
    /// What diverged.
    pub kind: MismatchKind,
    /// Cycle at which the checker flagged the mismatch.
    pub detected_at: u64,
}

impl fmt::Display for DetectionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detection @{}: core {} checking core {} segment {}: {}",
            self.detected_at, self.checker_core, self.main_core, self.segment_seq, self.kind
        )
    }
}

/// Verification verdict of one completed segment (the value `C.result`
/// returns to the checker thread).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentResult {
    /// Segment sequence number.
    pub seq: u64,
    /// Stream tag.
    pub tag: u64,
    /// `None` when the segment verified clean; the mismatch otherwise.
    pub mismatch: Option<MismatchKind>,
    /// Cycle at which the verdict was produced.
    pub at: u64,
}

impl SegmentResult {
    /// Whether the segment verified clean.
    pub fn is_ok(&self) -> bool {
        self.mismatch.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let k = MismatchKind::LogAddr {
            expected: 0x1000,
            actual: 0x1008,
        };
        assert_eq!(
            k.to_string(),
            "address mismatch: log 0x1000, checker 0x1008"
        );
        let e = DetectionEvent {
            main_core: 0,
            checker_core: 1,
            segment_seq: 5,
            tag: 9,
            kind: MismatchKind::LogUnderrun,
            detected_at: 1234,
        };
        let s = e.to_string();
        assert!(s.contains("segment 5"));
        assert!(s.contains("@1234"));
    }

    #[test]
    fn segment_result_verdict() {
        let ok = SegmentResult {
            seq: 0,
            tag: 0,
            mismatch: None,
            at: 10,
        };
        assert!(ok.is_ok());
        let bad = SegmentResult {
            seq: 1,
            tag: 0,
            mismatch: Some(MismatchKind::LogUnderrun),
            at: 20,
        };
        assert!(!bad.is_ok());
    }

    #[test]
    fn ecp_display_counts_fields() {
        let k = MismatchKind::Ecp {
            diffs: vec![SnapshotDiff {
                field: "x5".into(),
                expected: 1,
                actual: 2,
            }],
        };
        let s = k.to_string();
        assert!(s.contains("1 field"));
        assert!(s.contains("x5"));
    }
}
