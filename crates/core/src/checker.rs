//! Checker-core replay machinery.
//!
//! A checker core re-executes checking segments with the *same executor*
//! as the main core, but its data-memory port is a [`ReplayPort`] backed
//! by the Memory Access Log stream instead of the cache hierarchy: loads
//! return the logged data, and stores/SC/AMO are verified against the log
//! at commit, raising a detection the moment they diverge (§III-B).

use crate::dbc::BufferFifo;
use crate::detect::{MismatchKind, SegmentResult};
use crate::memo::{Playback, Recording, VerdictMemo};
use crate::packet::{LogKind, PacketRef};
use crate::rcpm::Ass;
use flexstep_isa::inst::{AmoOp, AmoWidth};
use flexstep_sim::port::{amo_apply, DataPort, PortStop};
use std::collections::VecDeque;

/// Where a busy checker is within the Al. 2 loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPhase {
    /// Waiting for (or about to apply) the next SCP.
    WaitScp,
    /// Replaying a segment.
    Replaying {
        /// Segment sequence number.
        seq: u64,
        /// Stream tag (task id).
        tag: u64,
        /// User instructions replayed so far.
        count: u64,
        /// The main core's instruction count, once its packet has been
        /// observed at the head of the stream.
        ic: Option<u64>,
    },
    /// Count matched; waiting for the ECP to compare.
    WaitEcp {
        /// Segment sequence number.
        seq: u64,
        /// Stream tag (task id).
        tag: u64,
        /// Final replayed count.
        count: u64,
    },
}

/// Per-core checker state (the checker-role half of a FlexStep core).
#[derive(Debug)]
pub struct CheckerState {
    /// `C.check_state`: busy (checking) or idle.
    pub busy: bool,
    /// The ASS unit (saved context + staged SCP).
    pub ass: Ass,
    /// Current position in the checking loop.
    pub phase: CheckPhase,
    /// Completed segment verdicts, oldest first (`C.result` consumes
    /// from the front).
    pub results: VecDeque<SegmentResult>,
    /// Segments fully verified (clean or not).
    pub segments_checked: u64,
    /// Segments that failed verification.
    pub segments_failed: u64,
    /// Stale packets discarded while waiting for an SCP (post-abort
    /// resynchronisation).
    pub skipped_packets: u64,
    /// Segment-verdict memo (see `memo.rs`); capacity set by
    /// `FabricConfig::memo_capacity` when the fabric builds the unit.
    pub(crate) memo: VerdictMemo,
    /// Active memo-hit playback: the cached timing profile being
    /// re-charged in place of real replay.
    pub(crate) playback: Option<Playback>,
    /// In-progress profile recording for a memoizable segment.
    pub(crate) recording: Option<Recording>,
}

impl Default for CheckerState {
    fn default() -> Self {
        CheckerState {
            busy: false,
            ass: Ass::new(),
            phase: CheckPhase::WaitScp,
            results: VecDeque::new(),
            segments_checked: 0,
            segments_failed: 0,
            skipped_packets: 0,
            memo: VerdictMemo::default(),
            playback: None,
            recording: None,
        }
    }
}

impl CheckerState {
    /// Creates an idle checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed segment verdict.
    pub fn finish_segment(&mut self, result: SegmentResult) {
        self.segments_checked += 1;
        if !result.is_ok() {
            self.segments_failed += 1;
        }
        self.results.push_back(result);
        self.phase = CheckPhase::WaitScp;
    }

    /// `C.result`: takes the oldest pending verdict.
    pub fn take_result(&mut self) -> Option<SegmentResult> {
        self.results.pop_front()
    }
}

/// The log-backed data port used while replaying a segment.
///
/// On divergence it records the typed [`MismatchKind`] and aborts the
/// instruction with a [`PortStop`]; the engine converts that into a
/// detection event.
#[derive(Debug)]
pub struct ReplayPort<'a> {
    fifo: &'a mut BufferFifo,
    consumer: usize,
    /// Set when the port aborted the access.
    pub mismatch: Option<MismatchKind>,
    /// Fixed per-access latency (FIFO SRAM read), in stall cycles beyond
    /// the pipelined hit.
    pub latency: u64,
}

impl<'a> ReplayPort<'a> {
    /// Binds a replay port to `consumer`'s cursor on a main core's FIFO.
    pub fn new(fifo: &'a mut BufferFifo, consumer: usize) -> Self {
        ReplayPort {
            fifo,
            consumer,
            mismatch: None,
            latency: 0,
        }
    }

    /// Takes the next log entry, expecting one of `want`; records a
    /// mismatch otherwise.
    ///
    /// Only the (small) `LogEntry` is copied out: the packet itself is
    /// consumed with the zero-copy [`BufferFifo::advance`], never moved —
    /// packets are `ArchSnapshot`-sized and this runs once per replayed
    /// memory access.
    fn take_entry(
        &mut self,
        want: &[LogKind],
        actual: &str,
    ) -> Result<crate::packet::LogEntry, PortStop> {
        match self.fifo.peek(self.consumer) {
            Some(PacketRef::Mem(e)) if want.contains(&e.kind) => {
                let e = *e;
                self.fifo.advance(self.consumer);
                Ok(e)
            }
            Some(PacketRef::Mem(e)) => {
                let kind = MismatchKind::LogKind {
                    expected: e.kind.to_string(),
                    actual: actual.to_string(),
                };
                self.mismatch = Some(kind.clone());
                Err(PortStop::new(kind.to_string()))
            }
            _ => {
                self.mismatch = Some(MismatchKind::LogUnderrun);
                Err(PortStop::new("log underrun"))
            }
        }
    }

    fn check_addr_size(
        &mut self,
        entry: &crate::packet::LogEntry,
        addr: u64,
        size: u8,
    ) -> Result<(), PortStop> {
        if entry.addr != addr {
            let kind = MismatchKind::LogAddr {
                expected: entry.addr,
                actual: addr,
            };
            self.mismatch = Some(kind.clone());
            return Err(PortStop::new(kind.to_string()));
        }
        if entry.size != size {
            let kind = MismatchKind::LogKind {
                expected: format!("size {}", entry.size),
                actual: format!("size {size}"),
            };
            self.mismatch = Some(kind.clone());
            return Err(PortStop::new(kind.to_string()));
        }
        Ok(())
    }
}

impl DataPort for ReplayPort<'_> {
    fn read(&mut self, addr: u64, size: u8) -> Result<(u64, u64), PortStop> {
        let e = self.take_entry(&[LogKind::Load, LogKind::Lr], "load")?;
        self.check_addr_size(&e, addr, size)?;
        Ok((e.data, self.latency))
    }

    fn write(&mut self, addr: u64, value: u64, size: u8) -> Result<u64, PortStop> {
        let e = self.take_entry(&[LogKind::Store], "store")?;
        self.check_addr_size(&e, addr, size)?;
        if e.data != value {
            let kind = MismatchKind::LogData {
                expected: e.data,
                actual: value,
            };
            self.mismatch = Some(kind.clone());
            return Err(PortStop::new(kind.to_string()));
        }
        Ok(self.latency)
    }

    fn store_conditional(
        &mut self,
        addr: u64,
        value: u64,
        size: u8,
        _resv_valid: bool,
    ) -> Result<(bool, u64), PortStop> {
        let e = self.take_entry(&[LogKind::ScAddrData], "sc")?;
        self.check_addr_size(&e, addr, size)?;
        if e.data != value {
            let kind = MismatchKind::LogData {
                expected: e.data,
                actual: value,
            };
            self.mismatch = Some(kind.clone());
            return Err(PortStop::new(kind.to_string()));
        }
        let r = self.take_entry(&[LogKind::ScResult], "sc.result")?;
        Ok((r.data != 0, self.latency))
    }

    fn amo(
        &mut self,
        addr: u64,
        width: AmoWidth,
        op: AmoOp,
        src: u64,
    ) -> Result<(u64, u64), PortStop> {
        let first = self.take_entry(&[LogKind::AmoAddrData], "amo")?;
        self.check_addr_size(&first, addr, width.size())?;
        let second = self.take_entry(&[LogKind::AmoLoad], "amo.load")?;
        let old = second.data;
        let size = width.size();
        let mask = if size == 8 {
            u64::MAX
        } else {
            (1u64 << (size * 8)) - 1
        };
        let stored = amo_apply(op, width, old, src) & mask;
        if stored != first.data {
            let kind = MismatchKind::LogData {
                expected: first.data,
                actual: stored,
            };
            self.mismatch = Some(kind.clone());
            return Err(PortStop::new(kind.to_string()));
        }
        Ok((old, self.latency))
    }

    fn branch_outcome(&mut self, actual_next_pc: u64) -> Result<bool, PortStop> {
        // Only out-of-order mains pack Branch packets into their stream;
        // replaying an in-order main leaves this a no-hint no-op, so the
        // in-order datapath is bit-for-bit unchanged.
        match self.fifo.peek(self.consumer) {
            Some(PacketRef::Branch(expected)) => {
                self.fifo.advance(self.consumer);
                if expected == actual_next_pc {
                    Ok(true)
                } else {
                    let kind = MismatchKind::BranchOutcome {
                        expected,
                        actual: actual_next_pc,
                    };
                    self.mismatch = Some(kind.clone());
                    Err(PortStop::new(kind.to_string()))
                }
            }
            _ => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{LogEntry, Packet};

    fn fifo_with(entries: &[LogEntry]) -> BufferFifo {
        let mut f = BufferFifo::new(4096, 4);
        for &e in entries {
            f.push(Packet::Mem(e)).unwrap();
        }
        f
    }

    #[test]
    fn load_replays_logged_data() {
        let mut f = fifo_with(&[LogEntry {
            kind: LogKind::Load,
            addr: 0x100,
            size: 8,
            data: 77,
        }]);
        let mut p = ReplayPort::new(&mut f, 0);
        let (v, _) = p.read(0x100, 8).unwrap();
        assert_eq!(v, 77);
        assert!(p.mismatch.is_none());
    }

    #[test]
    fn load_address_mismatch_detected() {
        let mut f = fifo_with(&[LogEntry {
            kind: LogKind::Load,
            addr: 0x100,
            size: 8,
            data: 77,
        }]);
        let mut p = ReplayPort::new(&mut f, 0);
        assert!(p.read(0x108, 8).is_err());
        assert_eq!(
            p.mismatch,
            Some(MismatchKind::LogAddr {
                expected: 0x100,
                actual: 0x108
            })
        );
    }

    #[test]
    fn store_data_mismatch_detected() {
        let mut f = fifo_with(&[LogEntry {
            kind: LogKind::Store,
            addr: 0x40,
            size: 8,
            data: 5,
        }]);
        let mut p = ReplayPort::new(&mut f, 0);
        assert!(p.write(0x40, 6, 8).is_err());
        assert_eq!(
            p.mismatch,
            Some(MismatchKind::LogData {
                expected: 5,
                actual: 6
            })
        );
    }

    #[test]
    fn kind_mismatch_detected() {
        let mut f = fifo_with(&[LogEntry {
            kind: LogKind::Store,
            addr: 0x40,
            size: 8,
            data: 5,
        }]);
        let mut p = ReplayPort::new(&mut f, 0);
        assert!(p.read(0x40, 8).is_err());
        assert!(matches!(p.mismatch, Some(MismatchKind::LogKind { .. })));
    }

    #[test]
    fn underrun_detected_on_empty_stream() {
        let mut f = BufferFifo::new(4096, 4);
        let mut p = ReplayPort::new(&mut f, 0);
        assert!(p.read(0x40, 8).is_err());
        assert_eq!(p.mismatch, Some(MismatchKind::LogUnderrun));
    }

    #[test]
    fn sc_replays_logged_result() {
        let mut f = fifo_with(&[
            LogEntry {
                kind: LogKind::ScAddrData,
                addr: 0x80,
                size: 8,
                data: 9,
            },
            LogEntry {
                kind: LogKind::ScResult,
                addr: 0,
                size: 8,
                data: 0,
            },
        ]);
        let mut p = ReplayPort::new(&mut f, 0);
        let (ok, _) = p.store_conditional(0x80, 9, 8, true).unwrap();
        assert!(!ok, "replay must reproduce the main core's SC failure");
    }

    #[test]
    fn amo_verifies_stored_value() {
        // Main stored old=10 + src=5 = 15.
        let mut f = fifo_with(&[
            LogEntry {
                kind: LogKind::AmoAddrData,
                addr: 0x80,
                size: 8,
                data: 15,
            },
            LogEntry {
                kind: LogKind::AmoLoad,
                addr: 0,
                size: 8,
                data: 10,
            },
        ]);
        let mut p = ReplayPort::new(&mut f, 0);
        let (old, _) = p.amo(0x80, AmoWidth::D, AmoOp::Add, 5).unwrap();
        assert_eq!(old, 10);

        // Corrupted stored value: checker recomputes 15, log says 16.
        let mut f = fifo_with(&[
            LogEntry {
                kind: LogKind::AmoAddrData,
                addr: 0x80,
                size: 8,
                data: 16,
            },
            LogEntry {
                kind: LogKind::AmoLoad,
                addr: 0,
                size: 8,
                data: 10,
            },
        ]);
        let mut p = ReplayPort::new(&mut f, 0);
        assert!(p.amo(0x80, AmoWidth::D, AmoOp::Add, 5).is_err());
        assert_eq!(
            p.mismatch,
            Some(MismatchKind::LogData {
                expected: 16,
                actual: 15
            })
        );
    }

    #[test]
    fn checker_state_result_queue() {
        let mut c = CheckerState::new();
        c.finish_segment(SegmentResult {
            seq: 0,
            tag: 1,
            mismatch: None,
            at: 5,
        });
        c.finish_segment(SegmentResult {
            seq: 1,
            tag: 1,
            mismatch: Some(MismatchKind::LogUnderrun),
            at: 9,
        });
        assert_eq!(c.segments_checked, 2);
        assert_eq!(c.segments_failed, 1);
        assert_eq!(c.take_result().unwrap().seq, 0);
        assert_eq!(c.take_result().unwrap().seq, 1);
        assert!(c.take_result().is_none());
    }
}
