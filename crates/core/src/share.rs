//! Checker sharing and conflict resolution (§III-C).
//!
//! The paper: *"The main core's FIFO is used to resolve conflicts when
//! two main cores compete for access to a checker core. In such cases,
//! only one main core's FIFO is permitted to send data to the checker
//! core, while the other temporarily buffers its data in its own FIFO
//! until the checker core is released."*
//!
//! [`CheckerArbiter`] implements exactly that policy over the fabric's
//! pending/grant/revoke primitives: main cores `request` the checker and
//! are granted in FIFO order; a waiting main keeps producing into its own
//! buffer (with DMA spill if configured); when the granted main is
//! `release`d and its stream has drained, the arbiter switches the
//! channel to the next waiter at a segment boundary.
//!
//! N:1 consolidation platforms — the scenario the paper's introduction
//! motivates — are built through [`Scenario`](crate::Scenario) with
//! [`Topology::SharedChecker`](crate::Topology::SharedChecker); the
//! harness instantiates one arbiter per shared checker and surfaces
//! [`ArbiterStats`] in the run report.

use crate::checker::CheckPhase;
use crate::fabric::{Fabric, FlexError};
use std::collections::{BTreeSet, VecDeque};

/// Arbitration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Requests granted immediately (checker was free).
    pub immediate_grants: u64,
    /// Requests that found the checker occupied and had to queue.
    pub conflicts: u64,
    /// Channel hand-overs performed.
    pub switches: u64,
}

/// FIFO arbiter for one checker core shared by several main cores.
///
/// The arbiter never tears a channel down mid-segment: a switch happens
/// only once the granted main has been [`release`](Self::release)d, its
/// FIFO has fully drained, and the checker sits between segments
/// ([`CheckPhase::WaitScp`]). Waiting mains buffer into their own FIFOs
/// the whole time, so no checking data is ever lost to arbitration.
#[derive(Debug)]
pub struct CheckerArbiter {
    checker: usize,
    granted: Option<usize>,
    queue: VecDeque<usize>,
    released: BTreeSet<usize>,
    /// Aggregate statistics.
    pub stats: ArbiterStats,
}

impl CheckerArbiter {
    /// Creates an arbiter for `checker`.
    pub fn new(checker: usize) -> Self {
        CheckerArbiter {
            checker,
            granted: None,
            queue: VecDeque::new(),
            released: BTreeSet::new(),
            stats: ArbiterStats::default(),
        }
    }

    /// The checker core this arbiter manages.
    pub fn checker(&self) -> usize {
        self.checker
    }

    /// The main core currently connected, if any.
    pub fn granted(&self) -> Option<usize> {
        self.granted
    }

    /// Number of mains waiting for the checker.
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }

    /// Whether no main is connected or waiting.
    pub fn is_idle(&self) -> bool {
        self.granted.is_none() && self.queue.is_empty()
    }

    /// A main core requests the checker. If the checker is free the
    /// channel is connected immediately; otherwise the main is queued and
    /// buffers into its own FIFO (the §III-C conflict path). Returns
    /// whether the grant was immediate.
    ///
    /// # Errors
    ///
    /// Fails if the core is not a main core or its previous stream has
    /// not drained.
    pub fn request(&mut self, fabric: &mut Fabric, main: usize) -> Result<bool, FlexError> {
        fabric.associate_pending(main)?;
        if self.granted.is_none() && self.queue.is_empty() {
            fabric.grant(main, self.checker)?;
            self.granted = Some(main);
            self.stats.immediate_grants += 1;
            Ok(true)
        } else {
            self.queue.push_back(main);
            self.stats.conflicts += 1;
            Ok(false)
        }
    }

    /// Marks a main core as done producing (its task finished or checking
    /// was disabled); the channel is handed over once its buffered data
    /// has been verified.
    pub fn release(&mut self, main: usize) {
        self.released.insert(main);
    }

    /// Reverses a [`release`](Self::release): the main resumed producing
    /// (rollback recovery un-finished it), so the channel must not be
    /// handed over on drain.
    pub fn retract_release(&mut self, main: usize) {
        self.released.remove(&main);
    }

    /// Whether `main` is currently granted or queued on this arbiter.
    pub fn is_serving(&self, main: usize) -> bool {
        self.granted == Some(main) || self.queue.contains(&main)
    }

    /// Tears the arbiter down after its checker suffered a permanent
    /// failure: returns every main it was serving (the granted one first,
    /// then the queue in FIFO order) so the caller can re-pair them onto
    /// surviving arbiters. The arbiter is left idle and never grants
    /// again.
    pub fn take_orphans(&mut self) -> Vec<usize> {
        let mut orphans = Vec::with_capacity(1 + self.queue.len());
        if let Some(g) = self.granted.take() {
            orphans.push(g);
        }
        orphans.extend(self.queue.drain(..));
        self.released.clear();
        orphans
    }

    /// Adopts a main orphaned by another arbiter's checker failure. The
    /// main is already in the pending state (its channel was dissolved
    /// when the dead checker was torn down), possibly with buffered data
    /// — so unlike [`request`](Self::request) no fresh association is
    /// made and a non-empty FIFO is fine: the grant connects the
    /// surviving checker to the front of the buffered stream. Returns
    /// whether the grant was immediate.
    ///
    /// # Errors
    ///
    /// Fails if the immediate grant is rejected by the fabric.
    pub fn adopt(&mut self, fabric: &mut Fabric, main: usize) -> Result<bool, FlexError> {
        if self.granted.is_none() && self.queue.is_empty() {
            fabric.grant(main, self.checker)?;
            self.granted = Some(main);
            self.stats.immediate_grants += 1;
            Ok(true)
        } else {
            self.queue.push_back(main);
            self.stats.conflicts += 1;
            Ok(false)
        }
    }

    /// Advances the arbitration state machine: performs a channel
    /// hand-over when the granted main is released, drained, and the
    /// checker is between segments. Call once per scheduling quantum.
    /// Returns the newly granted main on a switch.
    pub fn poll(&mut self, fabric: &mut Fabric) -> Option<usize> {
        if let Some(g) = self.granted {
            if !self.released.contains(&g) || !fabric.unit(g).fifo.is_fully_drained() {
                return None;
            }
            if fabric.unit(self.checker).checker.phase != CheckPhase::WaitScp {
                return None;
            }
            if fabric.revoke(self.checker).is_err() {
                return None;
            }
            self.released.remove(&g);
            self.granted = None;
        }
        let next = self.queue.pop_front()?;
        match fabric.grant(next, self.checker) {
            Ok(()) => {
                self.granted = Some(next);
                self.stats.switches += 1;
                Some(next)
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::harness::VerifiedRun;
    use crate::scenario::{Scenario, Topology};
    use flexstep_isa::asm::{Assembler, Program};
    use flexstep_isa::XReg;

    /// A store-heavy loop in a private text/data window.
    fn job(slot: u64, iters: i64) -> Program {
        let text = 0x1000_0000 + slot * 0x10_0000;
        let data = 0x2000_0000 + slot * 0x10_0000;
        let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
        asm.li(XReg::A0, iters);
        asm.li(XReg::A1, data as i64);
        asm.li(XReg::A3, 0);
        asm.label("loop").unwrap();
        asm.sd(XReg::A1, XReg::A0, 0);
        asm.ld(XReg::A2, XReg::A1, 0);
        asm.add(XReg::A3, XReg::A3, XReg::A2);
        asm.addi(XReg::A0, XReg::A0, -1);
        asm.bnez(XReg::A0, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    /// N mains, one shared checker (core N), built through the front door.
    fn shared_run(programs: &[Program]) -> VerifiedRun {
        let mut sc = Scenario::new(&programs[0]);
        for p in &programs[1..] {
            sc = sc.program(p);
        }
        sc.cores(programs.len() + 1)
            .topology(Topology::SharedChecker { checkers: 1 })
            .fabric(FabricConfig::paper())
            .build()
            .unwrap()
    }

    #[test]
    fn two_mains_share_one_checker() {
        let programs = vec![job(0, 3000), job(1, 3000)];
        let mut run = shared_run(&programs);
        let r = run.run_to_completion(50_000_000);
        assert!(r.per_main.iter().all(|m| m.completed), "{r:?}");
        assert_eq!(r.segments_failed, 0);
        assert!(r.detections.is_empty());
        assert_eq!(r.arbiters[0].immediate_grants, 1);
        assert_eq!(r.arbiters[0].conflicts, 1, "second main must queue");
        assert_eq!(r.arbiters[0].switches, 1, "one hand-over");
        // Every segment of both mains verified.
        assert!(r.segments_checked >= 2);
    }

    #[test]
    fn three_mains_verified_in_request_order() {
        let programs = vec![job(0, 1200), job(1, 900), job(2, 600)];
        let mut run = shared_run(&programs);
        let r = run.run_to_completion(80_000_000);
        assert!(r.per_main.iter().all(|m| m.completed));
        assert_eq!(r.segments_failed, 0);
        assert_eq!(r.arbiters[0].conflicts, 2);
        assert_eq!(r.arbiters[0].switches, 2);
    }

    #[test]
    fn shared_checking_verifies_as_much_as_dedicated() {
        // The same program verified (a) with a dedicated checker and
        // (b) through a shared checker: the shared pool covers both
        // mains' segments.
        let p = job(0, 2500);
        let mut dedicated = Scenario::new(&p).cores(2).build().unwrap();
        let rd = dedicated.run_to_completion(50_000_000);

        let programs = vec![job(0, 2500), job(1, 400)];
        let mut shared = shared_run(&programs);
        let rs = shared.run_to_completion(80_000_000);
        assert!(
            rs.segments_checked > rd.segments_checked,
            "shared run covers both mains: {} vs {}",
            rs.segments_checked,
            rd.segments_checked
        );
        assert_eq!(rs.segments_failed, 0);
    }

    #[test]
    fn waiting_main_buffers_without_loss() {
        // The second main finishes long before it is granted; all its
        // segments must still be verified from its own buffer.
        let programs = vec![job(0, 6000), job(1, 300)];
        let mut run = shared_run(&programs);
        let r = run.run_to_completion(100_000_000);
        assert!(r.per_main[1].completed);
        assert!(r.per_main[1].finish_cycle < r.per_main[0].finish_cycle);
        assert_eq!(r.segments_failed, 0);
        assert_eq!(r.arbiters[0].switches, 1);
    }

    #[test]
    fn fault_in_waiting_buffer_detected_after_handover() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let programs = vec![job(0, 4000), job(1, 2000)];
        let mut run = shared_run(&programs);
        let checker = run.checkers()[0];
        // Let main 1 buffer some segments while waiting, then corrupt its
        // buffered (not-yet-granted) stream.
        let mut injected = false;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..400_000 {
            if !run.step_once() {
                break;
            }
            if !injected
                && run.granted_main(checker) == Some(0)
                && run.fabric().unit(1).fifo.len() > 4
            {
                let now = run.soc().now();
                if crate::fault::inject_random_fault(run.fabric_mut(), 1, now, &mut rng).is_some() {
                    injected = true;
                }
            }
        }
        assert!(injected, "fault must land in the waiting main's buffer");
        let r = run.report();
        assert!(
            r.segments_failed > 0 || !r.detections.is_empty(),
            "corruption in the waiting buffer must be detected after hand-over: {r:?}"
        );
        assert!(r.detections.iter().all(|d| d.main_core == 1));
    }

    #[test]
    fn arbiter_request_rejects_non_main() {
        let mut fabric = Fabric::new(3, FabricConfig::paper());
        fabric.configure(&[0], &[2]).unwrap();
        let mut arb = CheckerArbiter::new(2);
        assert!(matches!(
            arb.request(&mut fabric, 1),
            Err(FlexError::NotMain { core: 1 })
        ));
        assert!(arb.request(&mut fabric, 0).unwrap());
        assert_eq!(arb.granted(), Some(0));
    }

    #[test]
    fn poll_without_release_does_nothing() {
        let mut fabric = Fabric::new(4, FabricConfig::paper());
        fabric.configure(&[0, 1], &[3]).unwrap();
        let mut arb = CheckerArbiter::new(3);
        arb.request(&mut fabric, 0).unwrap();
        assert!(!arb.request(&mut fabric, 1).unwrap());
        assert_eq!(arb.poll(&mut fabric), None, "granted main not released");
        arb.release(0);
        assert_eq!(
            arb.poll(&mut fabric),
            Some(1),
            "drained + released => switch"
        );
        assert_eq!(arb.granted(), Some(1));
        assert!(fabric.checkers_of(1).contains(&3));
        assert!(fabric.checkers_of(0).is_empty(), "main 0 back to pending");
    }
}
