//! Checker sharing and conflict resolution (§III-C).
//!
//! The paper: *"The main core's FIFO is used to resolve conflicts when
//! two main cores compete for access to a checker core. In such cases,
//! only one main core's FIFO is permitted to send data to the checker
//! core, while the other temporarily buffers its data in its own FIFO
//! until the checker core is released."*
//!
//! [`CheckerArbiter`] implements exactly that policy over the fabric's
//! pending/grant/revoke primitives: main cores `request` the checker and
//! are granted in FIFO order; a waiting main keeps producing into its own
//! buffer (with DMA spill if configured); when the granted main is
//! `release`d and its stream has drained, the arbiter switches the
//! channel to the next waiter at a segment boundary.
//!
//! [`SharedCheckerRun`] is a ready-made driver (in the style of
//! [`VerifiedRun`](crate::harness::VerifiedRun)) that runs N main-core
//! programs against a single shared checker — the N:1 consolidation
//! scenario the paper's introduction motivates.

use crate::checker::CheckPhase;
use crate::detect::DetectionEvent;
use crate::engine::{EngineStep, FlexSoc};
use crate::fabric::{Fabric, FabricConfig, FlexError};
use flexstep_isa::asm::Program;
use flexstep_sim::{PrivMode, SocConfig, StepKind, TrapCause};
use std::collections::{BTreeSet, VecDeque};

/// Arbitration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Requests granted immediately (checker was free).
    pub immediate_grants: u64,
    /// Requests that found the checker occupied and had to queue.
    pub conflicts: u64,
    /// Channel hand-overs performed.
    pub switches: u64,
}

/// FIFO arbiter for one checker core shared by several main cores.
///
/// The arbiter never tears a channel down mid-segment: a switch happens
/// only once the granted main has been [`release`](Self::release)d, its
/// FIFO has fully drained, and the checker sits between segments
/// ([`CheckPhase::WaitScp`]). Waiting mains buffer into their own FIFOs
/// the whole time, so no checking data is ever lost to arbitration.
#[derive(Debug)]
pub struct CheckerArbiter {
    checker: usize,
    granted: Option<usize>,
    queue: VecDeque<usize>,
    released: BTreeSet<usize>,
    /// Aggregate statistics.
    pub stats: ArbiterStats,
}

impl CheckerArbiter {
    /// Creates an arbiter for `checker`.
    pub fn new(checker: usize) -> Self {
        CheckerArbiter {
            checker,
            granted: None,
            queue: VecDeque::new(),
            released: BTreeSet::new(),
            stats: ArbiterStats::default(),
        }
    }

    /// The checker core this arbiter manages.
    pub fn checker(&self) -> usize {
        self.checker
    }

    /// The main core currently connected, if any.
    pub fn granted(&self) -> Option<usize> {
        self.granted
    }

    /// Number of mains waiting for the checker.
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }

    /// Whether no main is connected or waiting.
    pub fn is_idle(&self) -> bool {
        self.granted.is_none() && self.queue.is_empty()
    }

    /// A main core requests the checker. If the checker is free the
    /// channel is connected immediately; otherwise the main is queued and
    /// buffers into its own FIFO (the §III-C conflict path). Returns
    /// whether the grant was immediate.
    ///
    /// # Errors
    ///
    /// Fails if the core is not a main core or its previous stream has
    /// not drained.
    pub fn request(&mut self, fabric: &mut Fabric, main: usize) -> Result<bool, FlexError> {
        fabric.associate_pending(main)?;
        if self.granted.is_none() && self.queue.is_empty() {
            fabric.grant(main, self.checker)?;
            self.granted = Some(main);
            self.stats.immediate_grants += 1;
            Ok(true)
        } else {
            self.queue.push_back(main);
            self.stats.conflicts += 1;
            Ok(false)
        }
    }

    /// Marks a main core as done producing (its task finished or checking
    /// was disabled); the channel is handed over once its buffered data
    /// has been verified.
    pub fn release(&mut self, main: usize) {
        self.released.insert(main);
    }

    /// Reverses a [`release`](Self::release): the main resumed producing
    /// (rollback recovery un-finished it), so the channel must not be
    /// handed over on drain.
    pub fn retract_release(&mut self, main: usize) {
        self.released.remove(&main);
    }

    /// Whether `main` is currently granted or queued on this arbiter.
    pub fn is_serving(&self, main: usize) -> bool {
        self.granted == Some(main) || self.queue.contains(&main)
    }

    /// Tears the arbiter down after its checker suffered a permanent
    /// failure: returns every main it was serving (the granted one first,
    /// then the queue in FIFO order) so the caller can re-pair them onto
    /// surviving arbiters. The arbiter is left idle and never grants
    /// again.
    pub fn take_orphans(&mut self) -> Vec<usize> {
        let mut orphans = Vec::with_capacity(1 + self.queue.len());
        if let Some(g) = self.granted.take() {
            orphans.push(g);
        }
        orphans.extend(self.queue.drain(..));
        self.released.clear();
        orphans
    }

    /// Adopts a main orphaned by another arbiter's checker failure. The
    /// main is already in the pending state (its channel was dissolved
    /// when the dead checker was torn down), possibly with buffered data
    /// — so unlike [`request`](Self::request) no fresh association is
    /// made and a non-empty FIFO is fine: the grant connects the
    /// surviving checker to the front of the buffered stream. Returns
    /// whether the grant was immediate.
    ///
    /// # Errors
    ///
    /// Fails if the immediate grant is rejected by the fabric.
    pub fn adopt(&mut self, fabric: &mut Fabric, main: usize) -> Result<bool, FlexError> {
        if self.granted.is_none() && self.queue.is_empty() {
            fabric.grant(main, self.checker)?;
            self.granted = Some(main);
            self.stats.immediate_grants += 1;
            Ok(true)
        } else {
            self.queue.push_back(main);
            self.stats.conflicts += 1;
            Ok(false)
        }
    }

    /// Advances the arbitration state machine: performs a channel
    /// hand-over when the granted main is released, drained, and the
    /// checker is between segments. Call once per scheduling quantum.
    /// Returns the newly granted main on a switch.
    pub fn poll(&mut self, fabric: &mut Fabric) -> Option<usize> {
        if let Some(g) = self.granted {
            if !self.released.contains(&g) || !fabric.unit(g).fifo.is_fully_drained() {
                return None;
            }
            if fabric.unit(self.checker).checker.phase != CheckPhase::WaitScp {
                return None;
            }
            if fabric.revoke(self.checker).is_err() {
                return None;
            }
            self.released.remove(&g);
            self.granted = None;
        }
        let next = self.queue.pop_front()?;
        match fabric.grant(next, self.checker) {
            Ok(()) => {
                self.granted = Some(next);
                self.stats.switches += 1;
                Some(next)
            }
            Err(_) => None,
        }
    }
}

/// Per-main outcome of a [`SharedCheckerRun`].
#[derive(Debug, Clone)]
pub struct SharedMainReport {
    /// The main core index.
    pub core: usize,
    /// Whether the program reached its final `ecall`.
    pub completed: bool,
    /// Cycle at which the main core finished.
    pub finish_cycle: u64,
    /// Instructions retired.
    pub retired: u64,
}

/// Outcome of a full shared-checker run.
#[derive(Debug, Clone)]
pub struct SharedRunReport {
    /// Per-main outcomes, in core order.
    pub mains: Vec<SharedMainReport>,
    /// Segments verified by the shared checker (across all streams).
    pub segments_checked: u64,
    /// Segments that failed verification.
    pub segments_failed: u64,
    /// Detection events raised during the run.
    pub detections: Vec<DetectionEvent>,
    /// Arbitration statistics.
    pub arbiter: ArbiterStats,
    /// Cycle at which the last stream drained.
    pub drain_cycle: u64,
}

/// Driver running N main-core programs against one shared checker core.
///
/// Cores `0..n` are mains (one program each), core `n` is the checker.
/// Programs must use disjoint text/data ranges (build them with
/// [`Assembler::with_bases`](flexstep_isa::asm::Assembler::with_bases)).
///
/// Deprecated: build shared-checker platforms through
/// [`Scenario`](crate::Scenario) with
/// [`Topology::SharedChecker`](crate::Topology::SharedChecker), which
/// supports any main/checker ratio and the full observer/fault-plan
/// machinery:
///
/// ```
/// use flexstep_core::{FabricConfig, Scenario, Topology};
/// use flexstep_isa::{asm::Assembler, XReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut programs = Vec::new();
/// for i in 0..2u64 {
///     let mut asm = Assembler::with_bases(
///         format!("job{i}"),
///         0x1000_0000 + i * 0x10_0000,
///         0x2000_0000 + i * 0x10_0000,
///     );
///     asm.li(XReg::A0, 200);
///     asm.li(XReg::A1, 0x2000_0000 + (i * 0x10_0000) as i64);
///     asm.label("l")?;
///     asm.sd(XReg::A1, XReg::A0, 0);
///     asm.addi(XReg::A0, XReg::A0, -1);
///     asm.bnez(XReg::A0, "l");
///     asm.ecall();
///     programs.push(asm.finish()?);
/// }
/// let mut run = Scenario::new(&programs[0])
///     .program(&programs[1])
///     .cores(3)
///     .topology(Topology::SharedChecker { checkers: 1 })
///     .fabric(FabricConfig::paper())
///     .build()?;
/// let report = run.run_to_completion(10_000_000);
/// assert!(report.per_main.iter().all(|m| m.completed));
/// assert_eq!(report.segments_failed, 0);
/// assert!(report.arbiters[0].conflicts >= 1, "second main had to wait");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
#[deprecated(note = "use Scenario with Topology::SharedChecker")]
pub struct SharedCheckerRun {
    /// The platform under test.
    pub(crate) fs: FlexSoc,
    /// The §III-C arbiter.
    pub arbiter: CheckerArbiter,
    mains: Vec<usize>,
    checker: usize,
    done: Vec<bool>,
    finish_cycle: Vec<u64>,
}

#[allow(deprecated)]
impl SharedCheckerRun {
    /// Builds the platform: one main core per program plus one shared
    /// checker, every main requesting the checker at time zero.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn new(
        programs: &[Program],
        fabric: FabricConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let n = programs.len();
        assert!(n >= 1, "at least one main required");
        let checker = n;
        let mut fs = FlexSoc::new(SocConfig::paper(n + 1), fabric)?;
        let mains: Vec<usize> = (0..n).collect();
        fs.op_g_configure(&mains, &[checker])?;
        let mut arbiter = CheckerArbiter::new(checker);
        for (&m, program) in mains.iter().zip(programs) {
            arbiter.request(&mut fs.fabric, m)?;
            fs.fabric.set_check(m, true)?;
            fs.soc.load_program(program);
            fs.soc.core_mut(m).state.pc = program.entry;
            fs.soc.core_mut(m).state.prv = PrivMode::User;
            fs.soc.core_mut(m).unpark();
        }
        fs.op_c_check_state(checker, true)?;
        fs.soc.core_mut(checker).unpark();
        Ok(SharedCheckerRun {
            fs,
            arbiter,
            mains,
            checker,
            done: vec![false; n],
            finish_cycle: vec![0; n],
        })
    }

    /// Whether every main finished and every stream drained.
    pub fn finished(&self) -> bool {
        self.done.iter().all(|&d| d)
            && self
                .mains
                .iter()
                .all(|&m| self.fs.fabric.unit(m).fifo.is_fully_drained())
            && self.fs.fabric.unit(self.checker).checker.phase == CheckPhase::WaitScp
    }

    /// Executes one scheduling quantum: polls the arbiter, then steps the
    /// earliest-ready core. Returns `false` once the run is complete.
    pub fn step_once(&mut self) -> bool {
        if self.finished() && self.arbiter.is_idle() {
            return false;
        }
        self.arbiter.poll(&mut self.fs.fabric);
        let Some(core) = self.fs.soc.next_ready() else {
            return false;
        };
        let step = self.fs.step(core);
        if let Some(slot) = self.mains.iter().position(|&m| m == core) {
            match &step {
                EngineStep::Core(StepKind::Trap {
                    cause: TrapCause::EcallFromU,
                    ..
                }) => {
                    self.done[slot] = true;
                    self.finish_cycle[slot] = self.fs.soc.now();
                    self.fs.soc.core_mut(core).park();
                    // The job is done: stop producing and let the arbiter
                    // hand the checker over once the stream drains.
                    self.fs.fabric.set_check(core, false).expect("main core");
                    self.arbiter.release(core);
                }
                EngineStep::Core(StepKind::Trap { cause, tval, pc }) => {
                    panic!("main {core} faulted: {cause:?} tval={tval:#x} pc={pc:#x}");
                }
                _ => {}
            }
        }
        true
    }

    /// Runs to completion, bounded by `max_steps` engine steps.
    pub fn run_to_completion(&mut self, max_steps: u64) -> SharedRunReport {
        let mut steps = 0;
        while steps < max_steps && self.step_once() {
            steps += 1;
        }
        self.report()
    }

    /// Produces the report for the current state.
    pub fn report(&mut self) -> SharedRunReport {
        let checker = &self.fs.fabric.unit(self.checker).checker;
        let (segments_checked, segments_failed) =
            (checker.segments_checked, checker.segments_failed);
        SharedRunReport {
            mains: self
                .mains
                .iter()
                .enumerate()
                .map(|(slot, &core)| SharedMainReport {
                    core,
                    completed: self.done[slot],
                    finish_cycle: self.finish_cycle[slot],
                    retired: self.fs.soc.core(core).instret,
                })
                .collect(),
            segments_checked,
            segments_failed,
            detections: self.fs.fabric.take_detections(),
            arbiter: self.arbiter.stats,
            drain_cycle: self.fs.soc.now(),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use flexstep_isa::asm::Assembler;
    use flexstep_isa::XReg;

    /// A store-heavy loop in a private text/data window.
    fn job(slot: u64, iters: i64) -> Program {
        let text = 0x1000_0000 + slot * 0x10_0000;
        let data = 0x2000_0000 + slot * 0x10_0000;
        let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
        asm.li(XReg::A0, iters);
        asm.li(XReg::A1, data as i64);
        asm.li(XReg::A3, 0);
        asm.label("loop").unwrap();
        asm.sd(XReg::A1, XReg::A0, 0);
        asm.ld(XReg::A2, XReg::A1, 0);
        asm.add(XReg::A3, XReg::A3, XReg::A2);
        asm.addi(XReg::A0, XReg::A0, -1);
        asm.bnez(XReg::A0, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    #[test]
    fn two_mains_share_one_checker() {
        let programs = vec![job(0, 3000), job(1, 3000)];
        let mut run = SharedCheckerRun::new(&programs, FabricConfig::paper()).unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.mains.iter().all(|m| m.completed), "{r:?}");
        assert_eq!(r.segments_failed, 0);
        assert!(r.detections.is_empty());
        assert_eq!(r.arbiter.immediate_grants, 1);
        assert_eq!(r.arbiter.conflicts, 1, "second main must queue");
        assert_eq!(r.arbiter.switches, 1, "one hand-over");
        // Every segment of both mains verified.
        assert!(r.segments_checked >= 2);
    }

    #[test]
    fn three_mains_verified_in_request_order() {
        let programs = vec![job(0, 1200), job(1, 900), job(2, 600)];
        let mut run = SharedCheckerRun::new(&programs, FabricConfig::paper()).unwrap();
        let r = run.run_to_completion(80_000_000);
        assert!(r.mains.iter().all(|m| m.completed));
        assert_eq!(r.segments_failed, 0);
        assert_eq!(r.arbiter.conflicts, 2);
        assert_eq!(r.arbiter.switches, 2);
    }

    #[test]
    fn shared_checking_verifies_as_much_as_dedicated() {
        // The same program verified (a) with a dedicated checker and
        // (b) through a shared checker: identical segment counts.
        let p = job(0, 2500);
        let mut dedicated = Scenario::new(&p).cores(2).build().unwrap();
        let rd = dedicated.run_to_completion(50_000_000);

        let programs = vec![job(0, 2500), job(1, 400)];
        let mut shared = SharedCheckerRun::new(&programs, FabricConfig::paper()).unwrap();
        let rs = shared.run_to_completion(80_000_000);
        let second_share = rs.segments_checked;
        assert!(
            second_share > rd.segments_checked,
            "shared run covers both mains: {second_share} vs {}",
            rd.segments_checked
        );
        assert_eq!(rs.segments_failed, 0);
    }

    #[test]
    fn waiting_main_buffers_without_loss() {
        // The second main finishes long before it is granted; all its
        // segments must still be verified from its own buffer.
        let programs = vec![job(0, 6000), job(1, 300)];
        let mut run = SharedCheckerRun::new(&programs, FabricConfig::paper()).unwrap();
        let r = run.run_to_completion(100_000_000);
        assert!(r.mains[1].completed);
        assert!(r.mains[1].finish_cycle < r.mains[0].finish_cycle);
        assert_eq!(r.segments_failed, 0);
        assert_eq!(r.arbiter.switches, 1);
    }

    #[test]
    fn fault_in_waiting_buffer_detected_after_handover() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let programs = vec![job(0, 4000), job(1, 2000)];
        let mut run = SharedCheckerRun::new(&programs, FabricConfig::paper()).unwrap();
        // Let main 1 buffer some segments while waiting, then corrupt its
        // buffered (not-yet-granted) stream.
        let mut injected = false;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..400_000 {
            if !run.step_once() {
                break;
            }
            if !injected && run.arbiter.granted() == Some(0) && run.fs.fabric.unit(1).fifo.len() > 4
            {
                let now = run.fs.soc.now();
                if crate::fault::inject_random_fault(&mut run.fs.fabric, 1, now, &mut rng).is_some()
                {
                    injected = true;
                }
            }
        }
        assert!(injected, "fault must land in the waiting main's buffer");
        let r = run.report();
        assert!(
            r.segments_failed > 0 || !r.detections.is_empty(),
            "corruption in the waiting buffer must be detected after hand-over: {r:?}"
        );
        assert!(r.detections.iter().all(|d| d.main_core == 1));
    }

    #[test]
    fn arbiter_request_rejects_non_main() {
        let mut fabric = Fabric::new(3, FabricConfig::paper());
        fabric.configure(&[0], &[2]).unwrap();
        let mut arb = CheckerArbiter::new(2);
        assert!(matches!(
            arb.request(&mut fabric, 1),
            Err(FlexError::NotMain { core: 1 })
        ));
        assert!(arb.request(&mut fabric, 0).unwrap());
        assert_eq!(arb.granted(), Some(0));
    }

    #[test]
    fn poll_without_release_does_nothing() {
        let mut fabric = Fabric::new(4, FabricConfig::paper());
        fabric.configure(&[0, 1], &[3]).unwrap();
        let mut arb = CheckerArbiter::new(3);
        arb.request(&mut fabric, 0).unwrap();
        assert!(!arb.request(&mut fabric, 1).unwrap());
        assert_eq!(arb.poll(&mut fabric), None, "granted main not released");
        arb.release(0);
        assert_eq!(
            arb.poll(&mut fabric),
            Some(1),
            "drained + released => switch"
        );
        assert_eq!(arb.granted(), Some(1));
        assert!(fabric.checkers_of(1).contains(&3));
        assert!(fabric.checkers_of(0).is_empty(), "main 0 back to pending");
    }
}
