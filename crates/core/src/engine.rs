//! The FlexStep execution engine: couples the [`Fabric`] to the simulated
//! [`Soc`].
//!
//! - **Main cores** step normally; the engine captures SCPs at segment
//!   open, logs every user-mode memory access into the core's FIFO,
//!   closes segments on the count limit or privilege switch, and stalls
//!   the core (backpressure) when the FIFO cannot accept the worst-case
//!   burst of the next instruction.
//! - **Checker cores** run the replay loop of Al. 2: wait for an SCP,
//!   apply it, replay with the log-backed port, and compare the ECP.
//!
//! The checker only advances when its stream is non-empty: each buffered
//! packet is evidence of how far the main core got, so the checker can
//! never run past an asynchronous segment boundary (e.g. a preemption on
//! the main core) it has not yet been told about. On an empty stream the
//! checker stalls — this conservative rule is what makes asynchronous,
//! preemptive checking safe.

use crate::checker::{CheckPhase, CheckerState, ReplayPort};
use crate::detect::{DetectionEvent, MismatchKind, SegmentResult};
use crate::fabric::{CoreAttr, Fabric, FabricConfig, FlexError};
use crate::packet::{log_entries, Packet, PacketRef};
use crate::rcpm::SegmentClose;
use flexstep_isa::inst::FlexOp;
use flexstep_isa::XReg;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_sim::{PrivMode, Retired, Soc, SocConfig, StepKind, StepResult};

/// Outcome of one engine step on a core.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineStep {
    /// The core stepped; the underlying result (traps, `ecall`s, timer
    /// interrupts and custom instructions are the OS's to handle).
    Core(StepKind),
    /// A main core stalled on FIFO backpressure.
    Backpressured,
    /// A checker stalled on an empty stream.
    CheckerWaiting,
    /// A checker applied an SCP and entered replay.
    CheckerApplied {
        /// The applied segment's sequence number.
        seq: u64,
    },
    /// A checker replayed one instruction (or consumed a control packet).
    CheckerProgress,
    /// A checker finished a segment cleanly.
    CheckerSegmentDone(SegmentResult),
    /// A checker detected an error.
    CheckerDetected(DetectionEvent),
    /// A checker was interrupted (timer) — the OS may preempt it.
    CheckerInterrupted(StepKind),
    /// The core is idle/parked.
    Idle,
}

/// The FlexStep platform: simulator plus fabric.
///
/// See the crate-level documentation for a full worked example.
#[derive(Debug)]
pub struct FlexSoc {
    /// The underlying SoC.
    pub soc: Soc,
    /// The FlexStep hardware state.
    pub fabric: Fabric,
}

impl FlexSoc {
    /// Builds a FlexStep platform.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] for invalid memory geometry.
    pub fn new(soc: SocConfig, fabric: FabricConfig) -> Result<Self, CacheGeometryError> {
        Ok(FlexSoc {
            fabric: Fabric::new(soc.num_cores, fabric),
            soc: Soc::new(soc)?,
        })
    }

    // ----- Tab. I custom-ISA operations ------------------------------------

    /// `G.IDs.contain`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::ids_contain`].
    pub fn op_g_ids_contain(&self, core: usize) -> Result<CoreAttr, FlexError> {
        self.fabric.ids_contain(core)
    }

    /// `G.Configure`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::configure`].
    pub fn op_g_configure(&mut self, mains: &[usize], checkers: &[usize]) -> Result<(), FlexError> {
        self.fabric.configure(mains, checkers)
    }

    /// `M.associate`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::associate`].
    pub fn op_m_associate(&mut self, main: usize, checkers: &[usize]) -> Result<(), FlexError> {
        self.fabric.associate(main, checkers)
    }

    /// `M.check`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::set_check`].
    pub fn op_m_check(&mut self, main: usize, enable: bool) -> Result<(), FlexError> {
        self.fabric.set_check(main, enable)
    }

    /// `C.check_state`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::set_check_state`].
    pub fn op_c_check_state(&mut self, checker: usize, busy: bool) -> Result<(), FlexError> {
        self.fabric.set_check_state(checker, busy)
    }

    /// `C.record`: snapshots the checker core's current context into its
    /// ASS (Al. 2 line 4).
    ///
    /// # Errors
    ///
    /// Requires a checker core.
    pub fn op_c_record(&mut self, checker: usize) -> Result<(), FlexError> {
        if self.fabric.ids_contain(checker)? != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        let snap = self.soc.core(checker).state.snapshot();
        self.fabric.unit_mut(checker).checker.ass.record(snap);
        Ok(())
    }

    /// `C.result`: takes the oldest pending segment verdict.
    ///
    /// # Errors
    ///
    /// Requires a checker core.
    pub fn op_c_result(&mut self, checker: usize) -> Result<Option<SegmentResult>, FlexError> {
        if self.fabric.ids_contain(checker)? != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        Ok(self.fabric.unit_mut(checker).checker.take_result())
    }

    /// Executes a guest-issued FlexStep custom instruction (surfaced by
    /// the simulator as [`StepKind::Flex`]) and completes it on the core.
    ///
    /// # Errors
    ///
    /// Propagates the underlying operation's [`FlexError`]; on error the
    /// instruction completes with `rd = u64::MAX` (hardware error code)
    /// and the error is also returned for OS visibility.
    pub fn exec_flex(
        &mut self,
        core: usize,
        op: FlexOp,
        rd: XReg,
        rs1_value: u64,
        rs2_value: u64,
    ) -> Result<(), FlexError> {
        let result: Result<u64, FlexError> = match op {
            FlexOp::GIdsContain => self
                .fabric
                .ids_contain(rs1_value as usize)
                .map(CoreAttr::to_bits),
            FlexOp::GConfigure => {
                let mains = bits_to_cores(rs1_value);
                let checkers = bits_to_cores(rs2_value);
                self.fabric.configure(&mains, &checkers).map(|()| 0)
            }
            FlexOp::MAssociate => {
                let checkers = bits_to_cores(rs1_value);
                self.fabric.associate(core, &checkers).map(|()| 0)
            }
            FlexOp::MCheck => self.fabric.set_check(core, rs1_value != 0).map(|()| 0),
            FlexOp::CCheckState => self
                .fabric
                .set_check_state(core, rs1_value != 0)
                .map(|()| 0),
            FlexOp::CRecord => self.op_c_record(core).map(|()| 0),
            FlexOp::CApply => {
                // Applies the staged SCP to the register file.
                match self.fabric.unit_mut(core).checker.ass.take_scp() {
                    Some(cp) => {
                        self.soc.core_mut(core).state.restore(&cp.snapshot);
                        Ok(0)
                    }
                    None => Ok(u64::MAX),
                }
            }
            FlexOp::CJal => Ok(0), // pc redirect is part of the apply path here
            FlexOp::CResult => self
                .op_c_result(core)
                .map(|r| r.map_or(u64::MAX, |res| u64::from(res.is_ok()))),
        };
        match result {
            Ok(v) => {
                self.soc.complete_flex(core, rd, v);
                Ok(())
            }
            Err(e) => {
                self.soc.complete_flex(core, rd, u64::MAX);
                Err(e)
            }
        }
    }

    // ----- engine stepping --------------------------------------------------

    /// Steps a core according to its current attribute and state.
    pub fn step(&mut self, core: usize) -> EngineStep {
        match self.fabric.unit(core).attr {
            CoreAttr::Checker if self.fabric.unit(core).checker.busy => self.step_checker(core),
            CoreAttr::Main => self.step_main(core),
            _ => EngineStep::Core(self.soc.step_core(core).kind),
        }
    }

    /// Steps a main core, performing checkpoint extraction, logging and
    /// backpressure.
    pub fn step_main(&mut self, core: usize) -> EngineStep {
        let live = self.fabric.checking_live(core);

        if live {
            let soc_core = self.soc.core(core);
            if soc_core.state.prv == PrivMode::User && soc_core.is_running() {
                // One fabric borrow for the whole pre-step check: config
                // scalars are copied out so the borrow can end before the
                // stat/stall mutations.
                let cfg = self.fabric.config();
                let retry_cycles = cfg.backpressure_retry_cycles;
                let scp_cycles = cfg.scp_extract_cycles;
                let unit = self.fabric.unit(core);
                // Worst-case needs for this step: two log entries, plus a
                // close burst (IC + ECP) if a segment is or will be open,
                // plus an SCP if we must open one.
                let opening = !unit.tracker.is_open();
                let need_cps = 1 + usize::from(opening);
                let need_bytes = 32 + 8; // two entries + instruction count
                if !unit.fifo.can_accept(need_bytes, need_cps) {
                    self.fabric.stats.backpressure_stalls += 1;
                    self.soc.stall_core(core, retry_cycles);
                    return EngineStep::Backpressured;
                }
                if opening {
                    let snap = self.soc.core(core).state.snapshot();
                    let unit = self.fabric.unit_mut(core);
                    let consumers = unit.fifo.consumers() as u64;
                    let scp = unit.tracker.open_segment(snap);
                    unit.fifo
                        .push(Packet::scp(scp))
                        .expect("space reserved above");
                    // The ASS forwards the checkpoint once per associated
                    // checker (§III-A): wider verification modes serialise
                    // more beats through the channel — the source of
                    // Fig. 6's dual→triple slowdown increase.
                    self.soc.stall_core(core, scp_cycles * consumers);
                }
            }
        }

        let result: StepResult = self.soc.step_core(core);
        match &result.kind {
            StepKind::Retired(retired) if live && retired.prv == PrivMode::User => {
                self.after_user_retire(core, retired);
            }
            StepKind::Trap { .. } | StepKind::Interrupted { .. }
                // Leaving user mode: premature segment extermination
                // (Fig. 3.1). The ECP is the state at the boundary.
                if live && self.fabric.unit(core).tracker.is_open() => {
                    self.close_segment(core, SegmentClose::PrivilegeSwitch);
                }
            _ => {}
        }
        EngineStep::Core(result.kind)
    }

    /// Closes the open segment on `core`, pushing the `InstCount` + ECP
    /// pair as one burst and charging the extraction stall.
    fn close_segment(&mut self, core: usize, why: SegmentClose) {
        let ecp_cycles = self.fabric.config().ecp_extract_cycles;
        let snap = self.soc.core(core).state.snapshot();
        let unit = self.fabric.unit_mut(core);
        let consumers = unit.fifo.consumers() as u64;
        let (count, ecp) = unit.tracker.close_segment(snap, why);
        unit.fifo
            .push_burst_owned([Packet::InstCount(count), Packet::ecp(ecp)])
            .expect("space and cp slot reserved");
        self.soc.stall_core(core, ecp_cycles * consumers);
    }

    fn after_user_retire(&mut self, core: usize, retired: &Retired) {
        let unit = self.fabric.unit_mut(core);
        if !unit.tracker.is_open() {
            // Checking was enabled mid-flight (first user instruction
            // after M.check); the segment opens on the next step.
            return;
        }
        if let Some(access) = &retired.mem {
            let (first, second) = log_entries(access);
            match second {
                // Multi-µop instructions push both entries as one burst.
                Some(second) => unit
                    .fifo
                    .push_burst_owned([Packet::Mem(first), Packet::Mem(second)])
                    .expect("space reserved"),
                None => unit.fifo.push(Packet::Mem(first)).expect("space reserved"),
            }
        }
        let at_limit = unit.tracker.on_user_retire();
        if at_limit {
            self.close_segment(core, SegmentClose::CountLimit);
        }
        // Charge DMA cost for packets that spilled past the SRAM.
        let dma_cycles = self.fabric.config().dma_cycles;
        let unit = self.fabric.unit_mut(core);
        let spilled = unit.fifo.spilled_packets();
        if spilled > unit.spill_charged {
            let new = spilled - unit.spill_charged;
            unit.spill_charged = spilled;
            self.soc.stall_core(core, dma_cycles * new);
        }
    }

    /// Steps a busy checker core through the Al. 2 loop.
    ///
    /// The stream head is always classified *by reference*: packets are
    /// `ArchSnapshot`-sized, and this runs once per replayed instruction,
    /// so the hot path copies out at most a few words (checkpoint
    /// snapshots are restored/compared straight from the buffered
    /// packet).
    pub fn step_checker(&mut self, core: usize) -> EngineStep {
        let Some((main, consumer)) = self.fabric.channel_of(core) else {
            return EngineStep::Idle;
        };
        if !self.soc.core(core).is_running() {
            return EngineStep::Idle;
        }
        let cfg = self.fabric.config();
        let dma_spill = cfg.dma_spill;
        let wait_cycles = cfg.checker_wait_cycles;
        let scp_apply_cycles = cfg.scp_apply_cycles;
        let ecp_compare_cycles = cfg.ecp_compare_cycles;

        let phase = self.fabric.unit(core).checker.phase;
        match phase {
            CheckPhase::WaitScp => {
                // Segment-granular consumption (spill mode): only start
                // replaying once the whole segment (through its ECP) is
                // buffered, so the replay itself never stalls mid-segment
                // and the count boundary is always known in-stream.
                //
                // Without DMA spill the SRAM alone may be smaller than a
                // segment, and waiting for a complete segment would
                // deadlock against the producer's backpressure — the
                // checker must consume *streaming*, entry by entry, as on
                // the paper's SRAM-only datapath (mid-replay gaps simply
                // stall the checker for a beat).
                if dma_spill
                    && self
                        .fabric
                        .unit(main)
                        .fifo
                        .complete_segments_ahead(consumer)
                        == 0
                {
                    self.fabric.stats.checker_wait_stalls += 1;
                    self.soc.stall_core(core, wait_cycles);
                    return EngineStep::CheckerWaiting;
                }
                // Classify the head in place; on an SCP, restore the
                // checker's register file directly from the buffered
                // snapshot (C.apply + C.jal) without copying the packet.
                enum ScpHead {
                    Empty,
                    Applied { seq: u64, tag: u64 },
                    Stale,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => ScpHead::Empty,
                    Some(PacketRef::Scp(cp)) => {
                        let state = &mut self.soc.core_mut(core).state;
                        state.restore(&cp.snapshot);
                        state.prv = PrivMode::User;
                        ScpHead::Applied {
                            seq: cp.seq,
                            tag: cp.tag,
                        }
                    }
                    Some(_) => ScpHead::Stale,
                };
                match head {
                    ScpHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    ScpHead::Applied { seq, tag } => {
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.soc.core_mut(core).clear_reservation();
                        self.soc.stall_core(core, scp_apply_cycles);
                        self.fabric.unit_mut(core).checker.phase = CheckPhase::Replaying {
                            seq,
                            tag,
                            count: 0,
                            ic: None,
                        };
                        EngineStep::CheckerApplied { seq }
                    }
                    ScpHead::Stale => {
                        // Stale packet from an aborted segment: discard.
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.fabric.unit_mut(core).checker.skipped_packets += 1;
                        EngineStep::CheckerProgress
                    }
                }
            }
            CheckPhase::Replaying {
                seq,
                tag,
                count,
                ic,
            } => {
                enum ReplayHead {
                    Empty,
                    Count(u64),
                    Checkpoint,
                    Entry,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => ReplayHead::Empty,
                    Some(PacketRef::InstCount(v)) => ReplayHead::Count(v),
                    Some(PacketRef::Scp(_)) | Some(PacketRef::Ecp(_)) => ReplayHead::Checkpoint,
                    Some(PacketRef::Mem(_)) => ReplayHead::Entry,
                };
                match head {
                    ReplayHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    ReplayHead::Count(v) if count == v => {
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.fabric.unit_mut(core).checker.phase =
                            CheckPhase::WaitEcp { seq, tag, count };
                        EngineStep::CheckerProgress
                    }
                    ReplayHead::Count(v) if count > v => self.abort_segment(
                        core,
                        main,
                        consumer,
                        seq,
                        tag,
                        MismatchKind::CountOverrun {
                            expected: v,
                            actual: count,
                        },
                    ),
                    ReplayHead::Checkpoint if ic.is_none() => {
                        // A checkpoint where entries or the count should
                        // be: the stream is inconsistent.
                        self.abort_segment(
                            core,
                            main,
                            consumer,
                            seq,
                            tag,
                            MismatchKind::LogUnderrun,
                        )
                    }
                    ReplayHead::Count(v) => {
                        // Record the count when first observed, then
                        // replay one instruction.
                        self.fabric.unit_mut(core).checker.phase = CheckPhase::Replaying {
                            seq,
                            tag,
                            count,
                            ic: Some(v),
                        };
                        self.replay_one(core, main, consumer, seq, tag)
                    }
                    ReplayHead::Checkpoint | ReplayHead::Entry => {
                        self.replay_one(core, main, consumer, seq, tag)
                    }
                }
            }
            CheckPhase::WaitEcp { seq, tag, count } => {
                // Compare the buffered ECP snapshot against the replayed
                // state in place; only the diff list leaves the borrow.
                enum EcpHead {
                    Empty,
                    Compared(Vec<flexstep_sim::hart::SnapshotDiff>),
                    Unexpected,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => EcpHead::Empty,
                    Some(PacketRef::Ecp(cp)) => {
                        let mine = self.soc.core(core).state.snapshot();
                        EcpHead::Compared(cp.snapshot.diff(&mine))
                    }
                    Some(_) => EcpHead::Unexpected,
                };
                match head {
                    EcpHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    EcpHead::Compared(diffs) => {
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.soc.stall_core(core, ecp_compare_cycles);
                        let at = self.soc.now();
                        let _ = count;
                        if diffs.is_empty() {
                            let result = SegmentResult {
                                seq,
                                tag,
                                mismatch: None,
                                at,
                            };
                            self.fabric.stats.segments_ok += 1;
                            self.fabric
                                .unit_mut(core)
                                .checker
                                .finish_segment(result.clone());
                            EngineStep::CheckerSegmentDone(result)
                        } else {
                            let kind = MismatchKind::Ecp { diffs };
                            self.fabric.stats.segments_failed += 1;
                            let event = DetectionEvent {
                                main_core: main,
                                checker_core: core,
                                segment_seq: seq,
                                tag,
                                kind: kind.clone(),
                                detected_at: at,
                            };
                            self.fabric.detections.push(event.clone());
                            self.fabric
                                .unit_mut(core)
                                .checker
                                .finish_segment(SegmentResult {
                                    seq,
                                    tag,
                                    mismatch: Some(kind),
                                    at,
                                });
                            EngineStep::CheckerDetected(event)
                        }
                    }
                    EcpHead::Unexpected => self.abort_segment(
                        core,
                        main,
                        consumer,
                        seq,
                        tag,
                        MismatchKind::LogUnderrun,
                    ),
                }
            }
        }
    }

    fn replay_one(
        &mut self,
        core: usize,
        main: usize,
        consumer: usize,
        seq: u64,
        tag: u64,
    ) -> EngineStep {
        // Split borrows: the replay port borrows the *main* core's FIFO
        // (fabric field), the step borrows the checker core and memory
        // (soc field) — disjoint fields of `self`.
        let mismatch;
        let step;
        {
            let unit_main = self.fabric.unit_mut(main);
            let mut port = ReplayPort::new(&mut unit_main.fifo, consumer);
            step = self.soc.step_core_with_port(core, &mut port);
            mismatch = port.mismatch;
        }
        match step.kind {
            StepKind::Retired(_) => {
                let st = &mut self.fabric.unit_mut(core).checker;
                if let CheckPhase::Replaying { count, .. } = &mut st.phase {
                    *count += 1;
                }
                EngineStep::CheckerProgress
            }
            StepKind::Stopped(_) => {
                let kind = mismatch.unwrap_or(MismatchKind::LogUnderrun);
                self.abort_segment(core, main, consumer, seq, tag, kind)
            }
            StepKind::Trap { cause, tval, pc } => self.abort_segment(
                core,
                main,
                consumer,
                seq,
                tag,
                MismatchKind::CheckerFault {
                    what: format!("{cause:?} at pc {pc:#x} (tval {tval:#x})"),
                },
            ),
            StepKind::Interrupted { .. } => EngineStep::CheckerInterrupted(step.kind),
            StepKind::Idle => EngineStep::Idle,
            other => self.abort_segment(
                core,
                main,
                consumer,
                seq,
                tag,
                MismatchKind::CheckerFault {
                    what: format!("unexpected replay stop: {other:?}"),
                },
            ),
        }
    }

    /// Reports a detection and resynchronises the checker to the next SCP.
    fn abort_segment(
        &mut self,
        core: usize,
        main: usize,
        consumer: usize,
        seq: u64,
        tag: u64,
        kind: MismatchKind,
    ) -> EngineStep {
        // Segment-granular resynchronisation: in spill mode the aborted
        // segment is fully buffered (through its ECP), so the remainder
        // is skipped in one cursor move instead of one stale-packet
        // discard per engine step. Without spill the ECP may not have
        // been produced yet; the per-packet discard path in `WaitScp`
        // handles the tail as it arrives.
        if self.fabric.config().dma_spill {
            if let Some(skipped) = self.fabric.unit_mut(main).fifo.skip_segment(consumer) {
                self.fabric.unit_mut(core).checker.skipped_packets += skipped as u64;
            }
        }
        let at = self.soc.now();
        let event = DetectionEvent {
            main_core: main,
            checker_core: core,
            segment_seq: seq,
            tag,
            kind: kind.clone(),
            detected_at: at,
        };
        self.fabric.stats.segments_failed += 1;
        self.fabric.detections.push(event.clone());
        self.fabric
            .unit_mut(core)
            .checker
            .finish_segment(SegmentResult {
                seq,
                tag,
                mismatch: Some(kind),
                at,
            });
        EngineStep::CheckerDetected(event)
    }

    /// Access to the checker state of a core (tests, OS).
    pub fn checker_state(&self, core: usize) -> &CheckerState {
        &self.fabric.unit(core).checker
    }
}

fn bits_to_cores(mask: u64) -> Vec<usize> {
    (0..64).filter(|i| mask & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_to_cores_decodes_masks() {
        assert_eq!(bits_to_cores(0b0000), Vec::<usize>::new());
        assert_eq!(bits_to_cores(0b0101), vec![0, 2]);
        assert_eq!(bits_to_cores(1 << 63), vec![63]);
    }
}
