//! The FlexStep execution engine: couples the [`Fabric`] to the simulated
//! [`Soc`].
//!
//! - **Main cores** step normally; the engine captures SCPs at segment
//!   open, logs every user-mode memory access into the core's FIFO,
//!   closes segments on the count limit or privilege switch, and stalls
//!   the core (backpressure) when the FIFO cannot accept the worst-case
//!   burst of the next instruction.
//! - **Checker cores** run the replay loop of Al. 2: wait for an SCP,
//!   apply it, replay with the log-backed port, and compare the ECP.
//!
//! The checker only advances when its stream is non-empty: each buffered
//! packet is evidence of how far the main core got, so the checker can
//! never run past an asynchronous segment boundary (e.g. a preemption on
//! the main core) it has not yet been told about. On an empty stream the
//! checker stalls — this conservative rule is what makes asynchronous,
//! preemptive checking safe.

use crate::checker::{CheckPhase, CheckerState, ReplayPort};
use crate::detect::{DetectionEvent, MismatchKind, SegmentResult};
use crate::fabric::{CoreAttr, Fabric, FabricConfig, FlexError};
use crate::memo::{Playback, Recording};
use crate::packet::{hash_snapshot, log_entries, Packet, PacketRef, HASH_SEED};
use crate::rcpm::SegmentClose;
use flexstep_isa::inst::{FlexOp, InstClass};
use flexstep_isa::XReg;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_sim::{PrivMode, Retired, Soc, SocConfig, StepKind, StepResult};

/// Most instructions a main-core logged superblock may retire in one
/// engine step. Blocks also end at the next branch/system instruction
/// and one short of the segment limit, so this only caps straight-line
/// runs; it matches the simulator's decoded-block capacity.
const MAIN_BLOCK_INSTS: u64 = 32;

/// Most memoized profile steps a checker playback may consume in one
/// engine step (spill mode only — see [`FlexSoc::step_checker`]).
const PLAYBACK_BLOCK: usize = 32;

/// Outcome of one engine step on a core.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineStep {
    /// The core stepped; the underlying result (traps, `ecall`s, timer
    /// interrupts and custom instructions are the OS's to handle).
    Core(StepKind),
    /// A main core retired a straight-line run of decoded µops as one
    /// superblock, logging every access exactly as the equivalent
    /// sequence of [`EngineStep::Core`] retirements would. Blocks never
    /// open or close a segment and never cross a segment boundary.
    MainBlock {
        /// Instructions retired in the block (≥ 1).
        retired: u64,
    },
    /// A main core opened a segment: SCP extracted and pushed, the
    /// extraction stall charged. The first instruction of the segment
    /// executes on the next step — charged from the same post-stall
    /// ready time it always was, but as its own dispatch, so the global
    /// clock never leaps past other cores' ready times mid-step (which
    /// would make replay timing depend on dispatch interleaving).
    SegmentOpened,
    /// A main core stalled on FIFO backpressure.
    Backpressured,
    /// A checker stalled on an empty stream.
    CheckerWaiting,
    /// A checker advanced a memo-hit playback by a batch of recorded
    /// steps, charging each step's recorded retire cost — the timing and
    /// final state are those of the equivalent run of
    /// [`EngineStep::CheckerProgress`] steps.
    CheckerBlock {
        /// Profile steps consumed in the batch (≥ 1).
        replayed: u64,
    },
    /// A checker applied an SCP and entered replay.
    CheckerApplied {
        /// The applied segment's sequence number.
        seq: u64,
    },
    /// A checker replayed one instruction (or consumed a control packet).
    CheckerProgress,
    /// A checker finished a segment cleanly.
    CheckerSegmentDone(SegmentResult),
    /// A checker detected an error.
    CheckerDetected(DetectionEvent),
    /// A checker was interrupted (timer) — the OS may preempt it.
    CheckerInterrupted(StepKind),
    /// The core is idle/parked.
    Idle,
}

/// The FlexStep platform: simulator plus fabric.
///
/// See the crate-level documentation for a full worked example.
#[derive(Debug)]
pub struct FlexSoc {
    /// The underlying SoC.
    pub soc: Soc,
    /// The FlexStep hardware state.
    pub fabric: Fabric,
    /// Whether `step_main` may dispatch logged superblocks. Harnesses
    /// turn this off while fault shots are armed so injection windows
    /// stay cycle-precise (shots are polled between engine steps).
    main_batching: bool,
}

impl FlexSoc {
    /// Builds a FlexStep platform.
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] for invalid memory geometry.
    pub fn new(soc: SocConfig, fabric: FabricConfig) -> Result<Self, CacheGeometryError> {
        Ok(FlexSoc {
            fabric: Fabric::new(soc.num_cores, fabric),
            soc: Soc::new(soc)?,
            main_batching: true,
        })
    }

    /// Enables or disables logged-superblock dispatch on main cores.
    ///
    /// With batching off every instruction takes its own engine step —
    /// required while fault shots are pending, since shots fire between
    /// engine steps and a block would blur the injection cycle.
    pub fn set_main_batching(&mut self, on: bool) {
        self.main_batching = on;
    }

    // ----- Tab. I custom-ISA operations ------------------------------------

    /// `G.IDs.contain`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::ids_contain`].
    pub fn op_g_ids_contain(&self, core: usize) -> Result<CoreAttr, FlexError> {
        self.fabric.ids_contain(core)
    }

    /// `G.Configure`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::configure`].
    pub fn op_g_configure(&mut self, mains: &[usize], checkers: &[usize]) -> Result<(), FlexError> {
        self.fabric.configure(mains, checkers)
    }

    /// `M.associate`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::associate`].
    pub fn op_m_associate(&mut self, main: usize, checkers: &[usize]) -> Result<(), FlexError> {
        self.fabric.associate(main, checkers)
    }

    /// `M.check`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::set_check`].
    pub fn op_m_check(&mut self, main: usize, enable: bool) -> Result<(), FlexError> {
        self.fabric.set_check(main, enable)
    }

    /// `C.check_state`.
    ///
    /// # Errors
    ///
    /// See [`Fabric::set_check_state`].
    pub fn op_c_check_state(&mut self, checker: usize, busy: bool) -> Result<(), FlexError> {
        self.fabric.set_check_state(checker, busy)
    }

    /// `C.record`: snapshots the checker core's current context into its
    /// ASS (Al. 2 line 4).
    ///
    /// # Errors
    ///
    /// Requires a checker core.
    pub fn op_c_record(&mut self, checker: usize) -> Result<(), FlexError> {
        if self.fabric.ids_contain(checker)? != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        let snap = self.soc.core(checker).state.snapshot();
        self.fabric.unit_mut(checker).checker.ass.record(snap);
        Ok(())
    }

    /// `C.result`: takes the oldest pending segment verdict.
    ///
    /// # Errors
    ///
    /// Requires a checker core.
    pub fn op_c_result(&mut self, checker: usize) -> Result<Option<SegmentResult>, FlexError> {
        if self.fabric.ids_contain(checker)? != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        Ok(self.fabric.unit_mut(checker).checker.take_result())
    }

    /// Executes a guest-issued FlexStep custom instruction (surfaced by
    /// the simulator as [`StepKind::Flex`]) and completes it on the core.
    ///
    /// # Errors
    ///
    /// Propagates the underlying operation's [`FlexError`]; on error the
    /// instruction completes with `rd = u64::MAX` (hardware error code)
    /// and the error is also returned for OS visibility.
    pub fn exec_flex(
        &mut self,
        core: usize,
        op: FlexOp,
        rd: XReg,
        rs1_value: u64,
        rs2_value: u64,
    ) -> Result<(), FlexError> {
        let result: Result<u64, FlexError> = match op {
            FlexOp::GIdsContain => self
                .fabric
                .ids_contain(rs1_value as usize)
                .map(CoreAttr::to_bits),
            FlexOp::GConfigure => {
                let mains = bits_to_cores(rs1_value);
                let checkers = bits_to_cores(rs2_value);
                self.fabric.configure(&mains, &checkers).map(|()| 0)
            }
            FlexOp::MAssociate => {
                let checkers = bits_to_cores(rs1_value);
                self.fabric.associate(core, &checkers).map(|()| 0)
            }
            FlexOp::MCheck => self.fabric.set_check(core, rs1_value != 0).map(|()| 0),
            FlexOp::CCheckState => self
                .fabric
                .set_check_state(core, rs1_value != 0)
                .map(|()| 0),
            FlexOp::CRecord => self.op_c_record(core).map(|()| 0),
            FlexOp::CApply => {
                // Applies the staged SCP to the register file.
                match self.fabric.unit_mut(core).checker.ass.take_scp() {
                    Some(cp) => {
                        self.soc.core_mut(core).state.restore(&cp.snapshot);
                        Ok(0)
                    }
                    None => Ok(u64::MAX),
                }
            }
            FlexOp::CJal => Ok(0), // pc redirect is part of the apply path here
            FlexOp::CResult => self
                .op_c_result(core)
                .map(|r| r.map_or(u64::MAX, |res| u64::from(res.is_ok()))),
        };
        match result {
            Ok(v) => {
                self.soc.complete_flex(core, rd, v);
                Ok(())
            }
            Err(e) => {
                self.soc.complete_flex(core, rd, u64::MAX);
                Err(e)
            }
        }
    }

    // ----- engine stepping --------------------------------------------------

    /// Steps a core according to its current attribute and state.
    pub fn step(&mut self, core: usize) -> EngineStep {
        match self.fabric.unit(core).attr {
            CoreAttr::Checker if self.fabric.unit(core).checker.busy => self.step_checker(core),
            CoreAttr::Main => self.step_main(core),
            _ => EngineStep::Core(self.soc.step_core(core).kind),
        }
    }

    /// Steps a main core, performing checkpoint extraction, logging and
    /// backpressure.
    pub fn step_main(&mut self, core: usize) -> EngineStep {
        let live = self.fabric.checking_live(core);

        if live {
            let soc_core = self.soc.core(core);
            if soc_core.state.prv == PrivMode::User && soc_core.is_running() {
                // One fabric borrow for the whole pre-step check: config
                // scalars are copied out so the borrow can end before the
                // stat/stall mutations.
                let cfg = self.fabric.config();
                let retry_cycles = cfg.backpressure_retry_cycles;
                let scp_cycles = cfg.scp_extract_cycles;
                let dma_cycles = cfg.dma_cycles;
                let unit = self.fabric.unit(core);
                // Worst-case needs for this step: two log entries, plus a
                // close burst (IC + ECP) if a segment is or will be open,
                // plus an SCP if we must open one.
                let opening = !unit.tracker.is_open();
                let need_cps = 1 + usize::from(opening);
                let need_bytes = 32 + 8; // two entries + instruction count
                if !unit.fifo.can_accept(need_bytes, need_cps) {
                    self.fabric.stats.backpressure_stalls += 1;
                    self.soc.stall_core(core, retry_cycles);
                    return EngineStep::Backpressured;
                }
                if opening {
                    let snap = self.soc.core(core).state.snapshot();
                    let unit = self.fabric.unit_mut(core);
                    let consumers = unit.fifo.consumers() as u64;
                    let scp = unit.tracker.open_segment(snap);
                    unit.fifo.push_scp(scp).expect("space reserved above");
                    unit.cp_stall_cycles += scp_cycles * consumers;
                    // The ASS forwards the checkpoint once per associated
                    // checker (§III-A): wider verification modes serialise
                    // more beats through the channel — the source of
                    // Fig. 6's dual→triple slowdown increase.
                    self.soc.stall_core(core, scp_cycles * consumers);
                    // Stop here: executing the first instruction in the
                    // same dispatch would drag the global clock past the
                    // post-stall ready time while other cores may still
                    // be runnable earlier. Keeping dispatches warp-free
                    // means a checker's replay charges are a pure
                    // function of its own stream — the property the
                    // verdict memo's recorded profiles rely on.
                    return EngineStep::SegmentOpened;
                }
                // Logged-superblock dispatch: retire a straight-line run
                // of decoded µops in one engine step. The budget stops
                // one instruction short of the segment limit so the
                // close (IC + ECP burst) always happens on the per-step
                // path below, and the byte reserve covers the worst case
                // of two log entries per retire — every in-block push
                // therefore has the space the per-step gate would have
                // demanded. Requires dma_cycles == 0 (the paper datapath)
                // so deferring the spill charge to the block boundary
                // cannot shift timing.
                if self.main_batching && dma_cycles == 0 {
                    let unit = self.fabric.unit(core);
                    let remaining = unit.tracker.limit().saturating_sub(unit.tracker.count());
                    let budget = MAIN_BLOCK_INSTS.min(remaining.saturating_sub(1));
                    if budget >= 2 && unit.fifo.can_accept(budget as usize * 32 + 8, 1) {
                        // Split borrows: the sink writes the *fabric*
                        // unit's FIFO and tracker while the block runs on
                        // the *soc* — disjoint fields of `self`.
                        let soc = &mut self.soc;
                        let unit = self.fabric.unit_mut(core);
                        let retired = soc.run_superblock_logged(core, budget, |mem| {
                            if let Some(access) = mem {
                                let (first, second) = log_entries(access);
                                match second {
                                    Some(second) => unit
                                        .fifo
                                        .push_burst_owned([Packet::Mem(first), Packet::Mem(second)])
                                        .expect("space reserved"),
                                    None => {
                                        unit.fifo.push(Packet::Mem(first)).expect("space reserved")
                                    }
                                }
                            }
                            let at_limit = unit.tracker.on_user_retire();
                            debug_assert!(!at_limit, "block budget keeps the segment open");
                        });
                        if retired > 0 {
                            // Spill charges are zero here (dma_cycles is
                            // 0 by the gate above); keep the accounting
                            // cursor in sync for later per-step retires.
                            let unit = self.fabric.unit_mut(core);
                            let spilled = unit.fifo.spilled_packets();
                            unit.spill_charged = unit.spill_charged.max(spilled);
                            return EngineStep::MainBlock { retired };
                        }
                    }
                }
            }
        }

        let result: StepResult = self.soc.step_core(core);
        match &result.kind {
            StepKind::Retired(retired) if live && retired.prv == PrivMode::User => {
                self.after_user_retire(core, retired);
            }
            StepKind::Trap { .. } | StepKind::Interrupted { .. }
                // Leaving user mode: premature segment extermination
                // (Fig. 3.1). The ECP is the state at the boundary.
                if live && self.fabric.unit(core).tracker.is_open() => {
                    self.close_segment(core, SegmentClose::PrivilegeSwitch);
                }
            _ => {}
        }
        EngineStep::Core(result.kind)
    }

    /// Closes the open segment on `core`, pushing the `InstCount` + ECP
    /// pair as one burst and charging the extraction stall.
    fn close_segment(&mut self, core: usize, why: SegmentClose) {
        let ecp_cycles = self.fabric.config().ecp_extract_cycles;
        let snap = self.soc.core(core).state.snapshot();
        let unit = self.fabric.unit_mut(core);
        let consumers = unit.fifo.consumers() as u64;
        let (count, ecp) = unit.tracker.close_segment(snap, why);
        unit.fifo
            .push_count_ecp(count, ecp)
            .expect("space and cp slot reserved");
        unit.cp_stall_cycles += ecp_cycles * consumers;
        self.soc.stall_core(core, ecp_cycles * consumers);
    }

    fn after_user_retire(&mut self, core: usize, retired: &Retired) {
        let forwards_branches = self.soc.core(core).model_kind().forwards_branch_outcomes();
        let unit = self.fabric.unit_mut(core);
        if !unit.tracker.is_open() {
            // Checking was enabled mid-flight (first user instruction
            // after M.check); the segment opens on the next step.
            return;
        }
        if let Some(access) = &retired.mem {
            let (first, second) = log_entries(access);
            match second {
                // Multi-µop instructions push both entries as one burst.
                Some(second) => unit
                    .fifo
                    .push_burst_owned([Packet::Mem(first), Packet::Mem(second)])
                    .expect("space reserved"),
                None => unit.fifo.push(Packet::Mem(first)).expect("space reserved"),
            }
        }
        // OoO mains forward each retired branch's resolved target so
        // in-order checkers can skip prediction and catch control-flow
        // divergence at the branch itself (MEEK-style outcome
        // forwarding). Branches carry no memory access, so the 8-byte
        // packet fits well inside the two-entry reserve above.
        if forwards_branches && retired.branch.is_some() {
            unit.fifo
                .push(Packet::Branch(retired.next_pc))
                .expect("space reserved");
        }
        let at_limit = unit.tracker.on_user_retire();
        if at_limit {
            self.close_segment(core, SegmentClose::CountLimit);
        }
        // Charge DMA cost for packets that spilled past the SRAM.
        let dma_cycles = self.fabric.config().dma_cycles;
        let unit = self.fabric.unit_mut(core);
        let spilled = unit.fifo.spilled_packets();
        if spilled > unit.spill_charged {
            let new = spilled - unit.spill_charged;
            unit.spill_charged = spilled;
            self.soc.stall_core(core, dma_cycles * new);
        }
    }

    /// Steps a busy checker core through the Al. 2 loop.
    ///
    /// The stream head is always classified *by reference*: packets are
    /// `ArchSnapshot`-sized, and this runs once per replayed instruction,
    /// so the hot path copies out at most a few words (checkpoint
    /// snapshots are restored/compared straight from the buffered
    /// packet).
    pub fn step_checker(&mut self, core: usize) -> EngineStep {
        let Some((main, consumer)) = self.fabric.channel_of(core) else {
            return EngineStep::Idle;
        };
        if !self.soc.core(core).is_running() {
            return EngineStep::Idle;
        }
        let phase = self.fabric.unit(core).checker.phase;
        // Memo-hit playback touches no config scalars: dispatch it
        // before the per-step cfg reads — it runs once per replayed
        // instruction on the hottest checker path.
        if let CheckPhase::Replaying { seq, tag, .. } = phase {
            if self.fabric.unit(core).checker.playback.is_some() {
                return self.playback_step(core, main, consumer, seq, tag);
            }
        }
        let cfg = self.fabric.config();
        let dma_spill = cfg.dma_spill;
        let wait_cycles = cfg.checker_wait_cycles;
        let scp_apply_cycles = cfg.scp_apply_cycles;
        let ecp_compare_cycles = cfg.ecp_compare_cycles;

        match phase {
            CheckPhase::WaitScp => {
                // Segment-granular consumption (spill mode): only start
                // replaying once the whole segment (through its ECP) is
                // buffered, so the replay itself never stalls mid-segment
                // and the count boundary is always known in-stream.
                //
                // Without DMA spill the SRAM alone may be smaller than a
                // segment, and waiting for a complete segment would
                // deadlock against the producer's backpressure — the
                // checker must consume *streaming*, entry by entry, as on
                // the paper's SRAM-only datapath (mid-replay gaps simply
                // stall the checker for a beat).
                if dma_spill
                    && self
                        .fabric
                        .unit(main)
                        .fifo
                        .complete_segments_ahead(consumer)
                        == 0
                {
                    self.fabric.stats.checker_wait_stalls += 1;
                    self.soc.stall_core(core, wait_cycles);
                    return EngineStep::CheckerWaiting;
                }
                // Classify the head in place; on an SCP, restore the
                // checker's register file directly from the buffered
                // snapshot (C.apply + C.jal) without copying the packet.
                enum ScpHead {
                    Empty,
                    Applied {
                        seq: u64,
                        tag: u64,
                        start_hash: u64,
                        stream_hash: Option<u64>,
                    },
                    Stale,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => ScpHead::Empty,
                    Some(PacketRef::Scp(cp)) => {
                        let state = &mut self.soc.core_mut(core).state;
                        state.restore(&cp.snapshot);
                        state.prv = PrivMode::User;
                        ScpHead::Applied {
                            seq: cp.seq,
                            tag: cp.tag,
                            start_hash: hash_snapshot(HASH_SEED, &cp.snapshot),
                            // The DBC's banked fingerprint for the segment
                            // this SCP opens: `Some` only when the segment
                            // is fully buffered and untainted by injection.
                            stream_hash: self.fabric.unit(main).fifo.next_segment_hash(consumer),
                        }
                    }
                    Some(_) => ScpHead::Stale,
                };
                match head {
                    ScpHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    ScpHead::Applied {
                        seq,
                        tag,
                        start_hash,
                        stream_hash,
                    } => {
                        // Every SCP apply is a replay context switch:
                        // flush the checker's µarch timing state so
                        // segment replay timing is a pure function of
                        // (checkpoint, stream, code bytes). Runs memo-on
                        // and memo-off alike — that purity is what makes
                        // the verdict memo sound, and keeping it
                        // unconditional keeps reports bit-identical.
                        self.soc.core_mut(core).reset_replay_uarch();
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.soc.core_mut(core).clear_reservation();
                        self.soc.stall_core(core, scp_apply_cycles);
                        self.fabric.unit_mut(core).checker.phase = CheckPhase::Replaying {
                            seq,
                            tag,
                            count: 0,
                            ic: None,
                        };
                        // Verdict memo: a segment is memoizable only when
                        // its full stream fingerprint is banked, no fault
                        // shot is armed on this channel, and no checker
                        // timer could preempt mid-replay.
                        let memoizable = self.fabric.unit(core).checker.memo.is_enabled()
                            && !self.fabric.unit(main).memo_blocked
                            && self.soc.core(core).timer_cmp.is_none();
                        if let (true, Some(stream_hash)) = (memoizable, stream_hash) {
                            let epoch = self.soc.code_epoch();
                            let checker = &mut self.fabric.unit_mut(core).checker;
                            match checker.memo.lookup(start_hash, stream_hash, epoch) {
                                Some((inst_count, profile)) => {
                                    checker.playback = Some(Playback::new(inst_count, profile));
                                    self.fabric.stats.memo_hits += 1;
                                }
                                None => {
                                    checker.recording =
                                        Some(Recording::new(start_hash, stream_hash, epoch));
                                    self.fabric.stats.memo_misses += 1;
                                }
                            }
                        }
                        EngineStep::CheckerApplied { seq }
                    }
                    ScpHead::Stale => {
                        // Stale packet from an aborted segment: discard.
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.fabric.unit_mut(core).checker.skipped_packets += 1;
                        EngineStep::CheckerProgress
                    }
                }
            }
            CheckPhase::Replaying {
                seq,
                tag,
                count,
                ic,
            } => {
                enum ReplayHead {
                    Empty,
                    Count(u64),
                    Checkpoint,
                    Entry,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => ReplayHead::Empty,
                    Some(PacketRef::InstCount(v)) => ReplayHead::Count(v),
                    Some(PacketRef::Scp(_)) | Some(PacketRef::Ecp(_)) => ReplayHead::Checkpoint,
                    // A forwarded branch outcome is consumed by the replay
                    // port mid-instruction, exactly like a log entry.
                    Some(PacketRef::Mem(_)) | Some(PacketRef::Branch(_)) => ReplayHead::Entry,
                };
                match head {
                    ReplayHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    ReplayHead::Count(v) if count == v => {
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.fabric.unit_mut(core).checker.phase =
                            CheckPhase::WaitEcp { seq, tag, count };
                        EngineStep::CheckerProgress
                    }
                    ReplayHead::Count(v) if count > v => self.abort_segment(
                        core,
                        main,
                        consumer,
                        seq,
                        tag,
                        MismatchKind::CountOverrun {
                            expected: v,
                            actual: count,
                        },
                    ),
                    ReplayHead::Checkpoint if ic.is_none() => {
                        // A checkpoint where entries or the count should
                        // be: the stream is inconsistent.
                        self.abort_segment(
                            core,
                            main,
                            consumer,
                            seq,
                            tag,
                            MismatchKind::LogUnderrun,
                        )
                    }
                    ReplayHead::Count(v) => {
                        // Record the count when first observed, then
                        // replay one instruction.
                        self.fabric.unit_mut(core).checker.phase = CheckPhase::Replaying {
                            seq,
                            tag,
                            count,
                            ic: Some(v),
                        };
                        self.replay_one(core, main, consumer, seq, tag)
                    }
                    ReplayHead::Checkpoint | ReplayHead::Entry => {
                        self.replay_one(core, main, consumer, seq, tag)
                    }
                }
            }
            CheckPhase::WaitEcp { seq, tag, count } => {
                // Compare the buffered ECP snapshot against the replayed
                // state in place; only the diff list leaves the borrow.
                enum EcpHead {
                    Empty,
                    Compared(Vec<flexstep_sim::hart::SnapshotDiff>),
                    Unexpected,
                }
                let head = match self.fabric.unit(main).fifo.peek(consumer) {
                    None => EcpHead::Empty,
                    Some(PacketRef::Ecp(cp)) => {
                        let mine = self.soc.core(core).state.snapshot();
                        EcpHead::Compared(cp.snapshot.diff(&mine))
                    }
                    Some(_) => EcpHead::Unexpected,
                };
                match head {
                    EcpHead::Empty => {
                        self.fabric.stats.checker_wait_stalls += 1;
                        self.soc.stall_core(core, wait_cycles);
                        EngineStep::CheckerWaiting
                    }
                    EcpHead::Compared(diffs) => {
                        self.fabric.unit_mut(main).fifo.advance(consumer);
                        self.soc.stall_core(core, ecp_compare_cycles);
                        let at = self.soc.now();
                        let _ = count;
                        if diffs.is_empty() {
                            let result = SegmentResult {
                                seq,
                                tag,
                                mismatch: None,
                                at,
                            };
                            self.fabric.stats.segments_ok += 1;
                            // Harvest the recording: a clean verdict for a
                            // fingerprinted stream is exactly what the memo
                            // caches — unless the code bytes changed under
                            // the replay, which would stale the profile.
                            let epoch = self.soc.code_epoch();
                            let checker = &mut self.fabric.unit_mut(core).checker;
                            if let Some(rec) = checker.recording.take() {
                                if rec.code_epoch == epoch {
                                    checker.memo.insert(rec);
                                }
                            }
                            self.fabric
                                .unit_mut(core)
                                .checker
                                .finish_segment(result.clone());
                            EngineStep::CheckerSegmentDone(result)
                        } else {
                            self.fabric.unit_mut(core).checker.recording = None;
                            let kind = MismatchKind::Ecp { diffs };
                            self.fabric.stats.segments_failed += 1;
                            let event = DetectionEvent {
                                main_core: main,
                                checker_core: core,
                                segment_seq: seq,
                                tag,
                                kind: kind.clone(),
                                detected_at: at,
                            };
                            self.fabric.detections.push(event.clone());
                            self.fabric
                                .unit_mut(core)
                                .checker
                                .finish_segment(SegmentResult {
                                    seq,
                                    tag,
                                    mismatch: Some(kind),
                                    at,
                                });
                            EngineStep::CheckerDetected(event)
                        }
                    }
                    EcpHead::Unexpected => self.abort_segment(
                        core,
                        main,
                        consumer,
                        seq,
                        tag,
                        MismatchKind::LogUnderrun,
                    ),
                }
            }
        }
    }

    /// Advances a memo-hit playback by one engine step: charges the
    /// recorded retire cost and consumes the recorded number of log
    /// entries, reproducing the real replay's step sequence exactly.
    /// When the profile runs dry it consumes the `InstCount` packet and
    /// restores the replayed end state from the buffered ECP snapshot —
    /// the memoized verdict was clean, so a real replay would end in
    /// exactly that state — then falls through to the regular `WaitEcp`
    /// compare, which emits the verdict with its usual stall and events.
    fn playback_step(
        &mut self,
        core: usize,
        main: usize,
        consumer: usize,
        seq: u64,
        tag: u64,
    ) -> EngineStep {
        // In spill mode with free DMA the producer never observes FIFO
        // occupancy (`can_accept` is unconditionally true), so draining
        // a batch of profile steps in one engine step is indistinguishable
        // — in report and in timing — from draining them one step at a
        // time. Outside that regime occupancy feeds back into producer
        // backpressure and spill charges, so playback stays per-step.
        let cfg = self.fabric.config();
        let max_batch = if cfg.dma_spill && cfg.dma_cycles == 0 {
            PLAYBACK_BLOCK
        } else {
            1
        };
        let mut buf = [(0u64, 0u64); PLAYBACK_BLOCK];
        let mut n = 0;
        {
            let pb = self
                .fabric
                .unit_mut(core)
                .checker
                .playback
                .as_mut()
                .expect("playback checked by caller");
            while n < max_batch {
                match pb.next_step() {
                    Some(step) => {
                        buf[n] = step;
                        n += 1;
                    }
                    None => break,
                }
            }
        }
        if n > 0 {
            let mut total_cycles = 0u64;
            let mut total_entries = 0u64;
            for &(cycles, entries) in &buf[..n] {
                total_cycles += cycles;
                total_entries += entries;
            }
            self.soc.charge_replay_retires(core, n as u64, total_cycles);
            let fifo = &mut self.fabric.unit_mut(main).fifo;
            for _ in 0..total_entries {
                let ok = fifo.advance(consumer);
                debug_assert!(ok, "profile entries lie within the buffered segment");
            }
            if let CheckPhase::Replaying { count, .. } =
                &mut self.fabric.unit_mut(core).checker.phase
            {
                *count += n as u64;
            }
            return EngineStep::CheckerBlock { replayed: n as u64 };
        }
        // Profile exhausted. The fingerprint match guarantees the stream
        // is byte-identical to the recorded one, so the head must be the
        // memoized segment's InstCount followed by its ECP — anything
        // else is a memo bug or a 128-bit fingerprint collision: fail
        // loudly rather than verify the wrong segment.
        let inst_count = self
            .fabric
            .unit_mut(core)
            .checker
            .playback
            .take()
            .expect("playback checked by caller")
            .inst_count;
        match self.fabric.unit(main).fifo.peek(consumer) {
            Some(PacketRef::InstCount(v)) if v == inst_count => {}
            other => panic!(
                "verdict-memo playback desynced: expected InstCount({inst_count}), found {other:?}"
            ),
        }
        self.fabric.unit_mut(main).fifo.advance(consumer);
        match self.fabric.unit(main).fifo.peek(consumer) {
            Some(PacketRef::Ecp(cp)) => self.soc.core_mut(core).state.restore(&cp.snapshot),
            other => panic!("verdict-memo playback desynced: expected ECP, found {other:?}"),
        }
        self.fabric.unit_mut(core).checker.phase = CheckPhase::WaitEcp {
            seq,
            tag,
            count: inst_count,
        };
        EngineStep::CheckerProgress
    }

    fn replay_one(
        &mut self,
        core: usize,
        main: usize,
        consumer: usize,
        seq: u64,
        tag: u64,
    ) -> EngineStep {
        // Split borrows: the replay port borrows the *main* core's FIFO
        // (fabric field), the step borrows the checker core and memory
        // (soc field) — disjoint fields of `self`.
        let cursor_before = self.fabric.unit(main).fifo.cursor(consumer);
        let mismatch;
        let step;
        {
            let unit_main = self.fabric.unit_mut(main);
            let mut port = ReplayPort::new(&mut unit_main.fifo, consumer);
            step = self.soc.step_core_with_port(core, &mut port);
            mismatch = port.mismatch;
        }
        match step.kind {
            StepKind::Retired(ref retired) => {
                if self.fabric.unit(core).checker.recording.is_some() {
                    // Cursors are absolute stream positions, so the delta
                    // is exactly the log entries this step consumed.
                    let entries = self.fabric.unit(main).fifo.cursor(consumer) - cursor_before;
                    // System instructions (CSR reads of time-dependent
                    // counters) make results depend on more than the
                    // fingerprinted inputs: drop the recording.
                    let system = retired.inst.class() == InstClass::System;
                    let st = &mut self.fabric.unit_mut(core).checker;
                    let kept = !system
                        && st
                            .recording
                            .as_mut()
                            .is_some_and(|r| r.push_step(step.cycles, entries));
                    if !kept {
                        st.recording = None;
                    }
                }
                let st = &mut self.fabric.unit_mut(core).checker;
                if let CheckPhase::Replaying { count, .. } = &mut st.phase {
                    *count += 1;
                }
                EngineStep::CheckerProgress
            }
            StepKind::Stopped(_) => {
                let kind = mismatch.unwrap_or(MismatchKind::LogUnderrun);
                self.abort_segment(core, main, consumer, seq, tag, kind)
            }
            StepKind::Trap { cause, tval, pc } => self.abort_segment(
                core,
                main,
                consumer,
                seq,
                tag,
                MismatchKind::CheckerFault {
                    what: format!("{cause:?} at pc {pc:#x} (tval {tval:#x})"),
                },
            ),
            StepKind::Interrupted { .. } => {
                // Preemption mid-replay: the profile would be incomplete.
                self.fabric.unit_mut(core).checker.recording = None;
                EngineStep::CheckerInterrupted(step.kind)
            }
            StepKind::Idle => EngineStep::Idle,
            other => self.abort_segment(
                core,
                main,
                consumer,
                seq,
                tag,
                MismatchKind::CheckerFault {
                    what: format!("unexpected replay stop: {other:?}"),
                },
            ),
        }
    }

    /// Reports a detection and resynchronises the checker to the next SCP.
    fn abort_segment(
        &mut self,
        core: usize,
        main: usize,
        consumer: usize,
        seq: u64,
        tag: u64,
        kind: MismatchKind,
    ) -> EngineStep {
        // An aborted segment can never become a cached clean verdict.
        let st = &mut self.fabric.unit_mut(core).checker;
        st.recording = None;
        st.playback = None;
        // Segment-granular resynchronisation: in spill mode the aborted
        // segment is fully buffered (through its ECP), so the remainder
        // is skipped in one cursor move instead of one stale-packet
        // discard per engine step. Without spill the ECP may not have
        // been produced yet; the per-packet discard path in `WaitScp`
        // handles the tail as it arrives.
        if self.fabric.config().dma_spill {
            if let Some(skipped) = self.fabric.unit_mut(main).fifo.skip_segment(consumer) {
                self.fabric.unit_mut(core).checker.skipped_packets += skipped as u64;
            }
        }
        let at = self.soc.now();
        let event = DetectionEvent {
            main_core: main,
            checker_core: core,
            segment_seq: seq,
            tag,
            kind: kind.clone(),
            detected_at: at,
        };
        self.fabric.stats.segments_failed += 1;
        self.fabric.detections.push(event.clone());
        self.fabric
            .unit_mut(core)
            .checker
            .finish_segment(SegmentResult {
                seq,
                tag,
                mismatch: Some(kind),
                at,
            });
        EngineStep::CheckerDetected(event)
    }

    /// Access to the checker state of a core (tests, OS).
    pub fn checker_state(&self, core: usize) -> &CheckerState {
        &self.fabric.unit(core).checker
    }
}

fn bits_to_cores(mask: u64) -> Vec<usize> {
    (0..64).filter(|i| mask & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_to_cores_decodes_masks() {
        assert_eq!(bits_to_cores(0b0000), Vec::<usize>::new());
        assert_eq!(bits_to_cores(0b0101), vec![0, 2]);
        assert_eq!(bits_to_cores(1 << 63), vec![63]);
    }
}
