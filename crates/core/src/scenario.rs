//! The [`Scenario`] builder — the single front door for FlexStep
//! experiments.
//!
//! Every experiment in this repository is some arrangement of the same
//! ingredients: an N-core SoC, a main/checker topology, guest programs
//! on the main cores, an optional fault-injection schedule, and a way to
//! watch what happened. Historically each example and bench binary wired
//! those up by reaching through [`VerifiedRun`] internals; the builder
//! makes the whole space declarative:
//!
//! ```
//! use flexstep_core::{FabricConfig, FaultPlan, Scenario, Topology};
//! use flexstep_isa::{asm::Assembler, XReg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new("tiny");
//! asm.li(XReg::A0, 50);
//! asm.li(XReg::A1, 0x2000_0000);
//! asm.label("l")?;
//! asm.sd(XReg::A1, XReg::A0, 0);
//! asm.addi(XReg::A0, XReg::A0, -1);
//! asm.bnez(XReg::A0, "l");
//! asm.ecall();
//! let program = asm.finish()?;
//!
//! // Dual-core verified execution (core 0 main, core 1 checker).
//! let mut run = Scenario::new(&program)
//!     .cores(2)
//!     .topology(Topology::PairedLockstep)
//!     .fabric(FabricConfig::paper())
//!     .build()?;
//! let report = run.run_to_completion(10_000_000);
//! assert!(report.completed);
//! assert_eq!(report.segments_failed, 0);
//! # Ok(())
//! # }
//! ```
//!
//! Topologies cover the paper's whole configuration space: per-main
//! dedicated checkers ([`Topology::PairedLockstep`], or
//! [`Topology::Custom`] for 1:2/1:3 fan-out), and §III-C arbitrated
//! checker sharing ([`Topology::SharedChecker`]) at any core count —
//! including the many-core (Fig. 8-style) 16–64 core sweeps.

use crate::detect::{DetectionEvent, SegmentResult};
use crate::fabric::{FabricConfig, FlexError};
use crate::fault::{inject_random_fault, inject_targeted_fault, FaultTarget};
use crate::harness::VerifiedRun;
use flexstep_isa::asm::Program;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_sim::{CoreModelKind, PairingSchedule, ReliabilityMode, SchedMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// How main cores map to checker cores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Topology {
    /// Cores come in (main, checker) pairs: core `2i` is a main core
    /// verified by its dedicated checker `2i + 1` — the DCLS-like layout
    /// of Fig. 4 at two cores, scaled sideways at higher counts.
    #[default]
    PairedLockstep,
    /// The last `checkers` cores are checker cores shared by all
    /// preceding main cores through §III-C FIFO arbitration; main `i` is
    /// bound to checker `mains + (i % checkers)`. This is the
    /// consolidation topology of the paper's introduction and the
    /// many-core Fig. 8-style experiments.
    SharedChecker {
        /// Number of shared checker cores (≥ 1).
        checkers: usize,
    },
    /// An explicit map `(main core, its checker cores)`. A checker
    /// listed by exactly one main is dedicated (1:1, 1:2, … channels); a
    /// checker listed by several mains is shared through arbitration (in
    /// which case each of those mains must list only that checker).
    /// Cores not mentioned are plain compute cores.
    Custom(Vec<(usize, Vec<usize>)>),
}

// ---------------------------------------------------------------------------
// Recovery policy
// ---------------------------------------------------------------------------

/// What the run loop does when a checker detects an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum RecoveryPolicy {
    /// Record the detection and keep running — the fail-stop diagnosis
    /// mode of the original detection-only experiments (the default).
    #[default]
    Detect,
    /// Roll the faulted main back to the detected segment's own SCP
    /// boundary (its predecessor was verified, so the segment's start
    /// state is trusted), flush the in-flight DBC stream and replay
    /// uarch state, and re-execute the segment.
    ///
    /// `max_retries` bounds *consecutive* rollbacks of the same main
    /// without an intervening verified segment; once exhausted, further
    /// detections on that main are recorded detect-only and counted in
    /// [`MainReport::unrecovered`](crate::MainReport::unrecovered).
    Rollback {
        /// Consecutive re-executions allowed before giving up.
        max_retries: u32,
    },
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// What one scheduled fault injection does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShotKind {
    /// Flip `bits` random bits in one in-flight packet of class
    /// `target`.
    Targeted { target: FaultTarget, bits: u32 },
    /// Flip one random bit in one random in-flight packet.
    Random,
    /// Permanently fail a checker core (fail-silent hard fault): the
    /// core halts and its channels are re-paired or degraded.
    KillChecker,
}

/// One scheduled injection of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaultShot {
    /// Earliest cycle at which the shot may fire.
    at_cycle: u64,
    /// Channel index: the *i*-th main core of the scenario — except for
    /// [`ShotKind::KillChecker`], where it is the *i*-th checker core.
    channel: usize,
    kind: ShotKind,
}

/// A declarative fault-injection schedule, executed by the run loop.
///
/// Replaces the manual `run_until_cycle` + `inject_random_fault` +
/// field-poking idiom: each shot arms at its cycle and fires as soon as
/// the target channel has matching data in flight (the paper's §VI-C
/// methodology injects into *forwarded* data, so an empty FIFO defers
/// the shot to the next step). Fired shots are reported in
/// [`RunReport::injections`](crate::RunReport::injections) and surfaced
/// to observers via [`Observer::on_fault_injected`].
///
/// The combinators chain left to right: `then_*` appends a shot,
/// [`FaultPlan::on_channel`] / [`FaultPlan::bits`] retarget/widen the
/// *most recent* one, and [`FaultPlan::with_seed`] fixes the RNG for
/// the whole plan:
///
/// ```
/// use flexstep_core::{FaultPlan, FaultTarget};
/// let plan = FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData)
///     .bits(2)                       // widen shot 0 to a 2-bit upset
///     .then_random_at(60_000)
///     .on_channel(1)                 // aim shot 1 at the second main
///     .then_bit_flip_at(90_000, FaultTarget::EntryAddr)
///     .with_seed(7);
/// assert_eq!(plan.len(), 3);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    shots: Vec<FaultShot>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (the default): no injections.
    pub fn none() -> Self {
        FaultPlan {
            shots: Vec::new(),
            seed: 0,
        }
    }

    /// One single-bit flip in an in-flight packet of class `target` on
    /// the first main core's stream, armed at `cycle`.
    pub fn bit_flip_at(cycle: u64, target: FaultTarget) -> Self {
        FaultPlan::none().then_bit_flip_at(cycle, target)
    }

    /// One random single-bit flip in a random in-flight packet on the
    /// first main core's stream, armed at `cycle`, with the plan's RNG
    /// seeded to `seed`.
    pub fn random_with_seed(cycle: u64, seed: u64) -> Self {
        FaultPlan::none().then_random_at(cycle).with_seed(seed)
    }

    /// Appends a targeted single-bit flip armed at `cycle`.
    pub fn then_bit_flip_at(mut self, cycle: u64, target: FaultTarget) -> Self {
        self.shots.push(FaultShot {
            at_cycle: cycle,
            channel: 0,
            kind: ShotKind::Targeted { target, bits: 1 },
        });
        self
    }

    /// Appends a random flip armed at `cycle`.
    pub fn then_random_at(mut self, cycle: u64) -> Self {
        self.shots.push(FaultShot {
            at_cycle: cycle,
            channel: 0,
            kind: ShotKind::Random,
        });
        self
    }

    /// One permanent checker failure at `cycle`, aimed at the first
    /// checker core. Retarget with [`FaultPlan::on_checker`]. Unlike
    /// transient flips, a kill fires unconditionally at its cycle (a
    /// hard fault needs no data in flight) and is *not* counted in
    /// [`RunReport::shots_armed`](crate::RunReport::shots_armed) — it
    /// shows up as
    /// [`RunReport::checkers_lost`](crate::RunReport::checkers_lost)
    /// instead.
    pub fn kill_checker_at(cycle: u64) -> Self {
        FaultPlan::none().then_kill_checker_at(cycle)
    }

    /// Appends a permanent checker failure armed at `cycle` (first
    /// checker core; retarget with [`FaultPlan::on_checker`]).
    pub fn then_kill_checker_at(mut self, cycle: u64) -> Self {
        self.shots.push(FaultShot {
            at_cycle: cycle,
            channel: 0,
            kind: ShotKind::KillChecker,
        });
        self
    }

    /// Retargets the most recent kill shot at the `idx`-th checker core
    /// of the scenario (default 0). Validated at `build()`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no shots or the last shot is not a
    /// [`FaultPlan::kill_checker_at`] shot.
    pub fn on_checker(mut self, idx: usize) -> Self {
        let shot = self.shots.last_mut().expect("on_checker requires a shot");
        assert!(
            shot.kind == ShotKind::KillChecker,
            "on_checker retargets kill shots; use on_channel for injections"
        );
        shot.channel = idx;
        self
    }

    /// Retargets the most recent shot at the `channel`-th main core of
    /// the scenario (default 0). Validated at `build()`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no shots.
    pub fn on_channel(mut self, channel: usize) -> Self {
        let shot = self.shots.last_mut().expect("on_channel requires a shot");
        assert!(
            shot.kind != ShotKind::KillChecker,
            "on_channel retargets injections; use on_checker for kill shots"
        );
        shot.channel = channel;
        self
    }

    /// Widens the most recent targeted shot to an `n`-bit burst upset.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no shots or the last shot is random.
    pub fn bits(mut self, n: u32) -> Self {
        match &mut self.shots.last_mut().expect("bits requires a shot").kind {
            ShotKind::Targeted { bits, .. } => *bits = n,
            ShotKind::Random => panic!("random shots are always single-bit"),
            ShotKind::KillChecker => panic!("kill shots have no payload bits"),
        }
        self
    }

    /// Seeds the plan's RNG (bit positions, packet choice).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of scheduled shots.
    pub fn len(&self) -> usize {
        self.shots.len()
    }

    /// Whether the plan schedules no injections.
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// Highest main-channel index any injection shot targets.
    fn max_channel(&self) -> Option<usize> {
        self.shots
            .iter()
            .filter(|s| s.kind != ShotKind::KillChecker)
            .map(|s| s.channel)
            .max()
    }

    /// Highest checker index any kill shot targets.
    fn max_kill_checker(&self) -> Option<usize> {
        self.shots
            .iter()
            .filter(|s| s.kind == ShotKind::KillChecker)
            .map(|s| s.channel)
            .max()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// One fault injection that actually fired during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The main core whose stream was corrupted.
    pub main_core: usize,
    /// The corrupted packet class.
    pub target: FaultTarget,
    /// Bit indices flipped.
    pub bits: Vec<u32>,
    /// Cycle at which the flip landed (may be later than the armed
    /// cycle if the stream was empty at arming time).
    pub at_cycle: u64,
}

/// Executes a compiled fault plan against the run's fabric.
#[derive(Debug)]
pub(crate) struct FaultDriver {
    shots: Vec<FaultShot>,
    /// Next shot to fire (shots fire strictly in order).
    next: usize,
    /// Shots that could no longer land (their target stream drained for
    /// good, or the run completed before their arming cycle).
    expired: u64,
    rng: StdRng,
}

impl FaultDriver {
    pub(crate) fn new(mut plan: FaultPlan) -> Self {
        plan.shots.sort_by_key(|s| s.at_cycle);
        FaultDriver {
            rng: StdRng::seed_from_u64(plan.seed),
            shots: plan.shots,
            next: 0,
            expired: 0,
        }
    }

    /// Whether any shot is still pending.
    #[inline]
    pub(crate) fn pending(&self) -> bool {
        self.next < self.shots.len()
    }

    /// Channels (main slots) with injection shots still armed or in
    /// flight — the harness blocks the verdict memo on these streams
    /// until every shot has fired or expired. Kill shots target checker
    /// cores, not streams, so they never appear here.
    pub(crate) fn pending_channels(&self) -> impl Iterator<Item = usize> + '_ {
        self.shots[self.next..]
            .iter()
            .filter(|s| s.kind != ShotKind::KillChecker)
            .map(|s| s.channel)
    }

    /// Total injection shots scheduled by the plan (kill shots are
    /// accounted as `checkers_lost`, not armed injections).
    pub(crate) fn armed(&self) -> u64 {
        self.shots
            .iter()
            .filter(|s| s.kind != ShotKind::KillChecker)
            .count() as u64
    }

    /// Shots that expired without landing.
    pub(crate) fn expired(&self) -> u64 {
        self.expired
    }

    /// Expires every injection shot that has not fired yet — called when
    /// the run completes (all mains done, all streams drained): nothing
    /// is left to corrupt, so the remaining shots can never land.
    /// Returns the channel of each newly expired shot (for observer
    /// notification). Unfired kill shots are silently dropped: the run
    /// outlived the scheduled hard fault, so the checker simply never
    /// died.
    pub(crate) fn expire_remaining(&mut self) -> Vec<usize> {
        let channels = self.shots[self.next..]
            .iter()
            .filter(|s| s.kind != ShotKind::KillChecker)
            .map(|s| s.channel)
            .collect::<Vec<_>>();
        self.expired += channels.len() as u64;
        self.next = self.shots.len();
        channels
    }

    /// Fires every due shot whose channel has data in flight; returns
    /// the injections that landed this call, the channels of due shots
    /// that expired, and the checker indices of kill shots that fired.
    /// A due shot whose target stream can never carry data again
    /// (`expired` for its channel) is dropped so it cannot block later
    /// shots. Kill shots fire unconditionally at their cycle — a hard
    /// fault needs no data in flight.
    pub(crate) fn fire_due(
        &mut self,
        fabric: &mut crate::fabric::Fabric,
        mains: &[usize],
        expired: impl Fn(usize) -> bool,
        now: u64,
    ) -> (Vec<Injection>, Vec<usize>, Vec<usize>) {
        let mut fired = Vec::new();
        let mut expired_channels = Vec::new();
        let mut kills = Vec::new();
        while self.next < self.shots.len() {
            let shot = self.shots[self.next];
            if now < shot.at_cycle {
                break;
            }
            if shot.kind == ShotKind::KillChecker {
                kills.push(shot.channel);
                self.next += 1;
                continue;
            }
            let main = mains[shot.channel];
            if expired(shot.channel) && fabric.unit(main).fifo.is_fully_drained() {
                // The main finished and its stream drained before the
                // shot could land: nothing left to corrupt, ever.
                self.next += 1;
                self.expired += 1;
                expired_channels.push(shot.channel);
                continue;
            }
            let landed = match shot.kind {
                ShotKind::KillChecker => unreachable!("handled above"),
                ShotKind::Random => {
                    inject_random_fault(fabric, main, now, &mut self.rng).map(|r| Injection {
                        main_core: r.main_core,
                        target: r.target,
                        bits: vec![r.bit],
                        at_cycle: r.at_cycle,
                    })
                }
                ShotKind::Targeted { target, bits } => {
                    inject_targeted_fault(fabric, main, target, bits, now, &mut self.rng).map(|r| {
                        Injection {
                            main_core: r.main_core,
                            target: r.target,
                            bits: r.bits,
                            at_cycle: r.at_cycle,
                        }
                    })
                }
            };
            match landed {
                Some(injection) => {
                    fired.push(injection);
                    self.next += 1;
                }
                // Nothing in flight yet: retry on a later step.
                None => break,
            }
        }
        (fired, expired_channels, kills)
    }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// Callbacks invoked by the run loop as verification progresses.
///
/// All methods have empty defaults — implement only what you watch.
/// Observers are notification-only: they cannot perturb the run, so a
/// run with observers is bit-identical to one without.
pub trait Observer {
    /// A main core opened a checking segment.
    fn on_segment_open(&mut self, main: usize, seq: u64, cycle: u64) {
        let _ = (main, seq, cycle);
    }
    /// A main core closed a checking segment (count limit or privilege
    /// switch).
    fn on_segment_close(&mut self, main: usize, seq: u64, cycle: u64) {
        let _ = (main, seq, cycle);
    }
    /// A checker applied a segment's SCP and entered replay — the start
    /// of the checker-occupancy window that ends with the verdict
    /// ([`Observer::on_check_pass`] / [`Observer::on_check_fail`]).
    /// `main` is the core whose stream is being verified; in
    /// shared-checker topologies this attributes the busy span to the
    /// granted main.
    fn on_check_start(&mut self, checker: usize, main: usize, seq: u64, cycle: u64) {
        let _ = (checker, main, seq, cycle);
    }
    /// A checker verified a segment clean.
    fn on_check_pass(&mut self, checker: usize, result: &SegmentResult) {
        let _ = (checker, result);
    }
    /// A checker failed a segment (the matching detection event follows
    /// via [`Observer::on_detection`]).
    fn on_check_fail(&mut self, checker: usize, result: &SegmentResult) {
        let _ = (checker, result);
    }
    /// An error was detected.
    fn on_detection(&mut self, event: &DetectionEvent) {
        let _ = event;
    }
    /// A scheduled fault landed in a stream.
    fn on_fault_injected(&mut self, injection: &Injection) {
        let _ = injection;
    }
    /// An armed shot expired without landing: `main`'s stream drained
    /// for good, or the run completed before the arming cycle. Expired
    /// shots are counted in
    /// [`RunReport::shots_expired`](crate::RunReport::shots_expired)
    /// and never appear in
    /// [`RunReport::injections`](crate::RunReport::injections).
    fn on_shot_expired(&mut self, main: usize, cycle: u64) {
        let _ = (main, cycle);
    }
    /// A §III-C arbiter connected `main`'s stream to a shared checker
    /// (the initial grants fire at cycle 0, hand-overs when they
    /// happen).
    fn on_checker_granted(&mut self, checker: usize, main: usize, cycle: u64) {
        let _ = (checker, main, cycle);
    }
    /// A shared checker with a drained arbitration queue was parked (a
    /// later grant unparks it).
    fn on_checker_parked(&mut self, checker: usize, cycle: u64) {
        let _ = (checker, cycle);
    }
    /// A main core finished its program.
    fn on_main_finished(&mut self, main: usize, cycle: u64) {
        let _ = (main, cycle);
    }
    /// Rollback recovery started: `main` was rolled back to segment
    /// `seq`'s SCP boundary for re-execution
    /// ([`RecoveryPolicy::Rollback`] only).
    fn on_recovery_start(&mut self, main: usize, seq: u64, cycle: u64) {
        let _ = (main, seq, cycle);
    }
    /// Rollback recovery completed: `main` re-executed and a segment
    /// verified clean again, `latency` cycles after the detection.
    fn on_recovery_complete(&mut self, main: usize, cycle: u64, latency: u64) {
        let _ = (main, cycle, latency);
    }
    /// A checker core suffered a scheduled permanent failure
    /// ([`FaultPlan::kill_checker_at`]); its channels re-pair onto
    /// surviving checkers (watch [`Observer::on_checker_granted`]) or
    /// degrade to unchecked execution.
    fn on_checker_killed(&mut self, checker: usize, cycle: u64) {
        let _ = (checker, cycle);
    }
    /// A main released its checker by pairing policy
    /// ([`Scenario::pairing_schedule`]); the release lands on a segment
    /// boundary, and execution runs unchecked until re-acquire.
    fn on_checker_released(&mut self, main: usize, cycle: u64) {
        let _ = (main, cycle);
    }
    /// A main re-acquired checking by pairing policy (shared slots
    /// re-enter arbitration — the connection itself still arrives via
    /// [`Observer::on_checker_granted`]).
    fn on_checker_acquired(&mut self, main: usize, cycle: u64) {
        let _ = (main, cycle);
    }
}

/// Everything a [`RecordingObserver`] captures, in event order.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserverEvent {
    /// Segment opened on a main core: `(main, seq, cycle)`.
    SegmentOpen(usize, u64, u64),
    /// Segment closed on a main core: `(main, seq, cycle)`.
    SegmentClose(usize, u64, u64),
    /// Checker entered replay: `(checker, main, seq, cycle)`.
    CheckStart(usize, usize, u64, u64),
    /// Checker passed a segment: `(checker, seq, cycle)`.
    CheckPass(usize, u64, u64),
    /// Checker failed a segment: `(checker, seq, cycle)`.
    CheckFail(usize, u64, u64),
    /// Detection event.
    Detection(DetectionEvent),
    /// Fault injection landed.
    Fault(Injection),
    /// Armed shot expired without landing: `(main, cycle)`.
    ShotExpired(usize, u64),
    /// Arbiter connected a main to a shared checker:
    /// `(checker, main, cycle)`.
    CheckerGranted(usize, usize, u64),
    /// Idle shared checker parked: `(checker, cycle)`.
    CheckerParked(usize, u64),
    /// Main core finished: `(main, cycle)`.
    MainFinished(usize, u64),
    /// Rollback recovery started: `(main, seq, cycle)`.
    RecoveryStart(usize, u64, u64),
    /// Rollback recovery completed: `(main, cycle, latency_cycles)`.
    RecoveryComplete(usize, u64, u64),
    /// Checker core permanently failed: `(checker, cycle)`.
    CheckerKilled(usize, u64),
    /// Main released its checker by pairing policy: `(main, cycle)`.
    CheckerReleased(usize, u64),
    /// Main re-acquired checking by pairing policy: `(main, cycle)`.
    CheckerAcquired(usize, u64),
}

/// Aggregate counters over an observed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverSummary {
    /// Segments opened across all mains.
    pub segments_opened: u64,
    /// Segments closed across all mains.
    pub segments_closed: u64,
    /// Segments verified clean.
    pub checks_passed: u64,
    /// Segments that failed verification.
    pub checks_failed: u64,
    /// Detection events.
    pub detections: u64,
    /// Faults that landed.
    pub faults_injected: u64,
    /// Cycle of the first detection, if any (with
    /// [`ObserverSummary::first_fault_cycle`], the headline detection
    /// latency).
    pub first_detection_cycle: Option<u64>,
    /// Cycle of the first landed fault, if any.
    pub first_fault_cycle: Option<u64>,
    /// Rollback recoveries completed (detection → verified again).
    pub recoveries: u64,
    /// Checker cores permanently failed.
    pub checkers_lost: u64,
    /// Pairing-policy checker releases.
    pub checker_releases: u64,
    /// Pairing-policy checker re-acquires.
    pub checker_acquires: u64,
}

impl ObserverSummary {
    /// Detection latency in cycles from the first landed fault to the
    /// first detection, if both happened.
    pub fn detection_latency_cycles(&self) -> Option<u64> {
        match (self.first_fault_cycle, self.first_detection_cycle) {
            (Some(f), Some(d)) => Some(d.saturating_sub(f)),
            _ => None,
        }
    }

    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::JsonObject::new();
        o.field_u64("segments_opened", self.segments_opened)
            .field_u64("segments_closed", self.segments_closed)
            .field_u64("checks_passed", self.checks_passed)
            .field_u64("checks_failed", self.checks_failed)
            .field_u64("detections", self.detections)
            .field_u64("faults_injected", self.faults_injected)
            .field_u64("recoveries", self.recoveries)
            .field_u64("checkers_lost", self.checkers_lost);
        match self.detection_latency_cycles() {
            Some(l) => o.field_u64("detection_latency_cycles", l),
            None => o.field_raw("detection_latency_cycles", "null"),
        };
        o.finish()
    }
}

/// A ready-made [`Observer`] that records every event and keeps the
/// aggregate [`ObserverSummary`].
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Vec<ObserverEvent>,
    summary: ObserverSummary,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[ObserverEvent] {
        &self.events
    }

    /// The aggregate counters.
    pub fn summary(&self) -> ObserverSummary {
        self.summary
    }
}

impl Observer for RecordingObserver {
    fn on_segment_open(&mut self, main: usize, seq: u64, cycle: u64) {
        self.summary.segments_opened += 1;
        self.events
            .push(ObserverEvent::SegmentOpen(main, seq, cycle));
    }
    fn on_segment_close(&mut self, main: usize, seq: u64, cycle: u64) {
        self.summary.segments_closed += 1;
        self.events
            .push(ObserverEvent::SegmentClose(main, seq, cycle));
    }
    fn on_check_start(&mut self, checker: usize, main: usize, seq: u64, cycle: u64) {
        self.events
            .push(ObserverEvent::CheckStart(checker, main, seq, cycle));
    }
    fn on_check_pass(&mut self, checker: usize, result: &SegmentResult) {
        self.summary.checks_passed += 1;
        self.events
            .push(ObserverEvent::CheckPass(checker, result.seq, result.at));
    }
    fn on_check_fail(&mut self, checker: usize, result: &SegmentResult) {
        self.summary.checks_failed += 1;
        self.events
            .push(ObserverEvent::CheckFail(checker, result.seq, result.at));
    }
    fn on_detection(&mut self, event: &DetectionEvent) {
        self.summary.detections += 1;
        if self.summary.first_detection_cycle.is_none() {
            self.summary.first_detection_cycle = Some(event.detected_at);
        }
        self.events.push(ObserverEvent::Detection(event.clone()));
    }
    fn on_fault_injected(&mut self, injection: &Injection) {
        self.summary.faults_injected += 1;
        if self.summary.first_fault_cycle.is_none() {
            self.summary.first_fault_cycle = Some(injection.at_cycle);
        }
        self.events.push(ObserverEvent::Fault(injection.clone()));
    }
    fn on_shot_expired(&mut self, main: usize, cycle: u64) {
        self.events.push(ObserverEvent::ShotExpired(main, cycle));
    }
    fn on_checker_granted(&mut self, checker: usize, main: usize, cycle: u64) {
        self.events
            .push(ObserverEvent::CheckerGranted(checker, main, cycle));
    }
    fn on_checker_parked(&mut self, checker: usize, cycle: u64) {
        self.events
            .push(ObserverEvent::CheckerParked(checker, cycle));
    }
    fn on_main_finished(&mut self, main: usize, cycle: u64) {
        self.events.push(ObserverEvent::MainFinished(main, cycle));
    }
    fn on_recovery_start(&mut self, main: usize, seq: u64, cycle: u64) {
        self.events
            .push(ObserverEvent::RecoveryStart(main, seq, cycle));
    }
    fn on_recovery_complete(&mut self, main: usize, cycle: u64, latency: u64) {
        self.summary.recoveries += 1;
        self.events
            .push(ObserverEvent::RecoveryComplete(main, cycle, latency));
    }
    fn on_checker_killed(&mut self, checker: usize, cycle: u64) {
        self.summary.checkers_lost += 1;
        self.events
            .push(ObserverEvent::CheckerKilled(checker, cycle));
    }
    fn on_checker_released(&mut self, main: usize, cycle: u64) {
        self.summary.checker_releases += 1;
        self.events
            .push(ObserverEvent::CheckerReleased(main, cycle));
    }
    fn on_checker_acquired(&mut self, main: usize, cycle: u64) {
        self.summary.checker_acquires += 1;
        self.events
            .push(ObserverEvent::CheckerAcquired(main, cycle));
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Validation errors from [`Scenario::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The scenario has zero cores.
    NoCores,
    /// The topology yields no main cores.
    NoMains,
    /// [`Topology::PairedLockstep`] needs an even core count.
    UnpairedCores {
        /// The odd core count.
        cores: usize,
    },
    /// [`Topology::SharedChecker`] needs `1 ≤ checkers < cores`.
    BadCheckerCount {
        /// Requested checkers.
        checkers: usize,
        /// Total cores.
        cores: usize,
    },
    /// A topology references a core outside `0..cores`.
    CoreOutOfRange {
        /// The offending core.
        core: usize,
        /// Total cores.
        cores: usize,
    },
    /// A custom map lists a core as checking itself.
    SelfCheck {
        /// The offending core.
        core: usize,
    },
    /// A custom map lists the same main twice.
    DuplicateMain {
        /// The duplicated main.
        main: usize,
    },
    /// A custom map uses a core as both main and checker.
    RoleConflict {
        /// The conflicted core.
        core: usize,
    },
    /// A main in a custom map has an empty checker list.
    NoCheckersFor {
        /// The checker-less main.
        main: usize,
    },
    /// A shared checker's mains must bind to exactly that checker
    /// (arbitration hands over whole FIFOs, not sub-channels).
    SharedCheckerFanOut {
        /// The main with the extra checkers.
        main: usize,
        /// The shared checker.
        checker: usize,
    },
    /// Not enough programs for the topology's main cores.
    MissingProgram {
        /// Index of the first main slot without a program.
        main_slot: usize,
        /// Programs provided.
        programs: usize,
    },
    /// More programs than main cores.
    ExtraPrograms {
        /// Main slots available.
        mains: usize,
        /// Programs provided.
        programs: usize,
    },
    /// The fault plan targets a channel (main slot) that does not exist.
    FaultChannelOutOfRange {
        /// The offending channel.
        channel: usize,
        /// Main slots available.
        mains: usize,
    },
    /// The fault plan kills a checker index that does not exist.
    KillCheckerOutOfRange {
        /// The offending checker index.
        checker: usize,
        /// Checker cores available.
        checkers: usize,
    },
    /// A core-model override targets a main slot that does not exist.
    ModelSlotOutOfRange {
        /// The offending main slot.
        slot: usize,
        /// Main slots available.
        mains: usize,
    },
    /// A reliability-mode override targets a main slot that does not
    /// exist.
    ModeSlotOutOfRange {
        /// The offending main slot.
        slot: usize,
        /// Main slots available.
        mains: usize,
    },
    /// The pairing schedule references a main slot that does not exist.
    PairingSlotOutOfRange {
        /// The offending main slot.
        slot: usize,
        /// Main slots available.
        mains: usize,
    },
    /// The pairing schedule targets a slot running
    /// [`ReliabilityMode::Unchecked`], which has no checker channel to
    /// acquire or release.
    PairingUncheckedSlot {
        /// The offending main slot.
        slot: usize,
    },
    /// The underlying fabric rejected the configuration.
    Fabric(FlexError),
    /// The memory geometry is invalid.
    Cache(CacheGeometryError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoCores => write!(f, "scenario has zero cores"),
            ScenarioError::NoMains => write!(f, "topology yields no main cores"),
            ScenarioError::UnpairedCores { cores } => {
                write!(f, "paired-lockstep needs an even core count, got {cores}")
            }
            ScenarioError::BadCheckerCount { checkers, cores } => {
                write!(
                    f,
                    "shared-checker topology needs 1 <= checkers < cores, got {checkers} of {cores}"
                )
            }
            ScenarioError::CoreOutOfRange { core, cores } => {
                write!(f, "core {core} out of range (scenario has {cores} cores)")
            }
            ScenarioError::SelfCheck { core } => {
                write!(f, "core {core} cannot check itself")
            }
            ScenarioError::DuplicateMain { main } => {
                write!(f, "main {main} listed twice in the custom map")
            }
            ScenarioError::RoleConflict { core } => {
                write!(f, "core {core} used as both main and checker")
            }
            ScenarioError::NoCheckersFor { main } => {
                write!(f, "main {main} has an empty checker list")
            }
            ScenarioError::SharedCheckerFanOut { main, checker } => {
                write!(
                    f,
                    "main {main} shares checker {checker} but lists other checkers; \
                     a shared checker must be its main's only checker"
                )
            }
            ScenarioError::MissingProgram {
                main_slot,
                programs,
            } => {
                write!(
                    f,
                    "main slot {main_slot} has no program ({programs} provided); \
                     add one with Scenario::program"
                )
            }
            ScenarioError::ExtraPrograms { mains, programs } => {
                write!(f, "{programs} programs for {mains} main core(s)")
            }
            ScenarioError::FaultChannelOutOfRange { channel, mains } => {
                write!(
                    f,
                    "fault plan targets channel {channel}, scenario has {mains} main core(s)"
                )
            }
            ScenarioError::KillCheckerOutOfRange { checker, checkers } => {
                write!(
                    f,
                    "fault plan kills checker {checker}, scenario has {checkers} checker core(s)"
                )
            }
            ScenarioError::ModelSlotOutOfRange { slot, mains } => {
                write!(
                    f,
                    "core-model override targets main slot {slot}, scenario has {mains} main core(s)"
                )
            }
            ScenarioError::ModeSlotOutOfRange { slot, mains } => {
                write!(
                    f,
                    "reliability-mode override targets main slot {slot}, \
                     scenario has {mains} main core(s)"
                )
            }
            ScenarioError::PairingSlotOutOfRange { slot, mains } => {
                write!(
                    f,
                    "pairing schedule targets main slot {slot}, \
                     scenario has {mains} main core(s)"
                )
            }
            ScenarioError::PairingUncheckedSlot { slot } => {
                write!(
                    f,
                    "pairing schedule targets main slot {slot}, which runs \
                     unchecked and has no checker channel"
                )
            }
            ScenarioError::Fabric(e) => write!(f, "fabric: {e}"),
            ScenarioError::Cache(e) => write!(f, "memory geometry: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<FlexError> for ScenarioError {
    fn from(e: FlexError) -> Self {
        ScenarioError::Fabric(e)
    }
}

impl From<CacheGeometryError> for ScenarioError {
    fn from(e: CacheGeometryError) -> Self {
        ScenarioError::Cache(e)
    }
}

// ---------------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------------

/// Resolved topology, shared between `build` and `VerifiedRun`.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedTopology {
    /// Main cores, in channel order.
    pub mains: Vec<usize>,
    /// Checker cores, ascending.
    pub checkers: Vec<usize>,
    /// Per main (same order as `mains`): dedicated checkers, or the
    /// shared checker it competes for.
    pub binding: Vec<Binding>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Binding {
    /// Dedicated channel to these checkers (1:1, 1:2, …).
    Dedicated(Vec<usize>),
    /// Arbitrated access to this shared checker.
    Shared(usize),
}

/// A declarative description of one FlexStep experiment; `build()` turns
/// it into a ready-to-run [`VerifiedRun`].
///
/// See the [module documentation](self) for a worked example.
pub struct Scenario {
    programs: Vec<Program>,
    cores: Option<usize>,
    topology: Topology,
    fabric: FabricConfig,
    sched_mode: Option<SchedMode>,
    fault_plan: FaultPlan,
    recovery: RecoveryPolicy,
    observers: Vec<Box<dyn Observer + Send>>,
    /// Chrome-trace export: `(path, ring capacity)`; `None` capacity =
    /// unbounded.
    trace: Option<(std::path::PathBuf, Option<usize>)>,
    /// Record every observer event into an owned
    /// [`EventBuffer`](crate::sink::EventBuffer) for post-run replay.
    record_events: bool,
    /// Per-main-slot timing-model overrides (default: in-order scalar);
    /// `None` slot = every main.
    core_models: Vec<(Option<usize>, CoreModelKind)>,
    /// Per-main-slot reliability-mode overrides (default:
    /// [`ReliabilityMode::SegmentCheck`]); `None` slot = every main.
    reliability_modes: Vec<(Option<usize>, ReliabilityMode)>,
    /// Criticality-driven checker acquire/release timeline.
    pairing: Option<PairingSchedule>,
    /// Force per-mode accounting on even for all-`SegmentCheck` runs
    /// (which otherwise stay untracked so their reports match pre-mode
    /// bytes).
    track_reliability: bool,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("programs", &self.programs.len())
            .field("cores", &self.cores)
            .field("topology", &self.topology)
            .field("fabric", &self.fabric)
            .field("sched_mode", &self.sched_mode)
            .field("fault_plan", &self.fault_plan)
            .field("recovery", &self.recovery)
            .field("observers", &self.observers.len())
            .field("trace", &self.trace)
            .field("record_events", &self.record_events)
            .field("core_models", &self.core_models)
            .field("reliability_modes", &self.reliability_modes)
            .field("pairing", &self.pairing)
            .field("track_reliability", &self.track_reliability)
            .finish()
    }
}

impl Scenario {
    /// Starts a scenario running `program` on the first main core.
    pub fn new(program: &Program) -> Self {
        Scenario {
            programs: vec![program.clone()],
            cores: None,
            topology: Topology::default(),
            fabric: FabricConfig::paper(),
            sched_mode: None,
            fault_plan: FaultPlan::none(),
            recovery: RecoveryPolicy::Detect,
            observers: Vec::new(),
            trace: None,
            record_events: false,
            core_models: Vec::new(),
            reliability_modes: Vec::new(),
            pairing: None,
            track_reliability: false,
        }
    }

    /// Adds a program for the next main core (multi-main topologies).
    /// Programs bind to main cores in channel order; they must use
    /// disjoint text/data windows (build them with
    /// [`Assembler::with_bases`](flexstep_isa::asm::Assembler::with_bases)).
    pub fn program(mut self, program: &Program) -> Self {
        self.programs.push(program.clone());
        self
    }

    /// Sets the total core count. Defaults to the smallest count the
    /// topology and program list imply.
    pub fn cores(mut self, n: usize) -> Self {
        self.cores = Some(n);
        self
    }

    /// Sets the main/checker topology (default
    /// [`Topology::PairedLockstep`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the fabric configuration (default
    /// [`FabricConfig::paper`]).
    pub fn fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Overrides the timing model of one main core, addressed by its
    /// slot (channel) index. Heterogeneous SoCs mix models freely: an
    /// OoO superscalar main can be checked by in-order checkers, whose
    /// replay consumes the main's forwarded branch outcomes instead of
    /// predicting (see [`CoreModelKind::forwards_branch_outcomes`]).
    /// Checker cores always stay in-order — sizing a checker *tier*
    /// means assigning more mains per checker, not widening the
    /// checker (§IV of the paper keeps checkers minimal).
    pub fn core_model(mut self, slot: usize, kind: CoreModelKind) -> Self {
        self.core_models.push((Some(slot), kind));
        self
    }

    /// Applies `kind` to every main core — the common case for
    /// homogeneous Fig. 8-style sweeps over one model. Later
    /// [`Scenario::core_model`] calls still override individual slots.
    pub fn main_core_model(mut self, kind: CoreModelKind) -> Self {
        self.core_models.push((None, kind));
        self
    }

    /// Overrides the reliability mode of one main core, addressed by
    /// its slot (channel) index (default
    /// [`ReliabilityMode::SegmentCheck`], today's behavior). Modes fix
    /// the checkpoint granularity the slot runs at — see
    /// [`ReliabilityMode`] for the latency/overhead trade — and
    /// compose freely with topologies, core models, memoization and
    /// recovery.
    pub fn reliability_mode(mut self, slot: usize, mode: ReliabilityMode) -> Self {
        self.reliability_modes.push((Some(slot), mode));
        self
    }

    /// Applies `mode` to every main core — the common case for the
    /// `fig9_modes` sweep. Later [`Scenario::reliability_mode`] calls
    /// still override individual slots.
    pub fn main_reliability_mode(mut self, mode: ReliabilityMode) -> Self {
        self.reliability_modes.push((None, mode));
        self
    }

    /// Installs a criticality-driven [`PairingSchedule`]: main slots
    /// release their checkers and re-acquire them mid-run at the
    /// scheduled cycles (releases land on the next segment boundary).
    /// Shared checkers return to the arbiter pool while released;
    /// dedicated checkers simply drain and idle.
    pub fn pairing_schedule(mut self, schedule: PairingSchedule) -> Self {
        self.pairing = Some(schedule);
        self
    }

    /// Forces per-mode accounting
    /// ([`RunReport::mode_stats`](crate::RunReport)) on. Accounting is
    /// automatic whenever any slot leaves
    /// [`ReliabilityMode::SegmentCheck`] or a pairing schedule is
    /// installed; all-`SegmentCheck` runs keep it off so their reports
    /// stay byte-identical to pre-mode artifacts — this opt-in is for
    /// sweeps (`fig9_modes`) that want the baseline row accounted too.
    pub fn track_reliability(mut self) -> Self {
        self.track_reliability = true;
        self
    }

    /// Enables or disables segment-verdict memoization (default: on,
    /// via [`FabricConfig::paper`]). Memoization never changes results —
    /// a memo hit replays the cached per-step timing profile, so reports
    /// are bit-identical either way; `memo(false)` exists for A/B
    /// benchmarking and paranoia runs.
    pub fn memo(mut self, enable: bool) -> Self {
        if enable {
            if self.fabric.memo_capacity == 0 {
                self.fabric.memo_capacity = crate::memo::DEFAULT_MEMO_CAPACITY;
            }
        } else {
            self.fabric.memo_capacity = 0;
        }
        self
    }

    /// Bounds the per-checker verdict cache to `entries` (0 disables,
    /// like `memo(false)`).
    pub fn memo_capacity(mut self, entries: usize) -> Self {
        self.fabric.memo_capacity = entries;
        self
    }

    /// Forces a ready-core scheduler (default: the SoC's adaptive
    /// choice; see [`SchedMode`]). Both modes are bit-identical.
    pub fn sched_mode(mut self, mode: SchedMode) -> Self {
        self.sched_mode = Some(mode);
        self
    }

    /// Schedules fault injections (default: none).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the detection response (default [`RecoveryPolicy::Detect`]).
    /// [`RecoveryPolicy::Rollback`] turns detections into rollback
    /// re-executions from the last verified segment boundary.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Attaches an observer; may be called repeatedly.
    ///
    /// Observers must be `Send` — the bound that keeps the built
    /// [`VerifiedRun`] `Send`, so runs can execute on worker threads.
    /// For the old `Rc<RefCell<_>>` shared-handle pattern (inspecting
    /// the observer after the run), use [`Scenario::record_events`] and
    /// [`VerifiedRun::replay_events`](crate::VerifiedRun::replay_events)
    /// instead.
    pub fn observer(mut self, observer: impl Observer + Send + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Records every observer event into an owned
    /// [`EventBuffer`](crate::sink::EventBuffer) the run keeps; read it
    /// back after the run with
    /// [`VerifiedRun::events`](crate::VerifiedRun::events) or replay it
    /// into any observer with
    /// [`VerifiedRun::replay_events`](crate::VerifiedRun::replay_events).
    /// This is the `Send`-able replacement for attaching an
    /// `Rc<RefCell<_>>` shared handle.
    pub fn record_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Records the schedule as Chrome `trace_event` JSON (see
    /// [`trace`](crate::trace)) and remembers `path`;
    /// [`VerifiedRun::write_trace`](crate::VerifiedRun::write_trace)
    /// writes the file after the run. Unbounded — every event is kept;
    /// for long campaigns use [`Scenario::trace_to_bounded`].
    pub fn trace_to(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace = Some((path.into(), None));
        self
    }

    /// Like [`Scenario::trace_to`], but keeps only the newest
    /// `capacity` events (a ring), so arbitrarily long campaigns
    /// produce bounded files.
    /// [`DEFAULT_RING_CAPACITY`](crate::trace::DEFAULT_RING_CAPACITY)
    /// is the binaries' default.
    pub fn trace_to_bounded(
        mut self,
        path: impl Into<std::path::PathBuf>,
        capacity: usize,
    ) -> Self {
        self.trace = Some((path.into(), Some(capacity)));
        self
    }

    /// Default core count implied by the topology and program list.
    fn default_cores(&self) -> usize {
        match &self.topology {
            Topology::PairedLockstep => 2 * self.programs.len(),
            Topology::SharedChecker { checkers } => self.programs.len() + checkers,
            Topology::Custom(map) => map
                .iter()
                .flat_map(|(m, cs)| std::iter::once(*m).chain(cs.iter().copied()))
                .max()
                .map_or(0, |c| c + 1),
        }
    }

    /// Resolves the topology into explicit main/checker bindings.
    fn resolve(&self, cores: usize) -> Result<ResolvedTopology, ScenarioError> {
        match &self.topology {
            Topology::PairedLockstep => {
                if !cores.is_multiple_of(2) {
                    return Err(ScenarioError::UnpairedCores { cores });
                }
                let mains: Vec<usize> = (0..cores).step_by(2).collect();
                let checkers: Vec<usize> = (0..cores).skip(1).step_by(2).collect();
                let binding = mains
                    .iter()
                    .map(|&m| Binding::Dedicated(vec![m + 1]))
                    .collect();
                Ok(ResolvedTopology {
                    mains,
                    checkers,
                    binding,
                })
            }
            Topology::SharedChecker { checkers } => {
                let c = *checkers;
                if c == 0 || c >= cores {
                    return Err(ScenarioError::BadCheckerCount { checkers: c, cores });
                }
                let num_mains = cores - c;
                let mains: Vec<usize> = (0..num_mains).collect();
                let checker_ids: Vec<usize> = (num_mains..cores).collect();
                let binding = mains
                    .iter()
                    .map(|&m| Binding::Shared(num_mains + (m % c)))
                    .collect();
                Ok(ResolvedTopology {
                    mains,
                    checkers: checker_ids,
                    binding,
                })
            }
            Topology::Custom(map) => {
                let mut mains = Vec::new();
                let mut checkers: Vec<usize> = Vec::new();
                // How many mains list each checker.
                let mut users: Vec<Vec<usize>> = vec![Vec::new(); cores];
                for (main, cs) in map {
                    if *main >= cores {
                        return Err(ScenarioError::CoreOutOfRange { core: *main, cores });
                    }
                    if mains.contains(main) {
                        return Err(ScenarioError::DuplicateMain { main: *main });
                    }
                    if cs.is_empty() {
                        return Err(ScenarioError::NoCheckersFor { main: *main });
                    }
                    for &ch in cs {
                        if ch >= cores {
                            return Err(ScenarioError::CoreOutOfRange { core: ch, cores });
                        }
                        if ch == *main {
                            return Err(ScenarioError::SelfCheck { core: ch });
                        }
                        if !checkers.contains(&ch) {
                            checkers.push(ch);
                        }
                        users[ch].push(*main);
                    }
                    mains.push(*main);
                }
                for &m in &mains {
                    if checkers.contains(&m) {
                        return Err(ScenarioError::RoleConflict { core: m });
                    }
                }
                // Bindings: shared checkers must be exclusive on their
                // mains' side.
                let mut binding = Vec::with_capacity(mains.len());
                for (main, cs) in map {
                    let shared = cs.iter().find(|&&ch| users[ch].len() > 1);
                    match shared {
                        Some(&ch) if cs.len() > 1 => {
                            return Err(ScenarioError::SharedCheckerFanOut {
                                main: *main,
                                checker: ch,
                            });
                        }
                        Some(&ch) => binding.push(Binding::Shared(ch)),
                        None => binding.push(Binding::Dedicated(cs.clone())),
                    }
                }
                checkers.sort_unstable();
                Ok(ResolvedTopology {
                    mains,
                    checkers,
                    binding,
                })
            }
        }
    }

    /// Validates the scenario and builds the platform.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first violated
    /// constraint; never panics on bad configuration.
    pub fn build(mut self) -> Result<VerifiedRun, ScenarioError> {
        // A configured trace is an owned event sink the run dispatches
        // into directly, plus the path `write_trace` targets — no
        // shared handle, so the built run stays `Send`.
        let trace = self.trace.take().map(|(path, capacity)| {
            let observer = match capacity {
                Some(n) => crate::trace::TraceObserver::bounded(n),
                None => crate::trace::TraceObserver::new(),
            };
            (path, observer)
        });
        let cores = self.cores.unwrap_or_else(|| self.default_cores());
        if cores == 0 {
            return Err(ScenarioError::NoCores);
        }
        let resolved = self.resolve(cores)?;
        if resolved.mains.is_empty() {
            return Err(ScenarioError::NoMains);
        }
        if self.programs.len() < resolved.mains.len() {
            return Err(ScenarioError::MissingProgram {
                main_slot: self.programs.len(),
                programs: self.programs.len(),
            });
        }
        if self.programs.len() > resolved.mains.len() {
            return Err(ScenarioError::ExtraPrograms {
                mains: resolved.mains.len(),
                programs: self.programs.len(),
            });
        }
        if let Some(ch) = self.fault_plan.max_channel() {
            if ch >= resolved.mains.len() {
                return Err(ScenarioError::FaultChannelOutOfRange {
                    channel: ch,
                    mains: resolved.mains.len(),
                });
            }
        }
        if let Some(idx) = self.fault_plan.max_kill_checker() {
            if idx >= resolved.checkers.len() {
                return Err(ScenarioError::KillCheckerOutOfRange {
                    checker: idx,
                    checkers: resolved.checkers.len(),
                });
            }
        }
        // Flatten the model overrides into one kind per main slot;
        // later calls win, `main_core_model` (None) fans out to all.
        let mut models = vec![CoreModelKind::InOrder; resolved.mains.len()];
        for (slot, kind) in &self.core_models {
            match slot {
                Some(s) => {
                    if *s >= models.len() {
                        return Err(ScenarioError::ModelSlotOutOfRange {
                            slot: *s,
                            mains: models.len(),
                        });
                    }
                    models[*s] = *kind;
                }
                None => models.fill(*kind),
            }
        }
        // Same flattening for the reliability modes.
        let mut modes = vec![ReliabilityMode::SegmentCheck; resolved.mains.len()];
        for (slot, mode) in &self.reliability_modes {
            match slot {
                Some(s) => {
                    if *s >= modes.len() {
                        return Err(ScenarioError::ModeSlotOutOfRange {
                            slot: *s,
                            mains: modes.len(),
                        });
                    }
                    modes[*s] = *mode;
                }
                None => modes.fill(*mode),
            }
        }
        if let Some(pairing) = &self.pairing {
            if let Some(slot) = pairing.max_slot() {
                if slot >= resolved.mains.len() {
                    return Err(ScenarioError::PairingSlotOutOfRange {
                        slot,
                        mains: resolved.mains.len(),
                    });
                }
            }
            for event in pairing.events() {
                if !modes[event.slot].is_checked() {
                    return Err(ScenarioError::PairingUncheckedSlot { slot: event.slot });
                }
            }
        }
        VerifiedRun::from_scenario(
            cores,
            resolved,
            self.programs,
            self.fabric,
            self.sched_mode,
            self.fault_plan,
            self.recovery,
            self.observers,
            trace,
            self.record_events,
            models,
            modes,
            self.pairing,
            self.track_reliability,
        )
    }
}
