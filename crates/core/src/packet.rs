//! Packets flowing through the Data Buffering and Channelling units.
//!
//! For each checking segment the main core emits, in order: an **SCP**
//! (start register checkpoint), the **memory-access log entries**, the
//! **instruction count** and the **ECP** (end register checkpoint) —
//! exactly the stream of Fig. 3 of the paper. LR/SC/AMO instructions are
//! packaged as *two* entries to keep the entry width fixed (§III-B).

use flexstep_sim::{ArchSnapshot, MemAccess, MemAccessKind};
use std::fmt;

/// A register checkpoint in flight (SCP or ECP payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// The captured architectural state; `pc` is the address of the next
    /// instruction of the segment (SCP) or the first unexecuted
    /// instruction (ECP).
    pub snapshot: ArchSnapshot,
    /// Monotonic segment sequence number on this main core.
    pub seq: u64,
    /// Stream tag attributed by the OS (task identifier); lets one checker
    /// verify segments of different tasks arriving on the same channel.
    pub tag: u64,
}

/// One memory-access log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Entry kind.
    pub kind: LogKind,
    /// Effective address (zero for the supplementary µop entries).
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Payload: load data, store data, AMO old value, or SC result.
    pub data: u64,
}

/// Kind of a memory-access log entry.
///
/// LR, SC and AMO produce a *pair* of entries (`§III-B`: "instructions
/// with multiple memory micro-operations ... are packaged into multiple
/// entries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogKind {
    /// Load: `data` is the loaded value (input to replay).
    Load,
    /// Store: `data` is the stored value (verified by the checker).
    Store,
    /// Load-reserved: `data` is the loaded value.
    Lr,
    /// First SC µop: address and attempted store data.
    ScAddrData,
    /// Second SC µop: `data` is 0 (failed) or 1 (succeeded).
    ScResult,
    /// First AMO µop: address and the value stored by the AMO.
    AmoAddrData,
    /// Second AMO µop: `data` is the old (loaded) value.
    AmoLoad,
}

impl fmt::Display for LogKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogKind::Load => "load",
            LogKind::Store => "store",
            LogKind::Lr => "lr",
            LogKind::ScAddrData => "sc.addr",
            LogKind::ScResult => "sc.result",
            LogKind::AmoAddrData => "amo.addr",
            LogKind::AmoLoad => "amo.load",
        };
        f.write_str(s)
    }
}

/// Builds the log entries for a retired memory access.
///
/// Regular loads/stores produce one entry; LR produces one; SC and AMO
/// produce two.
pub fn log_entries(access: &MemAccess) -> (LogEntry, Option<LogEntry>) {
    match access.kind {
        MemAccessKind::Load => (
            LogEntry {
                kind: LogKind::Load,
                addr: access.addr,
                size: access.size,
                data: access.data,
            },
            None,
        ),
        MemAccessKind::Store => (
            LogEntry {
                kind: LogKind::Store,
                addr: access.addr,
                size: access.size,
                data: access.data,
            },
            None,
        ),
        MemAccessKind::Lr => (
            LogEntry {
                kind: LogKind::Lr,
                addr: access.addr,
                size: access.size,
                data: access.data,
            },
            None,
        ),
        MemAccessKind::Sc { success } => (
            LogEntry {
                kind: LogKind::ScAddrData,
                addr: access.addr,
                size: access.size,
                data: access.data,
            },
            Some(LogEntry {
                kind: LogKind::ScResult,
                addr: 0,
                size: access.size,
                data: u64::from(success),
            }),
        ),
        MemAccessKind::Amo { loaded } => (
            LogEntry {
                kind: LogKind::AmoAddrData,
                addr: access.addr,
                size: access.size,
                data: access.data,
            },
            Some(LogEntry {
                kind: LogKind::AmoLoad,
                addr: 0,
                size: access.size,
                data: loaded,
            }),
        ),
    }
}

/// A packet in a Data Buffer FIFO.
///
/// Checkpoint payloads are boxed: an [`ArchSnapshot`] is >0.5 KiB, and
/// `Packet` values cross the public API boundary (`pop`,
/// `drain_segment`, burst pushes), so the enum itself stays a few words
/// and moving a packet never copies a checkpoint-sized value. The
/// in-FIFO storage is unaffected — the DBC keeps checkpoint payloads
/// out of line in its own ring either way.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Start register checkpoint: opens a segment.
    Scp(Box<Checkpoint>),
    /// A memory-access log entry.
    Mem(LogEntry),
    /// A forwarded branch outcome — the architectural `next_pc` of one
    /// retired control-flow instruction. Only out-of-order mains emit
    /// these (MEEK-style outcome forwarding); the checker consumes them
    /// in retirement order instead of re-predicting control flow.
    Branch(u64),
    /// The segment's user-mode instruction count.
    InstCount(u64),
    /// End register checkpoint: closes a segment.
    Ecp(Box<Checkpoint>),
}

impl Packet {
    /// Builds an SCP packet, boxing the checkpoint payload.
    pub fn scp(cp: Checkpoint) -> Self {
        Packet::Scp(Box::new(cp))
    }

    /// Builds an ECP packet, boxing the checkpoint payload.
    pub fn ecp(cp: Checkpoint) -> Self {
        Packet::Ecp(Box::new(cp))
    }

    /// Occupancy of this packet in the FIFO, in bytes. Checkpoints carry
    /// the full snapshot plus the pc/seq header; entries carry
    /// address + data words.
    pub fn bytes(&self) -> usize {
        match self {
            Packet::Scp(_) | Packet::Ecp(_) => ArchSnapshot::BYTES + 8,
            Packet::Mem(e) => entry_bytes(e),
            Packet::Branch(_) | Packet::InstCount(_) => 8,
        }
    }

    /// Whether this packet is a checkpoint (SCP or ECP).
    pub fn is_checkpoint(&self) -> bool {
        matches!(self, Packet::Scp(_) | Packet::Ecp(_))
    }
}

/// FIFO occupancy of one memory-access log entry, in bytes.
#[inline]
pub(crate) fn entry_bytes(e: &LogEntry) -> usize {
    match e.kind {
        LogKind::ScResult | LogKind::AmoLoad => 8,
        _ => 16,
    }
}

/// A borrowed view of a buffered packet.
///
/// [`Packet`] is dominated by its checkpoint variants (an
/// [`ArchSnapshot`] is >0.5 KiB), so the replay hot path never moves
/// packets around — the FIFO hands out this view and consumers copy at
/// most the small payload they need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketRef<'a> {
    /// Start register checkpoint.
    Scp(&'a Checkpoint),
    /// A memory-access log entry.
    Mem(&'a LogEntry),
    /// A forwarded branch outcome (`next_pc`).
    Branch(u64),
    /// The segment's user-mode instruction count.
    InstCount(u64),
    /// End register checkpoint.
    Ecp(&'a Checkpoint),
}

impl PacketRef<'_> {
    /// Materialises the packet (copies the checkpoint payload into a
    /// fresh box — test and tooling convenience, not for the hot path).
    pub fn to_packet(&self) -> Packet {
        match *self {
            PacketRef::Scp(cp) => Packet::scp(*cp),
            PacketRef::Mem(e) => Packet::Mem(*e),
            PacketRef::Branch(pc) => Packet::Branch(pc),
            PacketRef::InstCount(v) => Packet::InstCount(v),
            PacketRef::Ecp(cp) => Packet::ecp(*cp),
        }
    }
}

/// One mixing round of the segment fingerprint hash (the splitmix64
/// finaliser over an accumulator): folds the 64-bit word `v` into `h`.
/// Order-sensitive and full-avalanche, so any single-bit change anywhere
/// in a packet stream flips about half the final fingerprint bits.
#[inline]
pub(crate) fn hash_mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seed of the segment fingerprint hash (the FNV-1a offset basis, an
/// arbitrary non-zero constant).
pub(crate) const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds an [`ArchSnapshot`]'s architectural payload — pc, both register
/// files and `fcsr`, 66 words in the checkpoint layout — into `h`.
///
/// Deliberately *not* a [`Checkpoint`] hash: the wrapping `seq` and `tag`
/// are bookkeeping that differ on every segment, and a fingerprint that
/// included them could never match a recurring segment.
pub(crate) fn hash_snapshot(mut h: u64, s: &ArchSnapshot) -> u64 {
    h = hash_mix(h, s.pc);
    for w in s.xregs {
        h = hash_mix(h, w);
    }
    for w in s.fregs {
        h = hash_mix(h, w);
    }
    hash_mix(h, s.fcsr)
}

/// Generation-indexed handle to a checkpoint payload in a [`CpSlab`].
///
/// A handle is only valid while the slab slot's generation matches: once
/// the payload is freed (segment consumed, skipped or reset) the slot's
/// generation is bumped, so a stale handle can never silently read a
/// recycled slot — [`CpSlab::get`] returns `None` and the freeing paths
/// panic on a double free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CpHandle {
    idx: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct CpSlot {
    gen: u32,
    cp: Option<Checkpoint>,
}

/// Slab allocator for out-of-line checkpoint payloads (>0.5 KiB each).
///
/// The DBC keeps its in-order queue small by storing [`Checkpoint`]s here
/// and threading [`CpHandle`]s through the stream slots. Freed slots go
/// on a free list and are recycled in LIFO order; the generation check
/// turns any use-after-free into a loud failure instead of silently
/// serving another segment's checkpoint.
#[derive(Debug, Clone, Default)]
pub(crate) struct CpSlab {
    slots: Vec<CpSlot>,
    free: Vec<u32>,
}

impl CpSlab {
    /// Stores `cp`, recycling a freed slot when one is available.
    pub(crate) fn alloc(&mut self, cp: Checkpoint) -> CpHandle {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.cp.is_none(), "free-listed slot must be empty");
            slot.cp = Some(cp);
            CpHandle { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab index fits u32");
            self.slots.push(CpSlot {
                gen: 0,
                cp: Some(cp),
            });
            CpHandle { idx, gen: 0 }
        }
    }

    /// Resolves a handle; `None` if it was freed (stale generation).
    pub(crate) fn get(&self, h: CpHandle) -> Option<&Checkpoint> {
        let slot = self.slots.get(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.cp.as_ref()
    }

    /// Mutable companion of [`CpSlab::get`].
    pub(crate) fn get_mut(&mut self, h: CpHandle) -> Option<&mut Checkpoint> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        slot.cp.as_mut()
    }

    /// Frees the payload behind `h`, returning it and invalidating every
    /// outstanding copy of the handle.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale — a double free is a datapath bug, never
    /// a recoverable condition.
    pub(crate) fn free(&mut self, h: CpHandle) -> Checkpoint {
        let slot = &mut self.slots[h.idx as usize];
        assert_eq!(slot.gen, h.gen, "checkpoint handle used after free");
        let cp = slot.cp.take().expect("checkpoint handle used after free");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        cp
    }

    /// Frees every live payload (FIFO reset), invalidating all handles.
    pub(crate) fn clear(&mut self) {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.cp.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(idx as u32);
            }
        }
    }

    /// Number of live payloads.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A mutable view of a buffered packet (fault injection into in-flight
/// data).
#[derive(Debug)]
pub enum PacketMut<'a> {
    /// Start register checkpoint.
    Scp(&'a mut Checkpoint),
    /// A memory-access log entry.
    Mem(&'a mut LogEntry),
    /// A forwarded branch outcome (`next_pc`).
    Branch(&'a mut u64),
    /// The segment's user-mode instruction count.
    InstCount(&'a mut u64),
    /// End register checkpoint.
    Ecp(&'a mut Checkpoint),
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_sim::ArchState;

    fn snap() -> ArchSnapshot {
        ArchState::new(0).snapshot()
    }

    #[test]
    fn simple_accesses_make_one_entry() {
        let a = MemAccess {
            kind: MemAccessKind::Load,
            addr: 0x100,
            size: 8,
            data: 7,
        };
        let (e, extra) = log_entries(&a);
        assert_eq!(e.kind, LogKind::Load);
        assert_eq!(e.data, 7);
        assert!(extra.is_none());
        let a = MemAccess {
            kind: MemAccessKind::Store,
            addr: 0x100,
            size: 4,
            data: 9,
        };
        let (e, extra) = log_entries(&a);
        assert_eq!(e.kind, LogKind::Store);
        assert!(extra.is_none());
    }

    #[test]
    fn sc_packs_two_entries() {
        let a = MemAccess {
            kind: MemAccessKind::Sc { success: true },
            addr: 0x80,
            size: 8,
            data: 5,
        };
        let (e, extra) = log_entries(&a);
        assert_eq!(e.kind, LogKind::ScAddrData);
        assert_eq!(e.data, 5);
        let extra = extra.unwrap();
        assert_eq!(extra.kind, LogKind::ScResult);
        assert_eq!(extra.data, 1);
    }

    #[test]
    fn amo_packs_two_entries() {
        let a = MemAccess {
            kind: MemAccessKind::Amo { loaded: 10 },
            addr: 0x80,
            size: 8,
            data: 13,
        };
        let (e, extra) = log_entries(&a);
        assert_eq!(e.kind, LogKind::AmoAddrData);
        assert_eq!(e.data, 13, "first µop carries stored value");
        let extra = extra.unwrap();
        assert_eq!(extra.kind, LogKind::AmoLoad);
        assert_eq!(extra.data, 10, "second µop carries loaded value");
    }

    #[test]
    fn packet_sizes_reflect_multi_uop_packaging() {
        let full = Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0,
            size: 8,
            data: 0,
        });
        let half = Packet::Mem(LogEntry {
            kind: LogKind::ScResult,
            addr: 0,
            size: 8,
            data: 1,
        });
        assert_eq!(full.bytes(), 16);
        assert_eq!(half.bytes(), 8, "supplementary µop entries are half-width");
        let cp = Packet::scp(Checkpoint {
            snapshot: snap(),
            seq: 0,
            tag: 0,
        });
        assert_eq!(cp.bytes(), ArchSnapshot::BYTES + 8);
        assert!(cp.is_checkpoint());
        assert_eq!(Packet::InstCount(5).bytes(), 8);
    }

    #[test]
    fn slab_recycles_slots_under_fresh_generations() {
        let mut slab = CpSlab::default();
        let cp = |n: u64| Checkpoint {
            snapshot: ArchState::new(n).snapshot(),
            seq: n,
            tag: 0,
        };
        let a = slab.alloc(cp(1));
        let b = slab.alloc(cp(2));
        assert_eq!(slab.get(a).unwrap().seq, 1);
        assert_eq!(slab.free(a).seq, 1);
        assert_eq!(slab.live(), 1);
        // The freed slot is recycled, but under a new generation: the
        // stale handle keeps resolving to None, not to the new payload.
        let c = slab.alloc(cp(3));
        assert_eq!(slab.live(), 2);
        assert!(slab.get(a).is_none(), "stale handle must not resolve");
        assert_eq!(slab.get(c).unwrap().seq, 3);
        assert_eq!(slab.get(b).unwrap().seq, 2);
    }

    #[test]
    #[should_panic(expected = "used after free")]
    fn slab_double_free_panics() {
        let mut slab = CpSlab::default();
        let h = slab.alloc(Checkpoint {
            snapshot: snap(),
            seq: 0,
            tag: 0,
        });
        slab.free(h);
        slab.free(h);
    }

    #[test]
    fn snapshot_hash_ignores_seq_and_tag_but_sees_state() {
        let s1 = ArchState::new(1).snapshot();
        let mut s2 = s1;
        let h = hash_snapshot(HASH_SEED, &s1);
        assert_eq!(h, hash_snapshot(HASH_SEED, &s2), "pure function");
        s2.xregs[5] ^= 1;
        assert_ne!(h, hash_snapshot(HASH_SEED, &s2), "single bit flips hash");
    }

    #[test]
    fn packet_enum_is_small_at_the_api_boundary() {
        // The checkpoint payload is boxed precisely so API-boundary
        // moves (pop, drain_segment, burst slices) never copy an
        // ArchSnapshot-sized value.
        assert!(
            std::mem::size_of::<Packet>() <= 32,
            "Packet must stay a few words: {} bytes",
            std::mem::size_of::<Packet>()
        );
        assert!(std::mem::size_of::<Packet>() < ArchSnapshot::BYTES);
    }
}
