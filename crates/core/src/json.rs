//! A minimal hand-rolled JSON writer.
//!
//! The experiment binaries (`perf_report`, `fig8`) and the run reports
//! emit machine-readable artifacts; the build image has no registry
//! access for `serde`, so this module provides the small, allocation-
//! light subset they need: objects, arrays, strings with escaping, and
//! numbers. Output is deterministic (insertion order preserved).

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form.
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".into()
    }
}

/// An incremental JSON object writer.
///
/// ```
/// use flexstep_core::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("name", "fig8");
/// o.field_u64("cores", 16);
/// o.field_raw("nested", "{\"ok\": true}");
/// assert_eq!(o.finish(), r#"{"name": "fig8", "cores": 16, "nested": {"ok": true}}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push_str(", ");
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\": ", escape(key));
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds an array of pre-rendered JSON values.
    pub fn field_array<I>(&mut self, key: &str, values: I) -> &mut Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            self.buf.push_str(v.as_ref());
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders an array of JSON numbers (see [`number`] for formatting —
/// non-finite values become `null`). The campaign artifacts use this
/// for latency series and histogram buckets.
pub fn numbers(values: impl IntoIterator<Item = f64>) -> String {
    array(values.into_iter().map(number))
}

/// Renders an array of JSON unsigned integers.
pub fn numbers_u64(values: impl IntoIterator<Item = u64>) -> String {
    array(values.into_iter().map(|v| v.to_string()))
}

/// Renders an array of pre-rendered JSON values.
pub fn array<I>(values: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push_str(", ");
        }
        buf.push_str(v.as_ref());
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_round_trip_and_null_out() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_in_order() {
        let mut o = JsonObject::new();
        o.field_str("a", "x")
            .field_u64("b", 3)
            .field_bool("c", true);
        o.field_f64("d", 0.25);
        o.field_array("e", ["1", "2"]);
        assert_eq!(
            o.finish(),
            r#"{"a": "x", "b": 3, "c": true, "d": 0.25, "e": [1, 2]}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(std::iter::empty::<&str>()), "[]");
    }

    #[test]
    fn number_arrays_render_inline() {
        assert_eq!(numbers([1.5, 2.0, f64::NAN]), "[1.5, 2.0, null]");
        assert_eq!(numbers_u64([3, 4, 5]), "[3, 4, 5]");
        assert_eq!(numbers(std::iter::empty()), "[]");
    }
}
