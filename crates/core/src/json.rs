//! A minimal hand-rolled JSON writer and reader.
//!
//! The experiment binaries (`perf_report`, `fig8`) and the run reports
//! emit machine-readable artifacts; the build image has no registry
//! access for `serde`, so this module provides the small, allocation-
//! light subset they need: objects, arrays, strings with escaping, and
//! numbers. Output is deterministic (insertion order preserved).
//!
//! The reader side ([`JsonValue::parse`]) is a strict recursive-descent
//! parser for the same subset, used by the `campaignd` engine to load
//! job specs and manifests back. Numbers keep their raw source text
//! ([`JsonValue::Number`]) so 64-bit seeds round-trip without `f64`
//! precision loss.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form.
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".into()
    }
}

/// An incremental JSON object writer.
///
/// ```
/// use flexstep_core::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("name", "fig8");
/// o.field_u64("cores", 16);
/// o.field_raw("nested", "{\"ok\": true}");
/// assert_eq!(o.finish(), r#"{"name": "fig8", "cores": 16, "nested": {"ok": true}}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push_str(", ");
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\": ", escape(key));
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds an array of pre-rendered JSON values.
    pub fn field_array<I>(&mut self, key: &str, values: I) -> &mut Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            self.buf.push_str(v.as_ref());
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders an array of JSON numbers (see [`number`] for formatting —
/// non-finite values become `null`). The campaign artifacts use this
/// for latency series and histogram buckets.
pub fn numbers(values: impl IntoIterator<Item = f64>) -> String {
    array(values.into_iter().map(number))
}

/// Renders an array of JSON unsigned integers.
pub fn numbers_u64(values: impl IntoIterator<Item = u64>) -> String {
    array(values.into_iter().map(|v| v.to_string()))
}

/// Renders an array of pre-rendered JSON values.
pub fn array<I>(values: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push_str(", ");
        }
        buf.push_str(v.as_ref());
    }
    buf.push(']');
    buf
}

/// A parsed JSON value.
///
/// Numbers are kept as their raw source text so integer values up to
/// the full `u64`/`i64` range survive parsing exactly (an `f64`
/// intermediate would corrupt 64-bit campaign seeds); convert on
/// access with [`JsonValue::as_u64`]/[`JsonValue::as_f64`].
///
/// ```
/// use flexstep_core::json::JsonValue;
/// let v = JsonValue::parse(r#"{"seed": 18446744073709551615, "rows": [1, 2]}"#).unwrap();
/// assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(u64::MAX));
/// assert_eq!(v.get("rows").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"42"`, `"-1.5e3"`).
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, insertion-ordered (keys are not deduplicated).
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure: the byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] locating the first malformed byte.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// The value of `key` when this is an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, when this is an integral number in range
    /// (exact — no float intermediate).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, when this is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates (paired or lone) are not
                            // produced by our writer; reject them
                            // rather than emit replacement chars.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte sequence is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits")
            .to_string();
        Ok(JsonValue::Number(raw))
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_round_trip_and_null_out() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builds_in_order() {
        let mut o = JsonObject::new();
        o.field_str("a", "x")
            .field_u64("b", 3)
            .field_bool("c", true);
        o.field_f64("d", 0.25);
        o.field_array("e", ["1", "2"]);
        assert_eq!(
            o.finish(),
            r#"{"a": "x", "b": 3, "c": true, "d": 0.25, "e": [1, 2]}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(std::iter::empty::<&str>()), "[]");
    }

    #[test]
    fn number_arrays_render_inline() {
        assert_eq!(numbers([1.5, 2.0, f64::NAN]), "[1.5, 2.0, null]");
        assert_eq!(numbers_u64([3, 4, 5]), "[3, 4, 5]");
        assert_eq!(numbers(std::iter::empty()), "[]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut o = JsonObject::new();
        o.field_str("name", "fig8 \"quick\"\n")
            .field_u64("seed", u64::MAX)
            .field_i64("delta", -3)
            .field_f64("mean_us", 1.25)
            .field_bool("ok", true)
            .field_raw("none", "null")
            .field_array("rows", ["1", "2", "3"]);
        let v = JsonValue::parse(&o.finish()).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("fig8 \"quick\"\n")
        );
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("delta").and_then(JsonValue::as_i64), Some(-3));
        assert_eq!(v.get("mean_us").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let rows = v.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.iter().filter_map(JsonValue::as_u64).sum::<u64>(), 6);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_keeps_u64_precision() {
        // 2^63 + 1 is not representable in f64 — the raw-text number
        // representation must carry it through exactly.
        let v = JsonValue::parse("9223372036854775809").unwrap();
        assert_eq!(v.as_u64(), Some(9_223_372_036_854_775_809));
        assert_eq!(v.as_i64(), None, "out of i64 range");
    }

    #[test]
    fn parser_handles_nesting_and_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ { \"b\" : [ ] } , null , -1.5e3 ] , \"c\" : { } } ")
            .unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].get("b").and_then(JsonValue::as_array), Some(&[][..]));
        assert_eq!(a[1], JsonValue::Null);
        assert_eq!(a[2].as_f64(), Some(-1500.0));
        assert_eq!(v.get("c").and_then(JsonValue::as_object), Some(&[][..]));
    }

    #[test]
    fn parser_unescapes_strings() {
        let v = JsonValue::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\": 1,}",
            "01e",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "[1 2]",
            "-",
            "1.",
            "1e",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "must reject {bad:?}");
        }
    }
}
