//! The FlexStep fabric: per-core error-detection units, the global
//! configuration register and the interconnect association map.
//!
//! This is pure hardware *state*; the coupling with the instruction-level
//! simulator (stepping, stalling, replay) lives in
//! [`engine`](crate::engine), and the Tab. I instruction semantics are
//! exposed there as `op_*` methods since several of them touch
//! architectural core state.

use crate::checker::CheckerState;
use crate::dbc::BufferFifo;
use crate::detect::DetectionEvent;
use crate::rcpm::{SegmentTracker, DEFAULT_SEGMENT_LIMIT};
use std::fmt;

/// Runtime attribute of a core (visible to the OS via `G.IDs.contain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreAttr {
    /// Plain compute core: no FlexStep role.
    Compute,
    /// Main core: its user-mode execution is checked.
    Main,
    /// Checker core: replays and verifies segments.
    Checker,
}

impl CoreAttr {
    /// Encoding returned by `G.IDs.contain` in `rd`.
    pub fn to_bits(self) -> u64 {
        match self {
            CoreAttr::Compute => 0,
            CoreAttr::Main => 1,
            CoreAttr::Checker => 2,
        }
    }
}

impl fmt::Display for CoreAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreAttr::Compute => f.write_str("compute"),
            CoreAttr::Main => f.write_str("main"),
            CoreAttr::Checker => f.write_str("checker"),
        }
    }
}

/// FlexStep hardware configuration.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// DBC SRAM capacity for log entries, bytes per core (Tab. III:
    /// 1 088 B).
    pub fifo_entry_bytes: usize,
    /// In-flight checkpoint slots (ASS double-buffering).
    pub checkpoint_slots: usize,
    /// Allow spilling to main memory over DMA (§III-C), trading FIFO
    /// bounds for extra DMA latency.
    pub dma_spill: bool,
    /// DMA cost per spilled packet, charged to the producing core.
    pub dma_cycles: u64,
    /// Checking-segment instruction limit (§III-A: 5 000).
    pub segment_limit: u64,
    /// Main-core stall for capturing and forwarding an SCP.
    pub scp_extract_cycles: u64,
    /// Main-core stall for capturing and forwarding an ECP.
    pub ecp_extract_cycles: u64,
    /// Checker-core stall for applying an SCP (`C.apply` + `C.jal`).
    pub scp_apply_cycles: u64,
    /// Checker-core stall for the ECP comparison.
    pub ecp_compare_cycles: u64,
    /// Stall applied when a backpressured main core retries.
    pub backpressure_retry_cycles: u64,
    /// Stall applied when a checker waits on an empty stream.
    pub checker_wait_cycles: u64,
    /// Segment-verdict memo capacity per checker (entries). `0` disables
    /// memoization entirely; any other value bounds the LRU verdict
    /// cache. Memoization never changes results — a hit replays the
    /// cached per-step timing profile, producing bit-identical reports —
    /// so it defaults on.
    pub memo_capacity: usize,
}

impl FabricConfig {
    /// The evaluated configuration: Tab. III SRAM sizes, the §III-A
    /// segment limit, extraction costs sized to the ASS port width, and
    /// the §III-C main-memory DMA spill that lets a checker lag its main
    /// core by whole segments (asynchronous checking needs roughly one
    /// segment of buffering; the 1 088 B SRAM alone cannot hold it).
    pub fn paper() -> Self {
        FabricConfig {
            fifo_entry_bytes: 1088,
            checkpoint_slots: 4,
            dma_spill: true,
            // The spill engine is an autonomous DMA: it drains the SRAM
            // in the background without stalling the producing core, so
            // the producer-side charge is zero; the cost appears as the
            // checker reading spilled data at memory latency.
            dma_cycles: 0,
            segment_limit: DEFAULT_SEGMENT_LIMIT,
            scp_extract_cycles: 32,
            ecp_extract_cycles: 32,
            scp_apply_cycles: 66,
            ecp_compare_cycles: 8,
            backpressure_retry_cycles: 4,
            checker_wait_cycles: 4,
            memo_capacity: crate::memo::DEFAULT_MEMO_CAPACITY,
        }
    }

    /// Paper configuration with DMA spill enabled (alias of
    /// [`FabricConfig::paper`], kept for call sites that emphasise the
    /// asynchronous set-up).
    pub fn paper_async() -> Self {
        Self::paper()
    }

    /// SRAM-only configuration: no DMA spill, double-buffered
    /// checkpoints. Exercises the hard backpressure path — the main core
    /// stalls whenever the checker lags past the on-chip buffers.
    pub fn paper_strict() -> Self {
        FabricConfig {
            dma_spill: false,
            checkpoint_slots: 2,
            dma_cycles: 16,
            ..Self::paper()
        }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Errors from FlexStep configuration operations (Tab. I semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlexError {
    /// Core index out of range.
    CoreOutOfRange {
        /// The offending index.
        core: usize,
    },
    /// Operation requires a main core.
    NotMain {
        /// The offending core.
        core: usize,
    },
    /// Operation requires a checker core.
    NotChecker {
        /// The offending core.
        core: usize,
    },
    /// The checker is already associated with another main core.
    CheckerTaken {
        /// The checker.
        checker: usize,
        /// Its current main core.
        current_main: usize,
    },
    /// The association still has buffered, unverified data.
    StreamNotDrained {
        /// The main core whose FIFO is non-empty.
        main: usize,
    },
    /// Checking must be disabled before reconfiguration.
    CheckingEnabled {
        /// The main core with checking on.
        main: usize,
    },
    /// A checker involved in reconfiguration is still busy.
    CheckerBusy {
        /// The busy checker.
        checker: usize,
    },
    /// `M.associate` needs at least one checker.
    NoCheckers,
    /// A channel grant requires the main core to be in the pending
    /// (buffering, unconnected) state.
    NotPending {
        /// The offending main core.
        main: usize,
    },
    /// The checker has no channel to revoke.
    NoChannel {
        /// The unconnected checker.
        checker: usize,
    },
}

impl fmt::Display for FlexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FlexError::CoreOutOfRange { core } => write!(f, "core {core} out of range"),
            FlexError::NotMain { core } => write!(f, "core {core} is not a main core"),
            FlexError::NotChecker { core } => write!(f, "core {core} is not a checker core"),
            FlexError::CheckerTaken {
                checker,
                current_main,
            } => {
                write!(f, "checker {checker} already serves main {current_main}")
            }
            FlexError::StreamNotDrained { main } => {
                write!(f, "main {main}'s stream still has unverified data")
            }
            FlexError::CheckingEnabled { main } => {
                write!(f, "main {main} still has checking enabled")
            }
            FlexError::CheckerBusy { checker } => write!(f, "checker {checker} is busy"),
            FlexError::NoCheckers => write!(f, "at least one checker required"),
            FlexError::NotPending { main } => {
                write!(f, "main {main} is not pending a checker grant")
            }
            FlexError::NoChannel { checker } => {
                write!(f, "checker {checker} has no channel to revoke")
            }
        }
    }
}

impl std::error::Error for FlexError {}

/// Per-core FlexStep hardware: every core carries *all* units so any core
/// can take any attribute at runtime (§III: "incorporating the same
/// functional units into each core is essential to enable dynamic
/// switching").
#[derive(Debug)]
pub struct CoreUnit {
    /// Current attribute.
    pub attr: CoreAttr,
    /// Main-role: segment tracker (CPC).
    pub tracker: SegmentTracker,
    /// Main-role: outgoing data-buffer FIFO (DBC).
    pub fifo: BufferFifo,
    /// Main-role: `M.check` state.
    pub checking_enabled: bool,
    /// Checker-role state (ASS, phase, results).
    pub checker: CheckerState,
    /// Spilled packets already charged for DMA cost (engine bookkeeping).
    pub(crate) spill_charged: u64,
    /// Main-role: cycles this core has stalled extracting checkpoints
    /// (SCP on segment open, IC+ECP on close) — the per-mode checkpoint
    /// overhead the reliability-policy accounting reports.
    pub(crate) cp_stall_cycles: u64,
    /// Main-role: a fault shot is armed or in flight on this stream, so
    /// its checkers must not serve verdicts from the memo (the harness
    /// keeps this in sync with the fault driver).
    pub(crate) memo_blocked: bool,
}

impl CoreUnit {
    fn new(config: &FabricConfig) -> Self {
        let mut fifo = BufferFifo::new(config.fifo_entry_bytes, config.checkpoint_slots);
        fifo.set_spill(config.dma_spill);
        let mut checker = CheckerState::new();
        checker.memo = crate::memo::VerdictMemo::new(config.memo_capacity);
        CoreUnit {
            attr: CoreAttr::Compute,
            tracker: SegmentTracker::new(config.segment_limit),
            fifo,
            checking_enabled: false,
            checker,
            spill_charged: 0,
            cp_stall_cycles: 0,
            memo_blocked: false,
        }
    }
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Steps a main core spent stalled on FIFO backpressure.
    pub backpressure_stalls: u64,
    /// Steps a checker spent waiting on an empty stream.
    pub checker_wait_stalls: u64,
    /// Segments verified clean across all checkers.
    pub segments_ok: u64,
    /// Segments that failed verification.
    pub segments_failed: u64,
    /// Segment applies served from the verdict memo (replay skipped).
    pub memo_hits: u64,
    /// Memoizable segment applies that missed the verdict memo.
    pub memo_misses: u64,
}

/// The FlexStep fabric state shared by all cores.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    units: Vec<CoreUnit>,
    /// Per main core: its associated checkers in consumer-index order
    /// (`Some(vec![])` = pending association, buffering with no consumer
    /// granted yet; `None` = no association). Indexed by core id so the
    /// per-step `checking_live` test is O(1), not a map lookup.
    assoc: Vec<Option<Vec<usize>>>,
    /// Per checker core: `(main core, consumer index)` of its channel.
    reverse: Vec<Option<(usize, usize)>>,
    /// Detection events not yet drained by the OS.
    pub detections: Vec<DetectionEvent>,
    /// Aggregate statistics.
    pub stats: FabricStats,
}

impl Fabric {
    /// Builds the fabric for `num_cores` cores, all starting as compute.
    pub fn new(num_cores: usize, config: FabricConfig) -> Self {
        Fabric {
            units: (0..num_cores).map(|_| CoreUnit::new(&config)).collect(),
            config,
            assoc: vec![None; num_cores],
            reverse: vec![None; num_cores],
            detections: Vec::new(),
            stats: FabricStats::default(),
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.units.len()
    }

    /// Immutable unit access.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn unit(&self, core: usize) -> &CoreUnit {
        &self.units[core]
    }

    /// Mutable unit access.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn unit_mut(&mut self, core: usize) -> &mut CoreUnit {
        &mut self.units[core]
    }

    fn check_core(&self, core: usize) -> Result<(), FlexError> {
        if core < self.units.len() {
            Ok(())
        } else {
            Err(FlexError::CoreOutOfRange { core })
        }
    }

    /// `G.IDs.contain`: the attribute of a core.
    ///
    /// # Errors
    ///
    /// Returns [`FlexError::CoreOutOfRange`] for bad indices.
    pub fn ids_contain(&self, core: usize) -> Result<CoreAttr, FlexError> {
        self.check_core(core)?;
        Ok(self.units[core].attr)
    }

    /// `G.Configure`: writes main/checker IDs into the global
    /// configuration register. Unlisted cores become compute cores.
    ///
    /// # Errors
    ///
    /// Fails when a core changing role still has undrained streams, a
    /// busy checker state, or enabled checking.
    pub fn configure(&mut self, mains: &[usize], checkers: &[usize]) -> Result<(), FlexError> {
        for &c in mains.iter().chain(checkers) {
            self.check_core(c)?;
        }
        // Validate teardown preconditions for every core whose role changes.
        for core in 0..self.units.len() {
            let new_attr = if mains.contains(&core) {
                CoreAttr::Main
            } else if checkers.contains(&core) {
                CoreAttr::Checker
            } else {
                CoreAttr::Compute
            };
            let unit = &self.units[core];
            if unit.attr == new_attr {
                continue;
            }
            if unit.attr == CoreAttr::Main {
                if unit.checking_enabled {
                    return Err(FlexError::CheckingEnabled { main: core });
                }
                if !unit.fifo.is_fully_drained() {
                    return Err(FlexError::StreamNotDrained { main: core });
                }
            }
            if unit.attr == CoreAttr::Checker && unit.checker.busy {
                return Err(FlexError::CheckerBusy { checker: core });
            }
        }
        // Apply: tear down associations involving role-changed cores.
        for core in 0..self.units.len() {
            let new_attr = if mains.contains(&core) {
                CoreAttr::Main
            } else if checkers.contains(&core) {
                CoreAttr::Checker
            } else {
                CoreAttr::Compute
            };
            if self.units[core].attr != new_attr {
                self.dissolve_associations_of(core);
                self.units[core].attr = new_attr;
            }
        }
        Ok(())
    }

    fn dissolve_associations_of(&mut self, core: usize) {
        if let Some(checkers) = self.assoc[core].take() {
            for ch in checkers {
                self.reverse[ch] = None;
            }
            self.units[core].fifo.reset();
        }
        if let Some((main, _)) = self.reverse[core].take() {
            if let Some(list) = self.assoc[main].as_mut() {
                list.retain(|&c| c != core);
                if list.is_empty() {
                    self.assoc[main] = None;
                }
            }
        }
    }

    /// `M.associate`: allocates one or more checker cores to `main`,
    /// configuring the interconnect channel (1:1 = DCLS-like,
    /// 1:2 = TCLS-like, or wider).
    ///
    /// # Errors
    ///
    /// Fails when roles don't match, a checker already serves another
    /// main, or the previous channel still holds data.
    pub fn associate(&mut self, main: usize, checkers: &[usize]) -> Result<(), FlexError> {
        self.check_core(main)?;
        if checkers.is_empty() {
            return Err(FlexError::NoCheckers);
        }
        if self.units[main].attr != CoreAttr::Main {
            return Err(FlexError::NotMain { core: main });
        }
        for &ch in checkers {
            self.check_core(ch)?;
            if self.units[ch].attr != CoreAttr::Checker {
                return Err(FlexError::NotChecker { core: ch });
            }
            if let Some((m, _)) = self.reverse[ch] {
                if m != main {
                    return Err(FlexError::CheckerTaken {
                        checker: ch,
                        current_main: m,
                    });
                }
            }
        }
        if !self.units[main].fifo.is_fully_drained() {
            return Err(FlexError::StreamNotDrained { main });
        }
        // Replace the previous association.
        if let Some(old) = self.assoc[main].take() {
            for ch in old {
                self.reverse[ch] = None;
            }
        }
        self.units[main].fifo.set_consumers(checkers.len());
        for (idx, &ch) in checkers.iter().enumerate() {
            self.reverse[ch] = Some((main, idx));
        }
        self.assoc[main] = Some(checkers.to_vec());
        Ok(())
    }

    /// Puts a main core in the *pending* association state (§III-C
    /// conflict resolution): the core buffers checking-segment data into
    /// its own FIFO while *waiting* for a checker to be granted. The OS
    /// (or a [`CheckerArbiter`](crate::share::CheckerArbiter)) later
    /// connects the channel with [`Fabric::grant`].
    ///
    /// Checking counts as live in this state — the segment capture path
    /// runs, and the data waits in the FIFO for the future consumer.
    ///
    /// # Errors
    ///
    /// Fails when the core is not a main core or its previous stream has
    /// not drained.
    pub fn associate_pending(&mut self, main: usize) -> Result<(), FlexError> {
        self.check_core(main)?;
        if self.units[main].attr != CoreAttr::Main {
            return Err(FlexError::NotMain { core: main });
        }
        if !self.units[main].fifo.is_fully_drained() {
            return Err(FlexError::StreamNotDrained { main });
        }
        if let Some(old) = self.assoc[main].take() {
            for ch in old {
                self.reverse[ch] = None;
            }
        }
        self.units[main].fifo.set_consumers(1);
        self.assoc[main] = Some(Vec::new());
        Ok(())
    }

    /// Connects a pending main core's FIFO to `checker` — the grant half
    /// of the §III-C arbitration. Unlike [`Fabric::associate`], the
    /// main's FIFO may already hold buffered segments; the checker starts
    /// consuming them from the front.
    ///
    /// # Errors
    ///
    /// Fails when the roles don't match, the checker already serves a
    /// different main, or `main` is not in the pending state.
    pub fn grant(&mut self, main: usize, checker: usize) -> Result<(), FlexError> {
        self.check_core(main)?;
        self.check_core(checker)?;
        if self.units[checker].attr != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        if let Some((m, _)) = self.reverse[checker] {
            return if m == main {
                Ok(())
            } else {
                Err(FlexError::CheckerTaken {
                    checker,
                    current_main: m,
                })
            };
        }
        match self.assoc[main].as_mut() {
            Some(list) if list.is_empty() => {
                list.push(checker);
                self.reverse[checker] = Some((main, 0));
                Ok(())
            }
            _ => Err(FlexError::NotPending { main }),
        }
    }

    /// Disconnects a checker from its current main core, returning the
    /// main to the pending state — the release half of the §III-C
    /// arbitration. The channel may only be torn down at a safe point:
    /// the stream fully drained and the checker between segments.
    ///
    /// Returns the main core the checker was serving.
    ///
    /// # Errors
    ///
    /// Fails when the checker has no channel, the stream still holds
    /// data, or the checker is mid-segment.
    pub fn revoke(&mut self, checker: usize) -> Result<usize, FlexError> {
        self.check_core(checker)?;
        let (main, _) = self.reverse[checker].ok_or(FlexError::NoChannel { checker })?;
        if !self.units[main].fifo.is_fully_drained() {
            return Err(FlexError::StreamNotDrained { main });
        }
        if self.units[checker].checker.phase != crate::checker::CheckPhase::WaitScp {
            return Err(FlexError::CheckerBusy { checker });
        }
        self.reverse[checker] = None;
        if let Some(list) = self.assoc[main].as_mut() {
            list.retain(|&c| c != checker);
        }
        Ok(main)
    }

    /// Whether `main` has an association (granted *or* pending).
    #[inline]
    fn has_assoc(&self, main: usize) -> bool {
        self.assoc[main].is_some()
    }

    /// `M.check`: enables or disables checking on a main core.
    ///
    /// Disabling with an open segment abandons it (the OS does this only
    /// from kernel mode, where segments are already closed; the abandon
    /// path covers direct hardware use).
    ///
    /// # Errors
    ///
    /// Enabling requires the core to be a main core with an association.
    pub fn set_check(&mut self, main: usize, enable: bool) -> Result<(), FlexError> {
        self.check_core(main)?;
        if enable {
            if self.units[main].attr != CoreAttr::Main {
                return Err(FlexError::NotMain { core: main });
            }
            if !self.has_assoc(main) {
                return Err(FlexError::NoCheckers);
            }
            self.units[main].checking_enabled = true;
        } else {
            if self.units[main].tracker.is_open() {
                self.units[main].tracker.abandon();
            }
            self.units[main].checking_enabled = false;
        }
        Ok(())
    }

    /// `C.check_state`: switches a checker between busy and idle.
    ///
    /// # Errors
    ///
    /// Requires the core to be a checker.
    pub fn set_check_state(&mut self, checker: usize, busy: bool) -> Result<(), FlexError> {
        self.check_core(checker)?;
        if self.units[checker].attr != CoreAttr::Checker {
            return Err(FlexError::NotChecker { core: checker });
        }
        self.units[checker].checker.busy = busy;
        Ok(())
    }

    /// Resets a checker's replay state machine to wait-for-SCP, dropping
    /// any in-progress replay, staged context, and memo
    /// recording/playback (rollback recovery and checker teardown both
    /// need this). Verdict counters and the memo cache itself survive —
    /// cached verdicts for *other* streams stay valid.
    pub(crate) fn reset_checker_replay(&mut self, checker: usize) {
        let st = &mut self.units[checker].checker;
        st.phase = crate::checker::CheckPhase::WaitScp;
        st.recording = None;
        st.playback = None;
        st.ass.take_saved();
        st.ass.take_scp();
    }

    /// Permanently tears down a checker core's channel after a hard
    /// fault ([`FaultPlan::kill_checker_at`](crate::FaultPlan)): force
    /// de-association with none of [`Fabric::revoke`]'s safe-point
    /// preconditions — a dead checker can never reach one.
    ///
    /// If the checker was connected, its main's FIFO is flushed (the
    /// buffered stream indexed a consumer set that no longer exists) and
    /// the channel re-forms around the survivors: remaining dedicated
    /// checkers are re-indexed and restarted at the next SCP, while a
    /// main left with no consumer reverts to the pending state —
    /// buffering for a future [`Fabric::grant`] by a surviving arbiter,
    /// or for the harness to degrade to unchecked execution.
    ///
    /// Returns `(main, surviving consumer count)` when the checker had a
    /// channel.
    pub(crate) fn kill_checker(&mut self, checker: usize) -> Option<(usize, usize)> {
        self.reset_checker_replay(checker);
        self.units[checker].checker.busy = false;
        let (main, _) = self.reverse[checker].take()?;
        let mut survivors = Vec::new();
        if let Some(list) = self.assoc[main].as_mut() {
            list.retain(|&c| c != checker);
            survivors = list.clone();
        }
        self.units[main].fifo.reset();
        if self.units[main].tracker.is_open() {
            // The open segment's SCP went down with the flush; abandon it
            // so the stream re-forms at the next segment boundary with a
            // fresh SCP (anything the harness wants re-verified is rolled
            // back instead).
            self.units[main].tracker.abandon();
        }
        if survivors.is_empty() {
            // The pending convention: buffer for one future consumer.
            self.units[main].fifo.set_consumers(1);
        } else {
            self.units[main].fifo.set_consumers(survivors.len());
            for (idx, &ch) in survivors.iter().enumerate() {
                self.reverse[ch] = Some((main, idx));
                self.reset_checker_replay(ch);
            }
        }
        Some((main, survivors.len()))
    }

    /// The checkers associated with a main core (consumer-index order);
    /// empty for out-of-range ids.
    pub fn checkers_of(&self, main: usize) -> &[usize] {
        self.assoc
            .get(main)
            .and_then(|a| a.as_deref())
            .unwrap_or(&[])
    }

    /// The channel endpoint of a checker: `(main core, consumer index)`;
    /// `None` for unconnected or out-of-range ids.
    #[inline]
    pub fn channel_of(&self, checker: usize) -> Option<(usize, usize)> {
        self.reverse.get(checker).copied().flatten()
    }

    /// Whether checking is live on a main core (attribute, enable bit and
    /// association all in place).
    #[inline]
    pub fn checking_live(&self, main: usize) -> bool {
        let unit = &self.units[main];
        unit.attr == CoreAttr::Main && unit.checking_enabled && self.has_assoc(main)
    }

    /// Drains all pending detection events.
    pub fn take_detections(&mut self) -> Vec<DetectionEvent> {
        std::mem::take(&mut self.detections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, FabricConfig::paper())
    }

    #[test]
    fn cores_start_as_compute() {
        let f = fabric(4);
        for c in 0..4 {
            assert_eq!(f.ids_contain(c).unwrap(), CoreAttr::Compute);
        }
        assert!(f.ids_contain(4).is_err());
    }

    #[test]
    fn configure_assigns_attributes() {
        let mut f = fabric(4);
        f.configure(&[0, 2], &[1, 3]).unwrap();
        assert_eq!(f.ids_contain(0).unwrap(), CoreAttr::Main);
        assert_eq!(f.ids_contain(1).unwrap(), CoreAttr::Checker);
        assert_eq!(f.ids_contain(2).unwrap(), CoreAttr::Main);
        assert_eq!(f.ids_contain(3).unwrap(), CoreAttr::Checker);
        // Reconfigure: core 2 becomes compute.
        f.configure(&[0], &[1]).unwrap();
        assert_eq!(f.ids_contain(2).unwrap(), CoreAttr::Compute);
    }

    #[test]
    fn associate_validates_roles() {
        let mut f = fabric(4);
        f.configure(&[0], &[1]).unwrap();
        assert_eq!(f.associate(1, &[0]), Err(FlexError::NotMain { core: 1 }));
        assert_eq!(f.associate(0, &[2]), Err(FlexError::NotChecker { core: 2 }));
        assert_eq!(f.associate(0, &[]), Err(FlexError::NoCheckers));
        f.associate(0, &[1]).unwrap();
        assert_eq!(f.checkers_of(0), &[1]);
        assert_eq!(f.channel_of(1), Some((0, 0)));
    }

    #[test]
    fn checker_exclusivity_enforced() {
        let mut f = fabric(4);
        f.configure(&[0, 2], &[1]).unwrap();
        f.associate(0, &[1]).unwrap();
        assert_eq!(
            f.associate(2, &[1]),
            Err(FlexError::CheckerTaken {
                checker: 1,
                current_main: 0
            })
        );
    }

    #[test]
    fn one_to_two_channel() {
        let mut f = fabric(4);
        f.configure(&[0], &[1, 2]).unwrap();
        f.associate(0, &[1, 2]).unwrap();
        assert_eq!(f.unit(0).fifo.consumers(), 2);
        assert_eq!(f.channel_of(1), Some((0, 0)));
        assert_eq!(f.channel_of(2), Some((0, 1)));
    }

    #[test]
    fn check_enable_requires_association() {
        let mut f = fabric(2);
        f.configure(&[0], &[1]).unwrap();
        assert_eq!(f.set_check(0, true), Err(FlexError::NoCheckers));
        f.associate(0, &[1]).unwrap();
        f.set_check(0, true).unwrap();
        assert!(f.checking_live(0));
        f.set_check(0, false).unwrap();
        assert!(!f.checking_live(0));
    }

    #[test]
    fn busy_checker_blocks_reconfiguration() {
        let mut f = fabric(2);
        f.configure(&[0], &[1]).unwrap();
        f.set_check_state(1, true).unwrap();
        assert_eq!(
            f.configure(&[1], &[0]),
            Err(FlexError::CheckerBusy { checker: 1 })
        );
        f.set_check_state(1, false).unwrap();
        f.configure(&[1], &[0]).unwrap();
        assert_eq!(f.ids_contain(1).unwrap(), CoreAttr::Main);
    }

    #[test]
    fn attr_bits_for_ids_contain() {
        assert_eq!(CoreAttr::Compute.to_bits(), 0);
        assert_eq!(CoreAttr::Main.to_bits(), 1);
        assert_eq!(CoreAttr::Checker.to_bits(), 2);
    }
}
