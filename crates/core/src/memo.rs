//! Segment-verdict memoization.
//!
//! A checker that has already replayed a segment bit-identical to one it
//! is about to start — same architectural start state, same forwarded
//! packet stream, same code bytes — will reach the same verdict through
//! the same per-step timing. The [`VerdictMemo`] caches that outcome,
//! keyed by two 64-bit fingerprints computed incrementally by the DBC
//! (see `dbc.rs`): the hash of the start checkpoint's architectural
//! snapshot and the running hash of every packet in the segment's
//! stream. On a hit the engine skips re-execution and plays back the
//! recorded per-step timing profile instead, charging the same cycles
//! and consuming the same log entries, so externally observable state —
//! engine-step sequence, stall accounting, observer events, the
//! `RunReport` — is bit-identical to a real replay.
//!
//! Faulted streams can never be served from the cache: mutating any
//! in-flight packet poisons the affected fingerprints (`dbc.rs`), the
//! harness additionally blocks lookups on channels with armed fault
//! shots, and the injectors drop any in-progress recording — three
//! independent layers (see DESIGN.md §13).

use std::sync::Arc;

/// Default verdict-cache capacity (entries per checker).
pub(crate) const DEFAULT_MEMO_CAPACITY: usize = 64;

/// Per-retire cycle costs at or above this bound are not memoized: the
/// playback profile packs `(cycles << 2) | log_entries_consumed` into a
/// `u32`, so cycles must fit in 30 bits. No modeled instruction comes
/// close (worst case is a few hundred cycles of cache misses), but the
/// recorder bails rather than truncate.
const MAX_STEP_CYCLES: u64 = 1 << 30;

/// Packs one replay step for the profile: `entries` is the number of log
/// entries the step consumed (0..=2 — a plain retire, a load/store, or a
/// multi-µop AMO pair). Returns `None` when the step is not packable.
fn pack_step(cycles: u64, entries: u64) -> Option<u32> {
    if cycles >= MAX_STEP_CYCLES || entries > 3 {
        return None;
    }
    Some(((cycles as u32) << 2) | entries as u32)
}

fn unpack_step(packed: u32) -> (u64, u64) {
    (u64::from(packed >> 2), u64::from(packed & 3))
}

/// One cached segment verdict: the fingerprint pair it answers for, the
/// code epoch it was recorded under, the instruction count the segment
/// retired, and the per-step timing profile.
#[derive(Debug, Clone)]
struct MemoEntry {
    start_hash: u64,
    stream_hash: u64,
    code_epoch: u64,
    inst_count: u64,
    profile: Arc<[u32]>,
    last_used: u64,
}

/// A bounded LRU cache of clean segment verdicts, one per checker.
///
/// Only *clean* verdicts are cached: a mismatching segment is a
/// detection event the experiment exists to observe, and its stream was
/// poisoned by the injector anyway. Lookup requires all three of
/// (start-state hash, stream hash, code epoch) to match.
#[derive(Debug, Default)]
pub(crate) struct VerdictMemo {
    entries: Vec<MemoEntry>,
    capacity: usize,
    tick: u64,
}

impl VerdictMemo {
    pub(crate) fn new(capacity: usize) -> Self {
        VerdictMemo {
            entries: Vec::with_capacity(capacity.min(DEFAULT_MEMO_CAPACITY)),
            capacity,
            tick: 0,
        }
    }

    /// Whether lookups can ever hit (capacity zero disables the memo).
    pub(crate) fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up a verdict for the fingerprint pair, refreshing its LRU
    /// stamp on a hit.
    pub(crate) fn lookup(
        &mut self,
        start_hash: u64,
        stream_hash: u64,
        code_epoch: u64,
    ) -> Option<(u64, Arc<[u32]>)> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.iter_mut().find(|e| {
            e.start_hash == start_hash && e.stream_hash == stream_hash && e.code_epoch == code_epoch
        })?;
        e.last_used = tick;
        Some((e.inst_count, Arc::clone(&e.profile)))
    }

    /// Inserts a finished recording, evicting the least-recently-used
    /// entry when full. A duplicate key overwrites in place.
    pub(crate) fn insert(&mut self, rec: Recording) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let entry = MemoEntry {
            start_hash: rec.start_hash,
            stream_hash: rec.stream_hash,
            code_epoch: rec.code_epoch,
            inst_count: rec.profile.len() as u64,
            profile: rec.profile.into(),
            last_used: self.tick,
        };
        if let Some(e) = self.entries.iter_mut().find(|e| {
            e.start_hash == entry.start_hash
                && e.stream_hash == entry.stream_hash
                && e.code_epoch == entry.code_epoch
        }) {
            *e = entry;
            return;
        }
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("memo is non-empty when at capacity");
            self.entries.swap_remove(lru);
        }
        self.entries.push(entry);
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// An in-progress recording of one segment's replay profile. Created at
/// SCP apply when the segment is memoizable; dropped on any
/// non-memoizable step (CSR/system instruction, trap, interrupt,
/// detection, fault injection, code-epoch change); harvested into the
/// memo on a clean verdict.
#[derive(Debug)]
pub(crate) struct Recording {
    pub(crate) start_hash: u64,
    pub(crate) stream_hash: u64,
    pub(crate) code_epoch: u64,
    profile: Vec<u32>,
}

impl Recording {
    pub(crate) fn new(start_hash: u64, stream_hash: u64, code_epoch: u64) -> Self {
        Recording {
            start_hash,
            stream_hash,
            code_epoch,
            profile: Vec::new(),
        }
    }

    /// Appends one retired step. Returns `false` (caller drops the
    /// recording) when the step cannot be packed.
    #[must_use]
    pub(crate) fn push_step(&mut self, cycles: u64, entries: u64) -> bool {
        match pack_step(cycles, entries) {
            Some(p) => {
                self.profile.push(p);
                true
            }
            None => false,
        }
    }
}

/// Playback state for a memo hit: the cached profile being re-charged
/// step by step in place of real replay.
#[derive(Debug)]
pub(crate) struct Playback {
    profile: Arc<[u32]>,
    pos: usize,
    /// The instruction count the memoized segment retired — asserted
    /// against the stream's `InstCount` packet when the profile runs dry.
    pub(crate) inst_count: u64,
}

impl Playback {
    pub(crate) fn new(inst_count: u64, profile: Arc<[u32]>) -> Self {
        Playback {
            profile,
            pos: 0,
            inst_count,
        }
    }

    /// Next `(cycles, log_entries_consumed)` step, or `None` when the
    /// profile is exhausted.
    pub(crate) fn next_step(&mut self) -> Option<(u64, u64)> {
        let packed = *self.profile.get(self.pos)?;
        self.pos += 1;
        Some(unpack_step(packed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: u64, stream: u64, epoch: u64, steps: &[(u64, u64)]) -> Recording {
        let mut r = Recording::new(start, stream, epoch);
        for &(c, e) in steps {
            assert!(r.push_step(c, e));
        }
        r
    }

    #[test]
    fn roundtrip_profile_through_lookup() {
        let mut m = VerdictMemo::new(4);
        m.insert(rec(1, 2, 0, &[(3, 0), (7, 1), (1, 2)]));
        let (count, profile) = m.lookup(1, 2, 0).expect("hit");
        assert_eq!(count, 3);
        let mut pb = Playback::new(count, profile);
        assert_eq!(pb.next_step(), Some((3, 0)));
        assert_eq!(pb.next_step(), Some((7, 1)));
        assert_eq!(pb.next_step(), Some((1, 2)));
        assert_eq!(pb.next_step(), None);
    }

    #[test]
    fn lookup_requires_all_three_keys() {
        let mut m = VerdictMemo::new(4);
        m.insert(rec(1, 2, 5, &[(1, 0)]));
        assert!(m.lookup(9, 2, 5).is_none(), "start hash must match");
        assert!(m.lookup(1, 9, 5).is_none(), "stream hash must match");
        assert!(m.lookup(1, 2, 9).is_none(), "code epoch must match");
        assert!(m.lookup(1, 2, 5).is_some());
    }

    #[test]
    fn capacity_bounds_via_lru_eviction() {
        let mut m = VerdictMemo::new(2);
        m.insert(rec(1, 1, 0, &[(1, 0)]));
        m.insert(rec(2, 2, 0, &[(1, 0)]));
        assert!(m.lookup(1, 1, 0).is_some()); // refresh entry 1
        m.insert(rec(3, 3, 0, &[(1, 0)])); // evicts entry 2 (LRU)
        assert_eq!(m.len(), 2);
        assert!(m.lookup(2, 2, 0).is_none(), "LRU entry evicted");
        assert!(m.lookup(1, 1, 0).is_some());
        assert!(m.lookup(3, 3, 0).is_some());
    }

    #[test]
    fn duplicate_key_overwrites_in_place() {
        let mut m = VerdictMemo::new(2);
        m.insert(rec(1, 1, 0, &[(1, 0)]));
        m.insert(rec(1, 1, 0, &[(2, 1), (3, 0)]));
        assert_eq!(m.len(), 1);
        let (count, _) = m.lookup(1, 1, 0).unwrap();
        assert_eq!(count, 2, "overwritten entry wins");
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut m = VerdictMemo::new(0);
        assert!(!m.is_enabled());
        m.insert(rec(1, 1, 0, &[(1, 0)]));
        assert!(m.lookup(1, 1, 0).is_none());
    }

    #[test]
    fn unpackable_steps_reject_the_recording() {
        let mut r = Recording::new(0, 0, 0);
        assert!(r.push_step(MAX_STEP_CYCLES - 1, 3));
        assert!(!r.push_step(MAX_STEP_CYCLES, 0), "cycle overflow bails");
        assert!(!r.push_step(1, 4), "entry count beyond 2 bits bails");
    }
}
