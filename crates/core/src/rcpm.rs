//! Register Checkpoint Management units (Fig. 2.a): the Checkpoint
//! Control (CPC) with its instruction counter and privilege monitor, and
//! the Architectural State Snapshot (ASS) storage.
//!
//! The main-core side is the [`SegmentTracker`]: a state machine that
//! opens a checking segment at the first user-mode instruction, counts
//! user-mode retirements, and closes the segment when the count limit is
//! reached or the core leaves user mode (§III-A — "a new checkpoint is
//! generated when (a) a privilege level mode switch occurs; (b) an
//! instruction count limit is reached (default is 5000)").

use crate::packet::Checkpoint;
use flexstep_sim::ArchSnapshot;

/// Default checking-segment instruction-count limit (paper §III-A).
pub const DEFAULT_SEGMENT_LIMIT: u64 = 5000;

/// Why a segment was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentClose {
    /// The instruction-count limit was reached.
    CountLimit,
    /// The core left user mode (trap, interrupt or `ecall`).
    PrivilegeSwitch,
    /// The OS disabled checking mid-segment (context switch path).
    CheckDisabled,
}

/// The per-core Checkpoint Control state (main-core role).
#[derive(Debug, Clone)]
pub struct SegmentTracker {
    /// Instruction-count limit for a segment.
    limit: u64,
    /// Open-segment state: user instructions retired so far.
    open: Option<OpenSegment>,
    /// Next segment sequence number.
    next_seq: u64,
    /// Stream tag stamped on new segments (task id, set by the OS).
    tag: u64,
    /// Total segments closed.
    pub segments_closed: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenSegment {
    seq: u64,
    count: u64,
}

impl SegmentTracker {
    /// Creates a tracker with the given count limit.
    pub fn new(limit: u64) -> Self {
        SegmentTracker {
            limit,
            open: None,
            next_seq: 0,
            tag: 0,
            segments_closed: 0,
        }
    }

    /// The configured segment limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Reconfigures the segment limit (reliability-mode dispatch: a
    /// `FullLockstep` slot runs at limit 1, `CheckpointOnly` at a
    /// multiple of the base). Takes effect from the next opened
    /// segment; must not be called while one is open.
    pub fn set_limit(&mut self, limit: u64) {
        assert!(limit >= 1, "segment limit must be at least 1");
        assert!(
            self.open.is_none(),
            "segment limit cannot change under an open segment"
        );
        self.limit = limit;
    }

    /// Sets the stream tag stamped on subsequently opened segments.
    pub fn set_tag(&mut self, tag: u64) {
        self.tag = tag;
    }

    /// The current stream tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Whether a segment is currently open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Instructions retired in the open segment (0 when closed).
    pub fn count(&self) -> u64 {
        self.open.map_or(0, |s| s.count)
    }

    /// Sequence number of the open segment, if any (observer hooks).
    pub fn open_seq(&self) -> Option<u64> {
        self.open.map(|s| s.seq)
    }

    /// Opens a segment at the given pre-instruction snapshot, producing
    /// the SCP to send.
    ///
    /// # Panics
    ///
    /// Panics if a segment is already open.
    pub fn open_segment(&mut self, at: ArchSnapshot) -> Checkpoint {
        assert!(self.open.is_none(), "segment already open");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.open = Some(OpenSegment { seq, count: 0 });
        Checkpoint {
            snapshot: at,
            seq,
            tag: self.tag,
        }
    }

    /// Records one user-mode retirement; returns `true` when the segment
    /// has just reached its count limit and must be closed.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn on_user_retire(&mut self) -> bool {
        let seg = self.open.as_mut().expect("retire without open segment");
        seg.count += 1;
        seg.count >= self.limit
    }

    /// Closes the open segment at the given post-boundary snapshot,
    /// producing `(instruction count, ECP)`.
    ///
    /// # Panics
    ///
    /// Panics if no segment is open.
    pub fn close_segment(&mut self, at: ArchSnapshot, _why: SegmentClose) -> (u64, Checkpoint) {
        let seg = self.open.take().expect("close without open segment");
        self.segments_closed += 1;
        (
            seg.count,
            Checkpoint {
                snapshot: at,
                seq: seg.seq,
                tag: self.tag,
            },
        )
    }

    /// Abandons an open segment without emitting checkpoints (association
    /// teardown); the checker discards the partial stream via a FIFO
    /// reset.
    pub fn abandon(&mut self) {
        self.open = None;
    }
}

/// The Architectural State Snapshot unit of a checker core: one slot for
/// the saved thread context (`C.record`, restored after checking) and one
/// for the pending SCP being applied.
#[derive(Debug, Clone, Default)]
pub struct Ass {
    saved_context: Option<ArchSnapshot>,
    pending_scp: Option<Checkpoint>,
}

impl Ass {
    /// Creates an empty ASS.
    pub fn new() -> Self {
        Self::default()
    }

    /// `C.record`: stores the checker thread's own context for restoration
    /// after checking completes (Al. 2 line 4).
    pub fn record(&mut self, context: ArchSnapshot) {
        self.saved_context = Some(context);
    }

    /// Takes the saved context back (end of the checker thread).
    pub fn take_saved(&mut self) -> Option<ArchSnapshot> {
        self.saved_context.take()
    }

    /// Whether a context is recorded.
    pub fn has_saved(&self) -> bool {
        self.saved_context.is_some()
    }

    /// Stages an SCP received from the channel.
    pub fn stage_scp(&mut self, scp: Checkpoint) {
        self.pending_scp = Some(scp);
    }

    /// `C.apply`: takes the staged SCP for application to the register
    /// file.
    pub fn take_scp(&mut self) -> Option<Checkpoint> {
        self.pending_scp.take()
    }

    /// Whether an SCP is staged.
    pub fn has_scp(&self) -> bool {
        self.pending_scp.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_sim::ArchState;

    fn snap(pc: u64) -> ArchSnapshot {
        let mut s = ArchState::new(0);
        s.pc = pc;
        s.snapshot()
    }

    #[test]
    fn open_close_produces_matching_seq() {
        let mut t = SegmentTracker::new(3);
        let scp = t.open_segment(snap(0x100));
        assert_eq!(scp.seq, 0);
        assert!(t.is_open());
        assert!(!t.on_user_retire());
        assert!(!t.on_user_retire());
        assert!(t.on_user_retire(), "limit reached at 3");
        let (count, ecp) = t.close_segment(snap(0x10C), SegmentClose::CountLimit);
        assert_eq!(count, 3);
        assert_eq!(ecp.seq, 0);
        assert!(!t.is_open());
        let scp2 = t.open_segment(snap(0x10C));
        assert_eq!(scp2.seq, 1, "sequence increments");
    }

    #[test]
    fn early_close_on_privilege_switch() {
        let mut t = SegmentTracker::new(5000);
        t.open_segment(snap(0x100));
        t.on_user_retire();
        let (count, _) = t.close_segment(snap(0x104), SegmentClose::PrivilegeSwitch);
        assert_eq!(count, 1, "premature extermination keeps the partial count");
        assert_eq!(t.segments_closed, 1);
    }

    #[test]
    fn tag_stamped_on_open() {
        let mut t = SegmentTracker::new(10);
        t.set_tag(42);
        let scp = t.open_segment(snap(0));
        assert_eq!(scp.tag, 42);
        assert_eq!(t.tag(), 42);
    }

    #[test]
    #[should_panic(expected = "segment already open")]
    fn double_open_rejected() {
        let mut t = SegmentTracker::new(10);
        t.open_segment(snap(0));
        t.open_segment(snap(4));
    }

    #[test]
    fn abandon_discards_segment() {
        let mut t = SegmentTracker::new(10);
        t.open_segment(snap(0));
        t.abandon();
        assert!(!t.is_open());
        assert_eq!(t.segments_closed, 0);
        // Reopening works and advances seq.
        let scp = t.open_segment(snap(4));
        assert_eq!(scp.seq, 1);
    }

    #[test]
    fn ass_slots() {
        let mut a = Ass::new();
        assert!(!a.has_saved());
        a.record(snap(0x99));
        assert!(a.has_saved());
        let scp = Checkpoint {
            snapshot: snap(0x50),
            seq: 7,
            tag: 0,
        };
        a.stage_scp(scp);
        assert!(a.has_scp());
        assert_eq!(a.take_scp().unwrap().seq, 7);
        assert!(!a.has_scp());
        assert_eq!(a.take_saved().unwrap().pc, 0x99);
        assert!(!a.has_saved());
    }
}
