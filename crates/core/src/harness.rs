//! The verified-execution run harness.
//!
//! [`VerifiedRun`] drives any [`Scenario`](crate::Scenario)-built platform — from the
//! paper's dual-core (Fig. 4) and triple-core (Fig. 6) single-workload
//! configurations up to many-core SoCs with arbitrated shared checkers
//! (Fig. 8-style) — through its guest programs without a full OS: it
//! interleaves ready cores, executes the scenario's fault plan, feeds
//! observers, and produces a [`RunReport`].
//!
//! Construct runs with [`Scenario`](crate::Scenario) (the old `dual_core`/`triple_core`
//! constructor shims are gone; `tests/scenario_validation.rs` pins the
//! equivalent builder topologies).

use crate::checker::{CheckPhase, CheckerState};
use crate::detect::{DetectionEvent, SegmentResult};
use crate::engine::{EngineStep, FlexSoc};
use crate::fabric::{Fabric, FabricConfig};
use crate::scenario::{
    Binding, FaultDriver, FaultPlan, Injection, Observer, RecoveryPolicy, ResolvedTopology,
    ScenarioError,
};
use crate::share::{ArbiterStats, CheckerArbiter};
use crate::sink::{EventBuffer, RunEvent};
use crate::trace::TraceObserver;
use flexstep_isa::asm::Program;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_sim::{
    ArchSnapshot, Clock, PairingAction, PairingEvent, PairingSchedule, PrivMode, ReliabilityMode,
    Soc, SocConfig, StepKind, TrapCause,
};
use std::collections::VecDeque;

/// Per-main-core outcome of a verified run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MainReport {
    /// The main core index.
    pub core: usize,
    /// Whether this main reached its final `ecall`.
    pub completed: bool,
    /// Cycle at which this main finished (0 if it did not).
    pub finish_cycle: u64,
    /// Instructions retired by this main (re-executions included).
    pub retired: u64,
    /// Rollback recoveries performed on this main
    /// ([`RecoveryPolicy::Rollback`] only; 0 under `Detect`).
    pub recoveries: u64,
    /// Detections this main could not recover from (retry budget
    /// exhausted or no rollback anchor available).
    pub unrecovered: u64,
    /// Cycles of discarded forward progress across all rollbacks
    /// (segment-open to rollback, per recovery).
    pub wasted_cycles: u64,
    /// Per-recovery detection → verified-again latency, in cycles, in
    /// completion order.
    pub recovery_latency_cycles: Vec<u64>,
}

/// A typed, non-fatal condition raised during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunWarning {
    /// A main core lost every checker (permanent failures) and degraded
    /// to unchecked execution from `from_cycle` on.
    UncheckedExecution {
        /// The degraded main core.
        main: usize,
        /// Cycle from which execution is unverified.
        from_cycle: u64,
    },
    /// A main exhausted [`RecoveryPolicy::Rollback`]'s `max_retries`
    /// consecutive rollbacks (or had no anchor to roll back to); the
    /// detection at `at_cycle` was recorded detect-only.
    RetriesExhausted {
        /// The unrecovered main core.
        main: usize,
        /// Segment whose detection went unrecovered.
        seq: u64,
        /// Cycle of the unrecovered detection.
        at_cycle: u64,
    },
    /// An armed fault shot expired while its target main was running
    /// unchecked *by policy* ([`ReliabilityMode::Unchecked`], or inside
    /// a pairing-released window): the corruption window closed with no
    /// checker to observe it. Policy-unchecked windows must never
    /// swallow shots silently.
    ShotInUncheckedWindow {
        /// The policy-unchecked main core.
        main: usize,
        /// Cycle of the expiry.
        at_cycle: u64,
    },
}

/// Per-main-slot reliability-policy accounting.
///
/// Only populated — and only serialized by [`RunReport::to_json`] —
/// when the scenario actually uses the policy layer (a non-default
/// [`ReliabilityMode`] or a pairing schedule), so default
/// all-`SegmentCheck` reports stay byte-identical to pre-policy runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeStats {
    /// The main core index.
    pub core: usize,
    /// The slot's configured reliability mode.
    pub mode: ReliabilityMode,
    /// Cycles this slot executed with a live checker channel.
    pub checked_cycles: u64,
    /// Cycles this slot executed unchecked (mode, released window, or
    /// checker-loss degradation).
    pub unchecked_cycles: u64,
    /// Cycles this main stalled extracting checkpoints (SCP on open
    /// plus IC/ECP on close) — the per-mode checkpoint overhead.
    pub checkpoint_stall_cycles: u64,
    /// Pairing-policy checker acquires applied on this slot.
    pub acquires: u64,
    /// Pairing-policy checker releases applied on this slot.
    pub releases: u64,
    /// Matched detections attributed to this slot
    /// ([`RunReport::matched_detections`]).
    pub detections: u64,
    /// Sum of this slot's matched detection latencies, in cycles.
    pub detection_latency_total: u64,
}

impl ModeStats {
    /// Checked fraction of this slot's executed cycles (1.0 for a
    /// checked slot that never ran, 0.0 for an unchecked one).
    pub fn coverage(&self) -> f64 {
        let total = self.checked_cycles + self.unchecked_cycles;
        if total == 0 {
            return if self.mode.is_checked() { 1.0 } else { 0.0 };
        }
        self.checked_cycles as f64 / total as f64
    }

    /// Mean matched detection latency, in cycles.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        (self.detections > 0).then(|| self.detection_latency_total as f64 / self.detections as f64)
    }
}

/// Outcome of a verified run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Whether every main core reached its final `ecall` within the step
    /// budget.
    pub completed: bool,
    /// Cycle at which the last main core finished (excludes checker
    /// drain).
    pub main_finish_cycle: u64,
    /// Cycle at which the last checker drained.
    pub drain_cycle: u64,
    /// Instructions retired across all main cores.
    pub retired: u64,
    /// Segments verified across all checkers.
    pub segments_checked: u64,
    /// Segments that failed verification.
    pub segments_failed: u64,
    /// Detection events raised during the run.
    pub detections: Vec<DetectionEvent>,
    /// Backpressure stalls suffered by main cores.
    pub backpressure_stalls: u64,
    /// Engine steps executed over the run's lifetime (throughput
    /// accounting for the perf harness).
    pub engine_steps: u64,
    /// Per-main outcomes, in channel order.
    pub per_main: Vec<MainReport>,
    /// Arbitration statistics, one entry per shared checker (empty for
    /// dedicated topologies).
    pub arbiters: Vec<ArbiterStats>,
    /// Fault-plan injections that landed during the run.
    pub injections: Vec<Injection>,
    /// Shots the fault plan scheduled (armed). Always
    /// `injections.len() <= shots_armed`.
    pub shots_armed: u64,
    /// Armed shots that expired without landing: their target stream
    /// drained for good, or the run completed before their arming cycle.
    /// They never appear in [`RunReport::injections`].
    pub shots_expired: u64,
    /// Checker cores permanently failed by
    /// [`FaultPlan::kill_checker_at`] shots that fired.
    pub checkers_lost: u64,
    /// Re-pair latency of each orphaned main that was re-granted a
    /// surviving checker, in cycles from the kill to the new grant.
    pub repair_latency_cycles: Vec<u64>,
    /// Non-fatal degradation conditions raised during the run.
    pub warnings: Vec<RunWarning>,
    /// Per-slot reliability-policy accounting; empty (and absent from
    /// the JSON) unless the scenario uses a non-default mode or a
    /// pairing schedule.
    pub mode_stats: Vec<ModeStats>,
}

/// One (injection, detection) pair produced by the one-to-one
/// attribution of [`RunReport::matched_detections`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchedDetection {
    /// The main core whose stream was corrupted and caught.
    pub main_core: usize,
    /// The checker core that raised the detection — in shared-checker
    /// topologies this identifies the pool member, so per-pool latency
    /// splits are computable.
    pub checker_core: usize,
    /// Cycle at which the injection landed.
    pub injected_at: u64,
    /// Cycle at which the checker flagged the mismatch.
    pub detected_at: u64,
}

impl MatchedDetection {
    /// Error-detection latency of this pair, in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.detected_at - self.injected_at
    }
}

impl RunReport {
    /// Pairs injections and detections one-to-one: each detection is
    /// attributed to the *earliest unconsumed* preceding injection on
    /// the same main core, and each injection is consumed by at most
    /// one detection.
    ///
    /// This is the campaign attribution rule (DESIGN.md §10). The naive
    /// latest-preceding rule double-counts in dense campaigns — two
    /// detections after one injection yield two "matches", so
    /// `detected` can exceed `injected` and latencies collapse toward
    /// the newest shot. Consumption makes `matched_detections().len()
    /// <= injections.len()` hold by construction.
    ///
    /// Runs in `O(n log n + m log m)` over `n` injections and `m`
    /// detections. Pairs are returned in detection-time order.
    pub fn matched_detections(&self) -> Vec<MatchedDetection> {
        use std::collections::HashMap;
        // Per-main injection cycles in time order, with a cursor at the
        // earliest unconsumed shot.
        let mut pending: HashMap<usize, (Vec<u64>, usize)> = HashMap::new();
        for i in &self.injections {
            pending.entry(i.main_core).or_default().0.push(i.at_cycle);
        }
        for (cycles, _) in pending.values_mut() {
            cycles.sort_unstable();
        }
        let mut order: Vec<&DetectionEvent> = self.detections.iter().collect();
        order.sort_by_key(|d| d.detected_at);
        let mut out = Vec::new();
        for d in order {
            let Some((cycles, cursor)) = pending.get_mut(&d.main_core) else {
                continue;
            };
            if *cursor < cycles.len() && cycles[*cursor] <= d.detected_at {
                out.push(MatchedDetection {
                    main_core: d.main_core,
                    checker_core: d.checker_core,
                    injected_at: cycles[*cursor],
                    detected_at: d.detected_at,
                });
                *cursor += 1;
            }
        }
        out
    }

    /// Renders the report as a JSON object (hand-rolled; see
    /// [`json`](crate::json)).
    pub fn to_json(&self) -> String {
        use crate::json::{array, numbers_u64, JsonObject};
        let mains = array(self.per_main.iter().map(|m| {
            let mut o = JsonObject::new();
            o.field_u64("core", m.core as u64)
                .field_bool("completed", m.completed)
                .field_u64("finish_cycle", m.finish_cycle)
                .field_u64("retired", m.retired)
                .field_u64("recoveries", m.recoveries)
                .field_u64("unrecovered", m.unrecovered)
                .field_u64("wasted_cycles", m.wasted_cycles)
                .field_raw(
                    "recovery_latency_cycles",
                    &numbers_u64(m.recovery_latency_cycles.iter().copied()),
                );
            o.finish()
        }));
        let warnings = array(self.warnings.iter().map(|w| {
            let mut o = JsonObject::new();
            match w {
                RunWarning::UncheckedExecution { main, from_cycle } => {
                    o.field_str("kind", "unchecked_execution")
                        .field_u64("main", *main as u64)
                        .field_u64("from_cycle", *from_cycle);
                }
                RunWarning::RetriesExhausted {
                    main,
                    seq,
                    at_cycle,
                } => {
                    o.field_str("kind", "retries_exhausted")
                        .field_u64("main", *main as u64)
                        .field_u64("seq", *seq)
                        .field_u64("at_cycle", *at_cycle);
                }
                RunWarning::ShotInUncheckedWindow { main, at_cycle } => {
                    o.field_str("kind", "shot_in_unchecked_window")
                        .field_u64("main", *main as u64)
                        .field_u64("at_cycle", *at_cycle);
                }
            }
            o.finish()
        }));
        let arbiters = array(self.arbiters.iter().map(|a| {
            let mut o = JsonObject::new();
            o.field_u64("immediate_grants", a.immediate_grants)
                .field_u64("conflicts", a.conflicts)
                .field_u64("switches", a.switches);
            o.finish()
        }));
        let detections = array(self.detections.iter().map(|d| {
            let mut o = JsonObject::new();
            o.field_u64("main_core", d.main_core as u64)
                .field_u64("checker_core", d.checker_core as u64)
                .field_u64("segment_seq", d.segment_seq)
                .field_u64("tag", d.tag)
                .field_str("kind", &d.kind.to_string())
                .field_u64("detected_at", d.detected_at);
            o.finish()
        }));
        let injections = array(self.injections.iter().map(|i| {
            let mut o = JsonObject::new();
            o.field_u64("main_core", i.main_core as u64)
                .field_str("target", &i.target.to_string())
                .field_array("bits", i.bits.iter().map(u32::to_string))
                .field_u64("at_cycle", i.at_cycle);
            o.finish()
        }));
        let mut o = JsonObject::new();
        o.field_bool("completed", self.completed)
            .field_u64("main_finish_cycle", self.main_finish_cycle)
            .field_u64("drain_cycle", self.drain_cycle)
            .field_u64("retired", self.retired)
            .field_u64("segments_checked", self.segments_checked)
            .field_u64("segments_failed", self.segments_failed)
            .field_u64("backpressure_stalls", self.backpressure_stalls)
            .field_u64("engine_steps", self.engine_steps)
            .field_u64("shots_armed", self.shots_armed)
            .field_u64("shots_expired", self.shots_expired)
            .field_u64("checkers_lost", self.checkers_lost)
            .field_raw(
                "repair_latency_cycles",
                &crate::json::numbers_u64(self.repair_latency_cycles.iter().copied()),
            )
            .field_raw("warnings", &warnings)
            .field_raw("per_main", &mains)
            .field_raw("arbiters", &arbiters)
            .field_raw("detections", &detections)
            .field_raw("injections", &injections);
        // Emitted only when the policy layer is in play: the field's
        // absence keeps default reports byte-identical to pre-policy
        // goldens.
        if !self.mode_stats.is_empty() {
            let modes = array(self.mode_stats.iter().map(|m| {
                let mut o = JsonObject::new();
                o.field_u64("core", m.core as u64)
                    .field_str("mode", m.mode.label())
                    .field_u64("checked_cycles", m.checked_cycles)
                    .field_u64("unchecked_cycles", m.unchecked_cycles)
                    .field_u64("checkpoint_stall_cycles", m.checkpoint_stall_cycles)
                    .field_u64("acquires", m.acquires)
                    .field_u64("releases", m.releases)
                    .field_u64("detections", m.detections)
                    .field_u64("detection_latency_total", m.detection_latency_total);
                o.finish()
            }));
            o.field_raw("mode_stats", &modes);
        }
        o.finish()
    }
}

/// A verified-execution driver over any scenario topology.
///
/// Build one with [`Scenario`](crate::Scenario):
///
/// ```
/// use flexstep_core::{FabricConfig, Scenario, Topology};
/// use flexstep_isa::{asm::Assembler, XReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Assembler::new("tiny");
/// asm.li(XReg::A0, 3);
/// asm.label("l")?;
/// asm.addi(XReg::A0, XReg::A0, -1);
/// asm.bnez(XReg::A0, "l");
/// asm.ecall();
/// let program = asm.finish()?;
///
/// let mut run = Scenario::new(&program)
///     .cores(2)
///     .topology(Topology::PairedLockstep)
///     .fabric(FabricConfig::paper())
///     .build()?;
/// let report = run.run_to_completion(1_000_000);
/// assert!(report.completed);
/// assert_eq!(report.segments_failed, 0);
/// # Ok(())
/// # }
/// ```
pub struct VerifiedRun {
    /// The platform under test (crate-internal; use the accessor
    /// methods).
    pub(crate) fs: FlexSoc,
    /// Main cores in channel order.
    mains: Vec<usize>,
    /// Checker cores, ascending.
    checkers: Vec<usize>,
    /// Arbiters for shared checkers (empty for dedicated topologies).
    arbiters: Vec<CheckerArbiter>,
    /// Per main slot: index into `arbiters` when the main competes for a
    /// shared checker.
    arbiter_of: Vec<Option<usize>>,
    /// Main slot of each core id (dense reverse map).
    slot_of: Vec<Option<usize>>,
    done: Vec<bool>,
    done_count: usize,
    finish_cycle: Vec<u64>,
    steps: u64,
    observers: Vec<Box<dyn Observer + Send>>,
    faults: FaultDriver,
    injections: Vec<Injection>,
    /// Chrome-trace export configured via [`Scenario::trace_to`]:
    /// the destination path and the owned recording observer.
    trace: Option<(std::path::PathBuf, TraceObserver)>,
    /// Owned event recording enabled via [`Scenario::record_events`].
    recorded: Option<EventBuffer>,
    /// Rollback bookkeeping, one slot per main; `None` under
    /// [`RecoveryPolicy::Detect`] so the detect path stays untouched.
    recovery: Option<RecoveryState>,
    /// Per checker index: permanently failed by a kill shot.
    dead_checkers: Vec<bool>,
    checkers_lost: u64,
    /// Per main slot: cycle of the kill that orphaned it, until the
    /// re-pair grant lands (samples `repair_latencies`).
    repair_pending: Vec<Option<u64>>,
    repair_latencies: Vec<u64>,
    warnings: Vec<RunWarning>,
    /// Per-slot reliability modes, in channel order.
    modes: Vec<ReliabilityMode>,
    /// Dynamic pairing runtime (`None` without a schedule).
    pairing: Option<PairingRuntime>,
    /// Whether the policy layer is in play (any non-default mode or a
    /// pairing schedule). Gates the report's `mode_stats` section and
    /// the coverage accounting, so default scenarios stay byte-identical
    /// to pre-policy runs.
    mode_tracking: bool,
    /// Per-slot checked/unchecked cycle accumulators (only meaningful
    /// under `mode_tracking`).
    coverage: Vec<Coverage>,
}

/// Runtime state of a [`PairingSchedule`] being executed against the
/// arbiters: the sorted event list plus per-slot pending actions.
#[derive(Debug)]
struct PairingRuntime {
    /// Schedule events, sorted by cycle.
    events: Vec<PairingEvent>,
    /// Cursor into `events` (everything before it is already pending or
    /// applied).
    next: usize,
    /// Per slot: a due action not yet applied. Releases defer to the
    /// next segment boundary; a later due event overrides an earlier
    /// one still pending.
    pending: Vec<Option<PairingAction>>,
    /// Per slot: currently policy-released (running unchecked until the
    /// next acquire).
    released: Vec<bool>,
    /// Per slot: `(acquires, releases)` applied so far.
    counts: Vec<(u64, u64)>,
}

/// Checked/unchecked cycle accumulator for one main slot. Interval
/// arithmetic over transitions: `since` marks the start of the current
/// interval, `live` which bucket it lands in. Freezing at the main's
/// finish keeps checker-drain cycles out of both buckets.
#[derive(Debug, Clone, Copy)]
struct Coverage {
    checked: u64,
    unchecked: u64,
    since: u64,
    live: bool,
    frozen: bool,
}

impl Coverage {
    /// Closes the current interval at `now` and starts the next with
    /// the given liveness. No-op once frozen.
    fn transition(&mut self, now: u64, live: bool) {
        if self.frozen {
            return;
        }
        let d = now.saturating_sub(self.since);
        if self.live {
            self.checked += d;
        } else {
            self.unchecked += d;
        }
        self.since = now;
        self.live = live;
    }

    /// The `(checked, unchecked)` totals with the open interval settled
    /// at `now`.
    fn settled(mut self, now: u64) -> (u64, u64) {
        let live = self.live;
        self.transition(now, live);
        (self.checked, self.unchecked)
    }
}

/// Rollback bookkeeping for every main (only allocated under
/// [`RecoveryPolicy::Rollback`]).
#[derive(Debug)]
struct RecoveryState {
    max_retries: u32,
    slots: Vec<RecoverySlot>,
}

/// One rollback anchor: everything needed to restart a main at a
/// checking-segment boundary. Captured when the segment opens — the SCP
/// snapshot *is* the boundary state, and the journal mark brackets the
/// stores the re-execution must undo.
#[derive(Debug)]
struct Anchor {
    seq: u64,
    snapshot: ArchSnapshot,
    journal_mark: u64,
    open_cycle: u64,
}

#[derive(Debug, Default)]
struct RecoverySlot {
    /// Anchors of segments without a verdict yet, oldest first.
    anchors: VecDeque<Anchor>,
    /// Per consumer index: highest segment seq with a verdict (clean or
    /// failed). Anchors retire once *every* consumer has resolved them.
    resolved: Vec<Option<u64>>,
    /// Detection cycle of the in-flight recovery, until a segment
    /// verifies clean again.
    pending_since: Option<u64>,
    /// Consecutive rollbacks without an intervening clean verdict.
    consecutive: u32,
    /// Memo block: the re-executed stream must be replayed for real
    /// until it verifies clean (DESIGN.md §14).
    blocked: bool,
    recoveries: u64,
    unrecovered: u64,
    wasted_cycles: u64,
    latencies: Vec<u64>,
}

impl RecoverySlot {
    /// Retires every anchor all consumers have resolved and returns the
    /// journal mark memory can be truncated to (`u64::MAX` = everything;
    /// the caller clamps to the live mark).
    fn retire_resolved(&mut self) -> Option<u64> {
        // An anchor can only retire once every consumer has issued a
        // verdict for its segment.
        let mut min = u64::MAX;
        for r in &self.resolved {
            min = min.min((*r)?);
        }
        let mut truncate_to = None;
        while let Some(front) = self.anchors.front() {
            if front.seq > min {
                break;
            }
            self.anchors.pop_front();
            truncate_to = Some(match self.anchors.front() {
                Some(next) => next.journal_mark,
                None => u64::MAX,
            });
        }
        truncate_to
    }
}

impl std::fmt::Debug for VerifiedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedRun")
            .field("mains", &self.mains)
            .field("checkers", &self.checkers)
            .field("arbiters", &self.arbiters.len())
            .field("done", &self.done)
            .field("steps", &self.steps)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

// The tentpole guarantee of the event-sink design: a built run (with
// its observers, trace recorder, and event buffer) can migrate across
// worker threads. Regressing any field to a shared handle breaks this
// assertion at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<VerifiedRun>();
};

/// Wait-poll granularity for a [`ReliabilityMode::FullLockstep`] main
/// holding at a checkpoint: the main re-checks its verdict every this
/// many cycles while a complete segment sits unverified in its FIFO.
/// Small enough that detection follows the checker's verdict almost
/// immediately; large enough not to dominate the ready queue.
const LOCKSTEP_WAIT_QUANTUM: u64 = 8;

impl VerifiedRun {
    /// Builds the platform from a validated scenario (called by
    /// [`Scenario::build`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_scenario(
        cores: usize,
        resolved: ResolvedTopology,
        programs: Vec<Program>,
        fabric: FabricConfig,
        sched_mode: Option<flexstep_sim::SchedMode>,
        fault_plan: FaultPlan,
        recovery_policy: RecoveryPolicy,
        observers: Vec<Box<dyn Observer + Send>>,
        trace: Option<(std::path::PathBuf, TraceObserver)>,
        record_events: bool,
        models: Vec<flexstep_sim::CoreModelKind>,
        modes: Vec<ReliabilityMode>,
        pairing: Option<PairingSchedule>,
        track_reliability: bool,
    ) -> Result<Self, ScenarioError> {
        let ResolvedTopology {
            mains,
            checkers,
            binding,
        } = resolved;
        let mut fs = FlexSoc::new(SocConfig::paper(cores), fabric)?;
        fs.op_g_configure(&mains, &checkers)?;
        // Heterogeneous mains: swap in each slot's timing model before
        // anything runs. Checkers keep the in-order default — replay
        // correctness (and the verdict memo's recorded profiles) assume
        // the minimal checker microarchitecture.
        for (slot, kind) in models.iter().enumerate() {
            fs.soc.set_core_model(mains[slot], *kind);
        }
        // Mode dispatch, part 1: checkpoint granularity. FullLockstep
        // runs at segment limit 1 (a checkpoint per retired user
        // instruction), CheckpointOnly at a coarse multiple of the base;
        // SegmentCheck keeps the configured limit untouched.
        let base_limit = fs.fabric.config().segment_limit;
        for (slot, mode) in modes.iter().enumerate() {
            if let Some(limit) = mode.segment_limit(base_limit) {
                fs.fabric.unit_mut(mains[slot]).tracker.set_limit(limit);
            }
        }

        // Shared checkers get one arbiter each; mains request in channel
        // order (first request per checker is granted immediately, the
        // rest queue — the §III-C conflict path).
        let mut arbiters: Vec<CheckerArbiter> = Vec::new();
        let mut arbiter_of: Vec<Option<usize>> = vec![None; mains.len()];
        for (slot, bind) in binding.iter().enumerate() {
            let main = mains[slot];
            // Mode dispatch, part 2: an Unchecked slot never associates a
            // channel at all — it runs as a plain core, its would-be
            // dedicated checker idles and parks, and a shared pool never
            // sees it in the queue.
            if !modes[slot].is_checked() {
                continue;
            }
            match bind {
                Binding::Dedicated(cs) => {
                    fs.op_m_associate(main, cs)?;
                    fs.op_m_check(main, true)?;
                }
                Binding::Shared(ch) => {
                    let idx = match arbiters.iter().position(|a| a.checker() == *ch) {
                        Some(i) => i,
                        None => {
                            arbiters.push(CheckerArbiter::new(*ch));
                            arbiters.len() - 1
                        }
                    };
                    arbiters[idx].request(&mut fs.fabric, main)?;
                    fs.fabric.set_check(main, true)?;
                    arbiter_of[slot] = Some(idx);
                }
            }
        }
        for &c in &checkers {
            fs.op_c_check_state(c, true)?;
            fs.soc.core_mut(c).unpark();
        }
        for (slot, program) in programs.iter().enumerate() {
            let main = mains[slot];
            fs.soc.load_program(program);
            fs.soc.core_mut(main).state.pc = program.entry;
            fs.soc.core_mut(main).state.prv = PrivMode::User;
            fs.soc.core_mut(main).unpark();
        }
        if let Some(mode) = sched_mode {
            fs.soc.set_sched_mode(mode);
        }
        let mut slot_of = vec![None; cores];
        for (slot, &m) in mains.iter().enumerate() {
            slot_of[m] = Some(slot);
        }
        let n = mains.len();
        // Rollback recovery journals every main's stores (undo log for
        // re-execution); under Detect no journal exists and the memory
        // write path is untouched.
        let recovery = match recovery_policy {
            RecoveryPolicy::Detect => None,
            RecoveryPolicy::Rollback { max_retries } => {
                let slots = binding
                    .iter()
                    .map(|b| RecoverySlot {
                        resolved: match b {
                            Binding::Dedicated(cs) => vec![None; cs.len()],
                            Binding::Shared(_) => vec![None; 1],
                        },
                        ..RecoverySlot::default()
                    })
                    .collect();
                for &m in &mains {
                    fs.soc.mem.enable_journal(m);
                }
                Some(RecoveryState { max_retries, slots })
            }
        };
        let num_checkers = checkers.len();
        let mode_tracking = track_reliability
            || pairing.is_some()
            || modes.iter().any(|m| *m != ReliabilityMode::SegmentCheck);
        let coverage = modes
            .iter()
            .map(|m| Coverage {
                checked: 0,
                unchecked: 0,
                since: 0,
                live: m.is_checked(),
                frozen: false,
            })
            .collect();
        let pairing = pairing.map(|schedule| PairingRuntime {
            events: schedule.events().to_vec(),
            next: 0,
            pending: vec![None; n],
            released: vec![false; n],
            counts: vec![(0, 0); n],
        });
        let mut run = VerifiedRun {
            fs,
            mains,
            checkers,
            arbiters,
            arbiter_of,
            slot_of,
            done: vec![false; n],
            done_count: 0,
            finish_cycle: vec![0; n],
            steps: 0,
            observers,
            faults: FaultDriver::new(fault_plan),
            injections: Vec::new(),
            trace,
            recorded: record_events.then(EventBuffer::new),
            recovery,
            dead_checkers: vec![false; num_checkers],
            checkers_lost: 0,
            repair_pending: vec![None; n],
            repair_latencies: Vec::new(),
            warnings: Vec::new(),
            modes,
            pairing,
            mode_tracking,
            coverage,
        };
        run.sync_fault_memo_blocks();
        // The build-time grants above happen before the first step;
        // surface them so traces show checker occupancy from cycle 0.
        let grants: Vec<(usize, usize)> = run
            .arbiters
            .iter()
            .filter_map(|a| a.granted().map(|g| (a.checker(), g)))
            .collect();
        for (checker, granted) in grants {
            run.emit(RunEvent::CheckerGranted {
                checker,
                main: granted,
                cycle: 0,
            });
        }
        Ok(run)
    }

    /// Dispatches one event to every attached sink: live observers
    /// first, then the by-value trace observer, then the recorded
    /// buffer. One choke point keeps the three views consistent.
    fn emit(&mut self, ev: RunEvent) {
        for o in &mut self.observers {
            ev.dispatch(o.as_mut());
        }
        if let Some((_, t)) = &mut self.trace {
            ev.dispatch(t);
        }
        if let Some(buf) = &mut self.recorded {
            buf.push(ev);
        }
    }

    /// Whether any sink is attached (observer dispatch is skipped
    /// entirely on unobserved runs — the hot campaign path).
    fn observing(&self) -> bool {
        !self.observers.is_empty() || self.trace.is_some() || self.recorded.is_some()
    }

    // ----- accessors --------------------------------------------------------

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.fs.soc.now()
    }

    /// The platform clock.
    pub fn clock(&self) -> Clock {
        self.fs.soc.clock()
    }

    /// The underlying simulator (cores, memory).
    pub fn soc(&self) -> &Soc {
        &self.fs.soc
    }

    /// Mutable simulator access (test/tooling escape hatch).
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.fs.soc
    }

    /// The FlexStep fabric state (FIFOs, stats, detections).
    pub fn fabric(&self) -> &Fabric {
        &self.fs.fabric
    }

    /// Mutable fabric access (custom fault injection, reconfiguration
    /// experiments).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fs.fabric
    }

    /// The whole platform — simulator plus fabric plus the Tab. I
    /// operations (reconfiguration experiments).
    pub fn platform_mut(&mut self) -> &mut FlexSoc {
        &mut self.fs
    }

    /// Checker-role state of a core.
    pub fn checker_state(&self, core: usize) -> &CheckerState {
        self.fs.checker_state(core)
    }

    /// The main cores, in channel order.
    pub fn mains(&self) -> &[usize] {
        &self.mains
    }

    /// The checker cores, ascending.
    pub fn checkers(&self) -> &[usize] {
        &self.checkers
    }

    /// Arbitration state per shared checker (empty for dedicated
    /// topologies).
    pub fn arbiter_stats(&self) -> Vec<ArbiterStats> {
        self.arbiters.iter().map(|a| a.stats).collect()
    }

    /// The main currently granted a shared checker, if that checker is
    /// connected.
    pub fn granted_main(&self, checker: usize) -> Option<usize> {
        self.arbiters
            .iter()
            .find(|a| a.checker() == checker)
            .and_then(CheckerArbiter::granted)
    }

    /// The Chrome-trace recorder configured via [`Scenario::trace_to`](crate::Scenario::trace_to)
    /// (`None` when tracing is off). Borrow it to read the trace
    /// mid-run.
    pub fn trace(&self) -> Option<&TraceObserver> {
        self.trace.as_ref().map(|(_, t)| t)
    }

    /// Writes the Chrome trace configured via [`Scenario::trace_to`](crate::Scenario::trace_to) to
    /// its path and returns that path (`Ok(None)` when tracing is off).
    /// Call after the run; the file loads in `chrome://tracing` or
    /// Perfetto.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_trace(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        match &self.trace {
            Some((path, t)) => {
                t.write_to(path)?;
                Ok(Some(path.clone()))
            }
            None => Ok(None),
        }
    }

    /// The recorded event buffer enabled via
    /// [`Scenario::record_events`](crate::Scenario::record_events) (`None` when recording is off).
    pub fn events(&self) -> Option<&EventBuffer> {
        self.recorded.as_ref()
    }

    /// Replays the recorded event buffer into `observer` — the post-run
    /// equivalent of having attached it live. A no-op when
    /// [`Scenario::record_events`](crate::Scenario::record_events) was not enabled.
    pub fn replay_events(&self, observer: &mut dyn Observer) {
        if let Some(buf) = &self.recorded {
            buf.replay(observer);
        }
    }

    /// Takes ownership of the recorded event buffer, leaving recording
    /// enabled with a fresh empty buffer (`None` when recording is
    /// off). Workers hand buffers to an aggregator this way.
    pub fn take_events(&mut self) -> Option<EventBuffer> {
        self.recorded.as_mut().map(std::mem::take)
    }

    /// Whether every main core has reached its final `ecall`.
    pub fn main_done(&self) -> bool {
        self.done_count == self.mains.len()
    }

    /// Whether every stream has drained and every checker returned to
    /// the wait-for-SCP state.
    pub fn drained(&self) -> bool {
        self.mains
            .iter()
            .all(|&m| self.fs.fabric.unit(m).fifo.is_fully_drained())
            && self
                .checkers
                .iter()
                .all(|&c| self.fs.fabric.unit(c).checker.phase == CheckPhase::WaitScp)
    }

    /// Selects the ready-core scheduler; see
    /// [`SchedMode`](flexstep_sim::SchedMode). Both modes produce
    /// bit-identical runs — `LinearScan` exists for A/B benchmarking.
    pub fn set_sched_mode(&mut self, mode: flexstep_sim::SchedMode) {
        self.fs.soc.set_sched_mode(mode);
    }

    // ----- stepping ---------------------------------------------------------

    fn complete(&self) -> bool {
        self.main_done() && self.drained() && self.arbiters.iter().all(CheckerArbiter::is_idle)
    }

    /// Expires every still-pending shot (the run is complete; nothing
    /// is left to corrupt) and notifies observers. Idempotent.
    fn expire_remaining_shots(&mut self) {
        let now = self.fs.soc.now();
        for channel in self.faults.expire_remaining() {
            let main = self.mains[channel];
            self.note_unchecked_expiry(channel, now);
            self.emit(RunEvent::ShotExpired { main, cycle: now });
        }
        self.sync_fault_memo_blocks();
    }

    /// Re-derives the per-main `memo_blocked` flags from the fault
    /// driver: any channel with a shot still armed or in flight must be
    /// replayed for real (DESIGN.md §13 — a cached verdict would mask
    /// the injection window). Called whenever the pending set changes.
    fn sync_fault_memo_blocks(&mut self) {
        for &m in &self.mains {
            self.fs.fabric.unit_mut(m).memo_blocked = false;
        }
        let blocked: Vec<usize> = self.faults.pending_channels().collect();
        for channel in blocked {
            let main = self.mains[channel];
            self.fs.fabric.unit_mut(main).memo_blocked = true;
        }
        // A rolled-back stream is likewise blocked until it verifies
        // clean again: its re-execution must be replayed for real, never
        // served a stale cached verdict (DESIGN.md §14).
        if let Some(rec) = &self.recovery {
            for (slot, s) in rec.slots.iter().enumerate() {
                if s.blocked {
                    let main = self.mains[slot];
                    self.fs.fabric.unit_mut(main).memo_blocked = true;
                }
            }
        }
        // Shots fire between engine steps, so superblock batching would
        // blur the injection cycle: single-step while any shot is armed
        // or in flight, and resume batching once the plan has played out.
        self.fs.set_main_batching(!self.faults.pending());
    }

    /// Whether a checker *core* has been killed by a fault shot.
    fn checker_is_dead(&self, core: usize) -> bool {
        self.checkers
            .iter()
            .position(|&c| c == core)
            .is_some_and(|i| self.dead_checkers[i])
    }

    /// Samples the kill → re-grant repair latency when an orphaned main
    /// gets its replacement checker.
    fn sample_repair_latency(&mut self, main: usize, now: u64) {
        if let Some(slot) = self.slot_of[main] {
            if let Some(killed_at) = self.repair_pending[slot].take() {
                self.repair_latencies.push(now.saturating_sub(killed_at));
            }
        }
    }

    // ----- dynamic pairing --------------------------------------------------

    /// Applies due pairing-schedule transitions. Releases wait for the
    /// slot's segment boundary — disabling checking mid-segment would
    /// abandon the open segment and strand its checker waiting for an
    /// ECP that never arrives — while acquires apply immediately. A
    /// later due event for the same slot overrides one still pending.
    fn drive_pairing(&mut self) {
        let now = self.fs.soc.now();
        {
            let p = self.pairing.as_mut().expect("pairing runtime");
            while p.next < p.events.len() && p.events[p.next].at_cycle <= now {
                let ev = p.events[p.next];
                p.pending[ev.slot] = Some(ev.action);
                p.next += 1;
            }
        }
        for slot in 0..self.mains.len() {
            let pending = self.pairing.as_ref().expect("pairing runtime").pending[slot];
            match pending {
                Some(PairingAction::Release) => self.try_release(slot, now),
                Some(PairingAction::Acquire) => self.try_acquire(slot, now),
                None => {}
            }
        }
    }

    /// Applies one pending release if the slot sits at a segment
    /// boundary; otherwise leaves it pending for the next step.
    fn try_release(&mut self, slot: usize, now: u64) {
        let main = self.mains[slot];
        let already = self.pairing.as_ref().expect("pairing runtime").released[slot];
        if already || self.done[slot] || !self.fs.fabric.unit(main).checking_enabled {
            // Nothing to release: finished slots released in their done
            // handling, degraded slots have no channel left. Drop it.
            self.pairing.as_mut().expect("pairing runtime").pending[slot] = None;
            return;
        }
        if self.fs.fabric.unit(main).tracker.is_open() {
            return; // not at a boundary yet; retry next step
        }
        self.fs.fabric.set_check(main, false).expect("main core");
        if let Some(arb) = self.arbiter_of[slot] {
            // Hand the shared checker back: the arbiter completes the
            // hand-over once the buffered stream drains (buffered
            // segments are still verified — release stops *production*,
            // not verification of data already logged).
            self.arbiters[arb].release(main);
        }
        {
            let p = self.pairing.as_mut().expect("pairing runtime");
            p.pending[slot] = None;
            p.released[slot] = true;
            p.counts[slot].1 += 1;
        }
        self.coverage[slot].transition(now, false);
        self.emit(RunEvent::CheckerReleased { main, cycle: now });
    }

    /// Applies one pending acquire: re-enables checking and, for shared
    /// slots, re-enters arbitration — retracting a release the arbiter
    /// has not consumed yet, or adopting back in after a hand-over.
    fn try_acquire(&mut self, slot: usize, now: u64) {
        let main = self.mains[slot];
        let released = self.pairing.as_ref().expect("pairing runtime").released[slot];
        self.pairing.as_mut().expect("pairing runtime").pending[slot] = None;
        if !released || self.done[slot] {
            return;
        }
        if let Some(arb) = self.arbiter_of[slot] {
            self.arbiters[arb].retract_release(main);
            if !self.arbiters[arb].is_serving(main) {
                let immediate = self.arbiters[arb]
                    .adopt(&mut self.fs.fabric, main)
                    .expect("released main is pending");
                if immediate {
                    let checker = self.arbiters[arb].checker();
                    self.fs.soc.core_mut(checker).unpark();
                    self.emit(RunEvent::CheckerGranted {
                        checker,
                        main,
                        cycle: now,
                    });
                }
            }
        }
        self.fs
            .fabric
            .set_check(main, true)
            .expect("released slot keeps its association");
        {
            let p = self.pairing.as_mut().expect("pairing runtime");
            p.released[slot] = false;
            p.counts[slot].0 += 1;
        }
        self.coverage[slot].transition(now, true);
        self.emit(RunEvent::CheckerAcquired { main, cycle: now });
    }

    /// Raises the typed warning when a shot expires while its target
    /// main runs unchecked *by policy* (mode or released window): such
    /// shots must never vanish silently.
    fn note_unchecked_expiry(&mut self, channel: usize, now: u64) {
        if !self.mode_tracking {
            return;
        }
        let policy_unchecked = !self.modes[channel].is_checked()
            || self.pairing.as_ref().is_some_and(|p| p.released[channel]);
        if policy_unchecked {
            self.warnings.push(RunWarning::ShotInUncheckedWindow {
                main: self.mains[channel],
                at_cycle: now,
            });
        }
    }

    /// Reverses the done-handling of a main that must resume producing
    /// (rollback recovery re-executes its tail).
    fn unfinish_if_done(&mut self, slot: usize) {
        if !self.done[slot] {
            return;
        }
        let main = self.mains[slot];
        self.done[slot] = false;
        self.done_count -= 1;
        self.finish_cycle[slot] = 0;
        self.fs.soc.core_mut(main).unpark();
        if self.arbiter_of[slot].is_some() {
            // Finishing disabled checking; the re-execution needs it back.
            self.fs.fabric.set_check(main, true).expect("main core");
        }
        if self.mode_tracking {
            // Resume coverage accounting where the re-execution resumes;
            // the finish → rollback gap counts in neither bucket.
            let now = self.fs.soc.now();
            let live = self.fs.fabric.unit(main).checking_enabled;
            let c = &mut self.coverage[slot];
            c.frozen = false;
            c.since = now;
            c.live = live;
        }
    }

    /// Rolls `main` back to `anchor`: restores the register file from the
    /// SCP snapshot, undoes its journaled stores, flushes the in-flight
    /// DBC stream and replay state, and re-arms the core at the segment
    /// boundary. The architectural restore is charged as an SCP apply.
    fn apply_rollback(&mut self, slot: usize, anchor: &Anchor) {
        let main = self.mains[slot];
        {
            let core = self.fs.soc.core_mut(main);
            core.state.restore(&anchor.snapshot);
            // Checkpoints carry no privilege: checking segments are
            // user-mode only, so the boundary was user mode.
            core.state.prv = PrivMode::User;
            core.reset_replay_uarch();
            core.clear_reservation();
        }
        self.fs.soc.mem.rollback_journal(main, anchor.journal_mark);
        self.fs.soc.mem.truncate_journal(main, anchor.journal_mark);
        {
            let unit = self.fs.fabric.unit_mut(main);
            // Drops buffered packets and banked fingerprints; the retried
            // stream re-fingerprints from scratch, so a stale memo entry
            // can never match it.
            unit.fifo.reset();
            if unit.tracker.is_open() {
                unit.tracker.abandon();
            }
        }
        let checkers: Vec<usize> = self.fs.fabric.checkers_of(main).to_vec();
        for c in checkers {
            self.fs.fabric.reset_checker_replay(c);
        }
        let cost = self.fs.fabric.config().scp_apply_cycles;
        self.fs.soc.stall_core(main, cost);
        self.unfinish_if_done(slot);
        // A rollback overrides a policy release: the re-execution must
        // be re-verified, so checking comes back on (shared slots
        // re-enter arbitration in the caller's retract/adopt path).
        let was_released = self.pairing.as_ref().is_some_and(|p| p.released[slot]);
        if was_released {
            let now = self.fs.soc.now();
            let _ = self.fs.fabric.set_check(main, true);
            let p = self.pairing.as_mut().expect("pairing runtime");
            p.released[slot] = false;
            p.pending[slot] = None;
            self.coverage[slot].transition(now, true);
        }
    }

    /// Kill-path re-verification: rolls a main back to its *oldest*
    /// unresolved segment boundary so a replacement checker re-verifies
    /// everything the dead one left unverdicted. No-op under
    /// [`RecoveryPolicy::Detect`] (the unverified tail is dropped — a
    /// documented coverage loss) or when every segment already resolved.
    fn rollback_oldest_unresolved(&mut self, slot: usize, now: u64) {
        let anchor = {
            let Some(rec) = self.recovery.as_mut() else {
                return;
            };
            let s = &mut rec.slots[slot];
            let Some(anchor) = s.anchors.pop_front() else {
                return;
            };
            // Later anchors are inside the re-executed region; the retry
            // regenerates them under fresh seqs.
            s.anchors.clear();
            s.wasted_cycles += now.saturating_sub(anchor.open_cycle);
            anchor
        };
        self.apply_rollback(slot, &anchor);
    }

    /// Degrades a main to unchecked execution (its last checker died):
    /// checking off, stream flushed, typed warning raised. The run keeps
    /// completing instead of deadlocking on a channel nobody will drain.
    fn degrade_unchecked(&mut self, slot: usize, now: u64) {
        let main = self.mains[slot];
        let _ = self.fs.fabric.set_check(main, false);
        self.fs.fabric.unit_mut(main).fifo.reset();
        self.arbiter_of[slot] = None;
        self.repair_pending[slot] = None;
        if let Some(rec) = &mut self.recovery {
            let s = &mut rec.slots[slot];
            if s.pending_since.take().is_some() {
                // An in-flight recovery can never verify clean again.
                s.unrecovered += 1;
            }
            s.anchors.clear();
            s.blocked = false;
            let live = self.fs.soc.mem.journal_mark(main);
            self.fs.soc.mem.truncate_journal(main, live);
        }
        self.warnings.push(RunWarning::UncheckedExecution {
            main,
            from_cycle: now,
        });
        if self.mode_tracking {
            self.coverage[slot].transition(now, false);
        }
        if let Some(p) = &mut self.pairing {
            // No channel survives, so future pairing transitions on this
            // slot are void; the degradation warning above supersedes
            // the released-window accounting.
            p.released[slot] = false;
            p.pending[slot] = None;
        }
    }

    /// Handles a fired [`FaultPlan::kill_checker_at`] shot: halts the
    /// checker core, tears down its channel, and re-pairs the orphaned
    /// mains onto surviving pool members (or degrades them to unchecked
    /// execution when none survive).
    fn kill_checker(&mut self, idx: usize) {
        if self.dead_checkers[idx] {
            return;
        }
        self.dead_checkers[idx] = true;
        self.checkers_lost += 1;
        let checker = self.checkers[idx];
        let now = self.fs.soc.now();
        self.fs.soc.core_mut(checker).halt();
        self.emit(RunEvent::CheckerKilled {
            checker,
            cycle: now,
        });
        if let Some(ai) = self.arbiters.iter().position(|a| a.checker() == checker) {
            // Shared pool member: every main it was serving (granted or
            // queued) re-pairs round-robin onto the survivors.
            let orphans = self.arbiters[ai].take_orphans();
            self.fs.fabric.kill_checker(checker);
            let survivors: Vec<usize> = (0..self.arbiters.len())
                .filter(|&i| i != ai && !self.checker_is_dead(self.arbiters[i].checker()))
                .collect();
            for (k, &orphan) in orphans.iter().enumerate() {
                let slot = self.slot_of[orphan].expect("orphan is a main");
                self.rollback_oldest_unresolved(slot, now);
                if survivors.is_empty() {
                    self.degrade_unchecked(slot, now);
                    continue;
                }
                let target = survivors[k % survivors.len()];
                self.arbiter_of[slot] = Some(target);
                self.repair_pending[slot] = Some(now);
                let immediate = self.arbiters[target]
                    .adopt(&mut self.fs.fabric, orphan)
                    .expect("orphan is pending");
                if self.done[slot] {
                    // Still done after the rollback pass: nothing to
                    // re-execute, only buffered data to drain.
                    self.arbiters[target].release(orphan);
                }
                if immediate {
                    self.sample_repair_latency(orphan, now);
                    let new_checker = self.arbiters[target].checker();
                    self.fs.soc.core_mut(new_checker).unpark();
                    self.emit(RunEvent::CheckerGranted {
                        checker: new_checker,
                        main: orphan,
                        cycle: now,
                    });
                }
            }
        } else if let Some((main, survivors)) = self.fs.fabric.kill_checker(checker) {
            // Dedicated channel: surviving consumers are re-indexed by
            // the fabric and restart at the next SCP.
            let slot = self.slot_of[main].expect("channel main");
            self.rollback_oldest_unresolved(slot, now);
            if let Some(rec) = &mut self.recovery {
                // Consumer indices changed; verdict bookkeeping restarts.
                rec.slots[slot].resolved = vec![None; survivors.max(1)];
            }
            if survivors == 0 {
                self.degrade_unchecked(slot, now);
            }
        }
        self.sync_fault_memo_blocks();
    }

    /// Rollback-recovery reaction to one engine step: anchors new
    /// segments, retires verdicted ones, and rolls the faulted main back
    /// on a detection. Only called under [`RecoveryPolicy::Rollback`].
    fn handle_recovery_step(&mut self, core: usize, step: &EngineStep) {
        match step {
            EngineStep::SegmentOpened => {
                let Some(slot) = self.slot_of[core] else {
                    return;
                };
                let Some(seq) = self.fs.fabric.unit(core).tracker.open_seq() else {
                    return;
                };
                let snapshot = self.fs.soc.core(core).state.snapshot();
                let journal_mark = self.fs.soc.mem.journal_mark(core);
                let open_cycle = self.fs.soc.now();
                let rec = self.recovery.as_mut().expect("rollback policy");
                rec.slots[slot].anchors.push_back(Anchor {
                    seq,
                    snapshot,
                    journal_mark,
                    open_cycle,
                });
            }
            EngineStep::CheckerSegmentDone(result) => {
                let Some((main, consumer)) = self.fs.fabric.channel_of(core) else {
                    return;
                };
                let Some(slot) = self.slot_of[main] else {
                    return;
                };
                let now = self.fs.soc.now();
                let live_mark = self.fs.soc.mem.journal_mark(main);
                let (truncate, completed) = {
                    let rec = self.recovery.as_mut().expect("rollback policy");
                    let s = &mut rec.slots[slot];
                    if consumer < s.resolved.len() {
                        s.resolved[consumer] =
                            Some(s.resolved[consumer].map_or(result.seq, |v| v.max(result.seq)));
                    }
                    let truncate = s.retire_resolved();
                    // A clean verdict ends the recovery window: the
                    // retried stream verified, the retry budget resets,
                    // and the memo block lifts.
                    s.consecutive = 0;
                    let completed = s.pending_since.take().map(|t| now.saturating_sub(t));
                    if let Some(latency) = completed {
                        s.latencies.push(latency);
                        s.blocked = false;
                    }
                    (truncate, completed)
                };
                if let Some(mark) = truncate {
                    self.fs.soc.mem.truncate_journal(main, mark.min(live_mark));
                }
                if let Some(latency) = completed {
                    self.emit(RunEvent::RecoveryComplete {
                        main,
                        cycle: now,
                        latency,
                    });
                    self.sync_fault_memo_blocks();
                }
            }
            EngineStep::CheckerDetected(event) => {
                self.handle_detection_recovery(
                    event.main_core,
                    event.checker_core,
                    event.segment_seq,
                );
            }
            _ => {}
        }
    }

    /// Rollback-or-exhaust decision for one detection (DESIGN.md §14).
    fn handle_detection_recovery(&mut self, main: usize, checker: usize, seq: u64) {
        let now = self.fs.soc.now();
        let Some(slot) = self.slot_of[main] else {
            return;
        };
        let consumer = self.fs.fabric.channel_of(checker).map(|(_, i)| i);
        let live_mark = self.fs.soc.mem.journal_mark(main);
        enum Decision {
            Roll(Box<Anchor>),
            Exhausted(Option<u64>),
        }
        let decision = {
            let rec = self.recovery.as_mut().expect("rollback policy");
            let max_retries = rec.max_retries;
            let s = &mut rec.slots[slot];
            let pos = s.anchors.iter().position(|a| a.seq == seq);
            match pos {
                Some(i) if s.consecutive < max_retries => {
                    let anchor = s.anchors.remove(i).expect("position is in range");
                    // Anchors after (and before) the rollback point
                    // describe segments whose in-flight data the flush
                    // destroys; the retry regenerates them under fresh
                    // seqs, so they can never resolve — drop them.
                    s.anchors.clear();
                    s.recoveries += 1;
                    s.consecutive += 1;
                    s.blocked = true;
                    if s.pending_since.is_none() {
                        // Consecutive retries keep the first detection as
                        // the latency epoch: detect → verified-again.
                        s.pending_since = Some(now);
                    }
                    s.wasted_cycles += now.saturating_sub(anchor.open_cycle);
                    Decision::Roll(Box::new(anchor))
                }
                _ => {
                    // Retry budget exhausted (or the anchor is gone):
                    // record detect-only, like RecoveryPolicy::Detect.
                    s.unrecovered += 1;
                    if let Some(i) = consumer {
                        if i < s.resolved.len() {
                            s.resolved[i] = Some(s.resolved[i].map_or(seq, |v| v.max(seq)));
                        }
                    }
                    let truncate = s.retire_resolved();
                    s.pending_since = None;
                    s.consecutive = 0;
                    s.blocked = false;
                    Decision::Exhausted(truncate)
                }
            }
        };
        match decision {
            Decision::Roll(anchor) => {
                self.apply_rollback(slot, &anchor);
                if let Some(arb) = self.arbiter_of[slot] {
                    self.arbiters[arb].retract_release(main);
                    if !self.arbiters[arb].is_serving(main) {
                        // The grant was revoked before the detection
                        // landed; re-enter arbitration for the retry.
                        let _ = self.arbiters[arb].adopt(&mut self.fs.fabric, main);
                    }
                }
                self.emit(RunEvent::RecoveryStart {
                    main,
                    seq,
                    cycle: now,
                });
            }
            Decision::Exhausted(truncate) => {
                if let Some(mark) = truncate {
                    self.fs.soc.mem.truncate_journal(main, mark.min(live_mark));
                }
                self.warnings.push(RunWarning::RetriesExhausted {
                    main,
                    seq,
                    at_cycle: now,
                });
            }
        }
        self.sync_fault_memo_blocks();
    }

    /// Whether `core` is a [`ReliabilityMode::FullLockstep`] main that
    /// must hold at its checkpoint: a complete segment sits unverified
    /// in its FIFO and a live checker still owes the verdict. Released,
    /// degraded or finished slots never wait — there is nobody left to
    /// wait for.
    fn lockstep_must_wait(&self, core: usize) -> bool {
        let Some(slot) = self.slot_of[core] else {
            return false;
        };
        if self.done[slot]
            || self.modes[slot] != ReliabilityMode::FullLockstep
            || !self.fs.fabric.checking_live(core)
        {
            return false;
        }
        let fifo = &self.fs.fabric.unit(core).fifo;
        (0..fifo.consumers()).any(|c| fifo.complete_segments_ahead(c) >= 1)
    }

    /// Executes one scheduling quantum: polls arbiters, fires due fault
    /// shots, then steps the earliest-ready core. Returns `false` once
    /// the run is fully complete.
    pub fn step_once(&mut self) -> bool {
        if self.complete() {
            // Every stream has drained for good: shots still pending can
            // never land — count them as armed-but-expired.
            self.expire_remaining_shots();
            return false;
        }
        let mut grants: Vec<(usize, usize)> = Vec::new();
        for a in &mut self.arbiters {
            if let Some(granted) = a.poll(&mut self.fs.fabric) {
                grants.push((a.checker(), granted));
            }
        }
        for (checker, granted) in grants {
            // A hand-over reconnects the checker; wake it in case it
            // parked while its queue was empty.
            self.fs.soc.core_mut(checker).unpark();
            let now = self.fs.soc.now();
            self.sample_repair_latency(granted, now);
            self.emit(RunEvent::CheckerGranted {
                checker,
                main: granted,
                cycle: now,
            });
        }
        if self.pairing.is_some() {
            self.drive_pairing();
        }
        if self.faults.pending() {
            let now = self.fs.soc.now();
            let done = &self.done;
            let (fired, expired, kills) =
                self.faults
                    .fire_due(&mut self.fs.fabric, &self.mains, |slot| done[slot], now);
            let pending_set_changed = !fired.is_empty() || !expired.is_empty() || !kills.is_empty();
            for injection in fired {
                if self.observing() {
                    self.emit(RunEvent::FaultInjected(injection.clone()));
                }
                self.injections.push(injection);
            }
            for channel in expired {
                let main = self.mains[channel];
                self.note_unchecked_expiry(channel, now);
                for o in &mut self.observers {
                    o.on_shot_expired(main, now);
                }
            }
            for checker_idx in kills {
                self.kill_checker(checker_idx);
            }
            if pending_set_changed {
                self.sync_fault_memo_blocks();
            }
        }
        let core = match self.fs.soc.next_ready() {
            Some(c) => c,
            None => return false,
        };
        if self.lockstep_must_wait(core) {
            // FullLockstep semantics: the main may not run past an
            // unverified checkpoint. Hold it at the segment boundary in
            // small deterministic quanta until the checker's verdict
            // lands, instead of letting the DMA spill path accumulate an
            // unbounded unverified backlog.
            self.fs.soc.touch_clock(core);
            self.fs.soc.stall_core(core, LOCKSTEP_WAIT_QUANTUM);
            return true;
        }
        // Pin the clock to the dispatched (earliest-ready) core before
        // stepping: every `now()` read inside the step then depends only
        // on per-core timelines, not on how many instructions previous
        // steps batched — the keystone of memo-on/off report identity.
        self.fs.soc.touch_clock(core);
        // Segment open/close observation needs the tracker state from
        // before the step; skip the probe entirely when nobody watches.
        let seg_before = if !self.observing() {
            None
        } else {
            self.slot_of[core].map(|_| self.fs.fabric.unit(core).tracker.open_seq())
        };
        let step = self.fs.step(core);
        // A logged superblock retires many instructions in one engine
        // step: weight it so `engine_steps` stays an instruction-granular
        // progress measure, comparable across batching modes.
        self.steps += match &step {
            EngineStep::MainBlock { retired } => *retired,
            EngineStep::CheckerBlock { replayed } => *replayed,
            _ => 1,
        };
        if matches!(step, EngineStep::Idle)
            && self.slot_of[core].is_none()
            && self.fs.fabric.channel_of(core).is_none()
        {
            // A busy checker whose arbitration queue has drained: no
            // channel and nothing to replay. `step_checker` returns
            // `Idle` without stalling, so at a fixed cycle it would
            // monopolise the ready queue and starve every other core —
            // park it (a later grant unparks it in the poll loop above).
            self.fs.soc.core_mut(core).park();
            let now = self.fs.soc.now();
            self.emit(RunEvent::CheckerParked {
                checker: core,
                cycle: now,
            });
        }
        if let Some(slot) = self.slot_of[core] {
            if !self.done[slot] {
                if let EngineStep::Core(StepKind::Trap {
                    cause: TrapCause::EcallFromU,
                    ..
                }) = &step
                {
                    let now = self.fs.soc.now();
                    self.done[slot] = true;
                    self.done_count += 1;
                    self.finish_cycle[slot] = now;
                    if self.mode_tracking {
                        // Freeze coverage at the finish: drain cycles
                        // belong to neither bucket.
                        let live = self.coverage[slot].live;
                        self.coverage[slot].transition(now, live);
                        self.coverage[slot].frozen = true;
                    }
                    self.fs.soc.core_mut(core).park();
                    if let Some(arb) = self.arbiter_of[slot] {
                        // The job is done: stop producing and let the
                        // arbiter hand the checker over once the stream
                        // drains.
                        self.fs.fabric.set_check(core, false).expect("main core");
                        self.arbiters[arb].release(core);
                    }
                    self.emit(RunEvent::MainFinished {
                        main: core,
                        cycle: now,
                    });
                } else if let EngineStep::Core(StepKind::Trap { cause, tval, pc }) = &step {
                    panic!("main core {core} faulted: {cause:?} tval={tval:#x} pc={pc:#x}");
                }
            }
        }
        if self.observing() {
            self.notify_observers(core, seg_before, &step);
        }
        if self.recovery.is_some() {
            self.handle_recovery_step(core, &step);
        }
        true
    }

    /// Emits the sink events for one engine step.
    fn notify_observers(
        &mut self,
        core: usize,
        seg_before: Option<Option<u64>>,
        step: &EngineStep,
    ) {
        let cycle = self.fs.soc.now();
        if let Some(before) = seg_before {
            let after = self.fs.fabric.unit(core).tracker.open_seq();
            match (before, after) {
                (None, Some(seq)) => {
                    self.emit(RunEvent::SegmentOpen {
                        main: core,
                        seq,
                        cycle,
                    });
                }
                (Some(seq), None) => {
                    self.emit(RunEvent::SegmentClose {
                        main: core,
                        seq,
                        cycle,
                    });
                }
                (Some(closed), Some(opened)) if closed != opened => {
                    self.emit(RunEvent::SegmentClose {
                        main: core,
                        seq: closed,
                        cycle,
                    });
                    self.emit(RunEvent::SegmentOpen {
                        main: core,
                        seq: opened,
                        cycle,
                    });
                }
                _ => {}
            }
        }
        match step {
            EngineStep::CheckerApplied { seq } => {
                // The SCP apply begins the checker-occupancy window; the
                // connected channel names the main being verified.
                if let Some((main, _)) = self.fs.fabric.channel_of(core) {
                    self.emit(RunEvent::CheckStart {
                        checker: core,
                        main,
                        seq: *seq,
                        cycle,
                    });
                }
            }
            EngineStep::CheckerSegmentDone(result) => {
                self.emit(RunEvent::CheckPass {
                    checker: core,
                    result: result.clone(),
                });
            }
            EngineStep::CheckerDetected(event) => {
                let result = SegmentResult {
                    seq: event.segment_seq,
                    tag: event.tag,
                    mismatch: Some(event.kind.clone()),
                    at: event.detected_at,
                };
                self.emit(RunEvent::CheckFail {
                    checker: core,
                    result,
                });
                self.emit(RunEvent::Detection(event.clone()));
            }
            _ => {}
        }
    }

    /// Runs until the cycle counter passes `cycle` or the run completes.
    /// Returns `true` while the run is still live.
    pub fn run_until_cycle(&mut self, cycle: u64) -> bool {
        while self.fs.soc.now() < cycle {
            if !self.step_once() {
                return false;
            }
        }
        true
    }

    /// Runs to completion (programs ended + checkers drained), bounded
    /// by `max_steps` engine steps.
    pub fn run_to_completion(&mut self, max_steps: u64) -> RunReport {
        let mut steps = 0;
        while steps < max_steps && self.step_once() {
            steps += 1;
        }
        self.report()
    }

    /// Produces the report for the current state.
    ///
    /// Draining: detection events are moved out of the fabric, so a
    /// second call reports them empty.
    pub fn report(&mut self) -> RunReport {
        // A caller may stop stepping the instant the run completes (an
        // exactly-sized step budget, manual stepping): finalize shot
        // expiry here too, so the armed/landed/expired accounts balance
        // regardless of whether step_once observed completion.
        if self.complete() {
            self.expire_remaining_shots();
        }
        let (mut checked, mut failed) = (0, 0);
        for &c in &self.checkers {
            checked += self.fs.fabric.unit(c).checker.segments_checked;
            failed += self.fs.fabric.unit(c).checker.segments_failed;
        }
        let per_main: Vec<MainReport> = self
            .mains
            .iter()
            .enumerate()
            .map(|(slot, &core)| {
                let rec = self.recovery.as_ref().map(|r| &r.slots[slot]);
                MainReport {
                    core,
                    completed: self.done[slot],
                    finish_cycle: self.finish_cycle[slot],
                    retired: self.fs.soc.core(core).instret,
                    recoveries: rec.map_or(0, |s| s.recoveries),
                    unrecovered: rec.map_or(0, |s| s.unrecovered),
                    wasted_cycles: rec.map_or(0, |s| s.wasted_cycles),
                    recovery_latency_cycles: rec.map_or_else(Vec::new, |s| s.latencies.clone()),
                }
            })
            .collect();
        let mut report = RunReport {
            completed: self.main_done(),
            main_finish_cycle: per_main.iter().map(|m| m.finish_cycle).max().unwrap_or(0),
            drain_cycle: self.fs.soc.now(),
            retired: per_main.iter().map(|m| m.retired).sum(),
            segments_checked: checked,
            segments_failed: failed,
            detections: self.fs.fabric.take_detections(),
            backpressure_stalls: self.fs.fabric.stats.backpressure_stalls,
            engine_steps: self.steps,
            per_main,
            arbiters: self.arbiters.iter().map(|a| a.stats).collect(),
            injections: self.injections.clone(),
            shots_armed: self.faults.armed(),
            shots_expired: self.faults.expired(),
            checkers_lost: self.checkers_lost,
            repair_latency_cycles: self.repair_latencies.clone(),
            warnings: self.warnings.clone(),
            mode_stats: Vec::new(),
        };
        if self.mode_tracking {
            report.mode_stats = self.collect_mode_stats(&report);
        }
        report
    }

    /// Builds the per-slot reliability accounting (tracked runs only):
    /// coverage intervals settled at the current cycle, checkpoint
    /// stalls from the fabric, and matched-detection latencies
    /// attributed per slot.
    fn collect_mode_stats(&self, report: &RunReport) -> Vec<ModeStats> {
        let now = self.fs.soc.now();
        let matched = report.matched_detections();
        self.mains
            .iter()
            .enumerate()
            .map(|(slot, &core)| {
                let (checked_cycles, unchecked_cycles) = self.coverage[slot].settled(now);
                let (acquires, releases) = self.pairing.as_ref().map_or((0, 0), |p| p.counts[slot]);
                let mut detections = 0;
                let mut detection_latency_total = 0;
                for m in matched.iter().filter(|m| m.main_core == core) {
                    detections += 1;
                    detection_latency_total += m.latency_cycles();
                }
                ModeStats {
                    core,
                    mode: self.modes[slot],
                    checked_cycles,
                    unchecked_cycles,
                    checkpoint_stall_cycles: self.fs.fabric.unit(core).cp_stall_cycles,
                    acquires,
                    releases,
                    detections,
                    detection_latency_total,
                }
            })
            .collect()
    }
}

/// Runs `program` unverified on a plain SoC and returns the finish cycle —
/// the baseline for slowdown measurements.
///
/// # Errors
///
/// Propagates configuration errors.
///
/// # Panics
///
/// Panics if the program does not finish within `max_instructions`.
pub fn baseline_cycles(
    program: &Program,
    max_instructions: u64,
) -> Result<u64, CacheGeometryError> {
    let mut soc = flexstep_sim::Soc::new(SocConfig::paper(1))?;
    soc.run_to_ecall(program, max_instructions);
    Ok(soc.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultTarget;
    use crate::scenario::{RecordingObserver, Scenario, Topology};
    use flexstep_isa::asm::Assembler;
    use flexstep_isa::XReg;

    fn store_loop(n: i64) -> Program {
        store_loop_in_window(n, 0)
    }

    /// `store_loop` in a private text/data window per main slot, so
    /// multi-main scenarios don't overwrite each other's text or race on
    /// one data address (interleaving-dependent loads would make final
    /// state depend on global timing).
    fn store_loop_in_window(n: i64, slot: u64) -> Program {
        let text = 0x1000_0000 + slot * 0x10_0000;
        let data = 0x2000_0000 + slot * 0x10_0000;
        let mut asm = Assembler::with_bases(format!("store_loop{slot}"), text, data);
        asm.li(XReg::A0, 0);
        asm.li(XReg::A1, n);
        asm.li(XReg::A2, data as i64);
        asm.li(XReg::A4, 0);
        asm.label("loop").unwrap();
        asm.add(XReg::A0, XReg::A0, XReg::A1);
        asm.sd(XReg::A2, XReg::A0, 0);
        asm.ld(XReg::A3, XReg::A2, 0);
        // Keep loaded data architecturally live so data faults propagate.
        asm.add(XReg::A4, XReg::A4, XReg::A3);
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    fn dual(p: &Program, fabric: FabricConfig) -> VerifiedRun {
        Scenario::new(p).cores(2).fabric(fabric).build().unwrap()
    }

    /// A workload the verdict memo can actually serve: a stateless
    /// inner loop (every live register re-derived from immediates each
    /// iteration) sized so one outer iteration spans exactly two
    /// checking segments. The outer trip count lives in memory and is
    /// touched only in a 4-instruction epilogue, so one segment per
    /// iteration repeats bit-for-bit (hits from the second iteration
    /// on) while the other always misses. See DESIGN.md §13.
    fn memoizable_loop(outer: i64) -> Program {
        let mut asm = Assembler::new("memoizable_loop");
        asm.li(XReg::A2, 0x2000_0000);
        asm.li(XReg::T0, outer);
        asm.sd(XReg::A2, XReg::T0, 8);
        // Keep the prologue >= 4 instructions so the second segment
        // boundary of each outer iteration lands on or before the
        // counter load below (boundaries sit at 5000*k - prologue_len
        // instructions into the 10_000-instruction outer body).
        for _ in 0..4 {
            asm.nop();
        }
        asm.label("outer").unwrap();
        asm.li(XReg::T6, 0); // kill the loaded trip count: snapshots repeat
        asm.li(XReg::T0, 1998);
        asm.label("inner").unwrap();
        asm.li(XReg::A0, 77);
        asm.add(XReg::A1, XReg::A0, XReg::A0);
        asm.sd(XReg::A2, XReg::A1, 0);
        asm.addi(XReg::T0, XReg::T0, -1);
        asm.bnez(XReg::T0, "inner");
        // Pad the outer body to exactly 2 x segment_limit (5000)
        // instructions: 2 + 5*1998 + 4 nops + 4 = 10_000.
        for _ in 0..4 {
            asm.nop();
        }
        asm.ld(XReg::T6, XReg::A2, 8);
        asm.addi(XReg::T6, XReg::T6, -1);
        asm.sd(XReg::A2, XReg::T6, 8);
        asm.bnez(XReg::T6, "outer");
        asm.ecall();
        asm.finish().unwrap()
    }

    #[test]
    fn memo_serves_repeating_segments_and_reports_stay_bit_identical() {
        let p = memoizable_loop(8);
        let mut on = Scenario::new(&p).cores(2).build().unwrap();
        let r_on = on.run_to_completion(100_000_000);
        assert!(r_on.completed);
        assert_eq!(r_on.segments_failed, 0);
        let stats = &on.fabric().stats;
        assert!(
            stats.memo_hits >= 5,
            "repeating segments must be served from the memo: {} hits / {} misses",
            stats.memo_hits,
            stats.memo_misses
        );
        assert!(stats.memo_misses > 0, "first sighting is always a miss");

        let mut off = Scenario::new(&p).cores(2).memo(false).build().unwrap();
        let r_off = off.run_to_completion(100_000_000);
        assert_eq!(off.fabric().stats.memo_hits, 0);
        assert_eq!(
            r_on.to_json(),
            r_off.to_json(),
            "memo hits must replay the exact timing profile"
        );
    }

    #[test]
    fn memo_capacity_zero_via_builder_disables_lookups() {
        let p = memoizable_loop(4);
        let mut run = Scenario::new(&p).cores(2).memo_capacity(0).build().unwrap();
        let r = run.run_to_completion(100_000_000);
        assert!(r.completed);
        assert_eq!(run.fabric().stats.memo_hits, 0);
        assert_eq!(run.fabric().stats.memo_misses, 0);
    }

    #[test]
    fn armed_fault_channel_is_never_served_from_the_memo() {
        // The shot never fires (armed far past the run), but while it
        // is pending its channel must take the full-replay path: a
        // cached verdict would mask the injection window.
        let p = memoizable_loop(8);
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::bit_flip_at(u64::MAX / 2, FaultTarget::EntryData))
            .build()
            .unwrap();
        let r = run.run_to_completion(100_000_000);
        assert!(r.completed);
        assert_eq!(r.shots_expired, 1);
        let stats = &run.fabric().stats;
        assert_eq!(
            stats.memo_hits, 0,
            "a channel with an armed shot must never hit the memo"
        );
        assert_eq!(stats.memo_misses, 0, "blocked applies are not misses");
    }

    #[test]
    fn dual_core_clean_run_verifies() {
        let p = store_loop(2000);
        let mut run = dual(&p, FabricConfig::paper());
        let r = run.run_to_completion(10_000_000);
        assert!(r.completed);
        assert!(r.segments_checked >= 2, "10k instructions => >=2 segments");
        assert_eq!(r.segments_failed, 0);
        assert!(r.detections.is_empty());
        assert!(r.drain_cycle >= r.main_finish_cycle);
        assert_eq!(r.per_main.len(), 1);
        assert!(r.arbiters.is_empty());
    }

    #[test]
    fn triple_core_clean_run_verifies_twice() {
        let p = store_loop(500);
        let mut dual_run = dual(&p, FabricConfig::paper());
        let rd = dual_run.run_to_completion(10_000_000);
        let mut triple = Scenario::new(&p)
            .cores(3)
            .topology(Topology::Custom(vec![(0, vec![1, 2])]))
            .build()
            .unwrap();
        let rt = triple.run_to_completion(10_000_000);
        assert!(rt.completed);
        assert_eq!(rt.segments_failed, 0);
        assert_eq!(
            rt.segments_checked,
            2 * rd.segments_checked,
            "each segment is verified by both checkers"
        );
    }

    #[test]
    fn slowdown_is_small_but_nonzero() {
        let p = store_loop(3000);
        let base = baseline_cycles(&p, 10_000_000).unwrap();
        let mut run = dual(&p, FabricConfig::paper());
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        let slowdown = r.main_finish_cycle as f64 / base as f64;
        assert!(
            slowdown >= 1.0,
            "verification cannot speed things up: {slowdown}"
        );
        assert!(slowdown < 1.25, "slowdown should be modest: {slowdown}");
    }

    #[test]
    fn fault_plan_faults_are_detected_with_high_coverage() {
        let p = store_loop(5000);
        let mut injected = 0;
        let mut detected = 0;
        for seed in 0..12u64 {
            let mut run = Scenario::new(&p)
                .cores(2)
                .fault_plan(FaultPlan::random_with_seed(20_000, seed))
                .build()
                .unwrap();
            let r = run.run_to_completion(50_000_000);
            if r.injections.is_empty() {
                continue;
            }
            injected += 1;
            if !r.detections.is_empty() || r.segments_failed > 0 {
                detected += 1;
            }
        }
        assert!(
            injected >= 10,
            "campaign must inject in most runs: {injected}"
        );
        // A small number of flips can be architecturally masked (dead
        // registers overwritten before the ECP); coverage must still be
        // high, mirroring the paper's >99.9% claim at scale.
        assert!(
            detected * 10 >= injected * 9,
            "detected {detected} of {injected} injected faults"
        );
    }

    #[test]
    fn rollback_recovers_detected_fault_and_converges() {
        let p = store_loop(4000);
        // Golden: fault-free Detect run of the same program.
        let mut golden = dual(&p, FabricConfig::paper());
        let rg = golden.run_to_completion(50_000_000);
        assert!(rg.completed);
        let golden_state = golden.soc().core(0).state.snapshot();
        let golden_word = golden.soc().mem.phys().read_u64(0x2000_0000);

        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(3))
            .recovery(RecoveryPolicy::Rollback { max_retries: 3 })
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        assert!(
            !r.detections.is_empty(),
            "the injected flip must still be detected under Rollback"
        );
        let m = &r.per_main[0];
        assert!(m.recoveries >= 1, "detection must trigger a rollback");
        assert_eq!(m.unrecovered, 0, "one transient flip recovers in one retry");
        assert_eq!(
            m.recovery_latency_cycles.len(),
            1,
            "one detect -> verified-again window"
        );
        assert!(m.recovery_latency_cycles[0] > 0);
        assert!(m.wasted_cycles > 0, "rollback discards forward progress");
        assert!(r.warnings.is_empty());
        assert!(
            m.retired > rg.per_main[0].retired,
            "re-execution retires the segment tail twice"
        );
        // Convergence: the recovered run ends in the golden architectural
        // state (the fault lived only in the in-flight checking stream).
        assert_eq!(run.soc().core(0).state.snapshot(), golden_state);
        assert_eq!(run.soc().mem.phys().read_u64(0x2000_0000), golden_word);
    }

    #[test]
    fn rollback_reports_stay_bit_identical_memo_on_and_off() {
        // Satellite pin: the retried stream must never be served a stale
        // memo verdict — a hit there would warp the recovery timeline and
        // split these reports.
        let p = memoizable_loop(8);
        let plan = || FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(3);
        let policy = RecoveryPolicy::Rollback { max_retries: 3 };
        let mut on = Scenario::new(&p)
            .cores(2)
            .fault_plan(plan())
            .recovery(policy)
            .build()
            .unwrap();
        let r_on = on.run_to_completion(100_000_000);
        assert!(r_on.completed);
        let mut off = Scenario::new(&p)
            .cores(2)
            .fault_plan(plan())
            .recovery(policy)
            .memo(false)
            .build()
            .unwrap();
        let r_off = off.run_to_completion(100_000_000);
        assert_eq!(
            r_on.to_json(),
            r_off.to_json(),
            "memo hits must not perturb rollback recovery"
        );
        if !r_on.injections.is_empty() {
            assert!(r_on.per_main[0].recoveries >= 1);
        }
    }

    #[test]
    fn killing_a_pool_checker_repairs_its_mains_onto_the_survivor() {
        let ps: Vec<Program> = (0..4).map(|i| store_loop_in_window(2500, i)).collect();
        // 4 mains, 2 shared checkers: cores 4 and 5 each arbitrate two
        // mains. Killing checker 0 (core 4) orphans mains 0 and 2.
        let build = |kill: bool| {
            let mut s = Scenario::new(&ps[0])
                .program(&ps[1])
                .program(&ps[2])
                .program(&ps[3])
                .cores(6)
                .topology(Topology::SharedChecker { checkers: 2 })
                .recovery(RecoveryPolicy::Rollback { max_retries: 3 });
            if kill {
                // Early enough that both of checker 0's mains (granted +
                // queued) are still live orphans.
                s = s.fault_plan(FaultPlan::kill_checker_at(5_000).on_checker(0));
            }
            s.build().unwrap()
        };
        let mut golden = build(false);
        let rg = golden.run_to_completion(200_000_000);
        assert!(rg.completed);

        let mut run = build(true);
        let r = run.run_to_completion(200_000_000);
        assert!(r.completed, "orphaned mains must re-pair and finish");
        assert_eq!(r.checkers_lost, 1);
        assert!(
            r.warnings.is_empty(),
            "a survivor exists; nothing degrades: {:?}",
            r.warnings
        );
        assert_eq!(
            r.repair_latency_cycles.len(),
            2,
            "both orphans re-pair onto the surviving checker"
        );
        assert_eq!(r.segments_failed, 0);
        for m in &r.per_main {
            assert!(m.completed);
        }
        for main in 0..4 {
            assert_eq!(
                run.soc().core(main).state.snapshot(),
                golden.soc().core(main).state.snapshot(),
                "main {main} must end in the golden state"
            );
        }
    }

    #[test]
    fn killing_the_last_checker_degrades_to_unchecked_execution() {
        let p = store_loop(3000);
        let mut golden = dual(&p, FabricConfig::paper());
        let rg = golden.run_to_completion(50_000_000);
        let golden_state = golden.soc().core(0).state.snapshot();
        assert!(rg.completed);

        // Default Detect policy: degradation must not require Rollback.
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::kill_checker_at(20_000).on_checker(0))
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed, "an unchecked main still finishes");
        assert_eq!(r.checkers_lost, 1);
        assert!(
            r.warnings
                .iter()
                .any(|w| matches!(w, RunWarning::UncheckedExecution { main: 0, .. })),
            "losing every checker must raise the typed warning: {:?}",
            r.warnings
        );
        assert!(r.detections.is_empty());
        assert_eq!(run.soc().core(0).state.snapshot(), golden_state);
        assert!(
            r.segments_checked < rg.segments_checked,
            "the tail of the run goes unverified"
        );
    }

    #[test]
    fn detect_policy_reports_new_fields_as_zero() {
        let p = store_loop(1500);
        let mut run = dual(&p, FabricConfig::paper());
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        assert_eq!(r.checkers_lost, 0);
        assert!(r.repair_latency_cycles.is_empty());
        assert!(r.warnings.is_empty());
        let m = &r.per_main[0];
        assert_eq!(m.recoveries, 0);
        assert_eq!(m.unrecovered, 0);
        assert_eq!(m.wasted_cycles, 0);
        assert!(m.recovery_latency_cycles.is_empty());
        let json = r.to_json();
        for key in [
            "\"recoveries\": 0",
            "\"checkers_lost\": 0",
            "\"repair_latency_cycles\": []",
            "\"warnings\": []",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn check_fail_fires_before_the_matching_detection() {
        // The Observer doc promises: "the matching detection event
        // follows via on_detection". Pin the emission order — every
        // Detection must be immediately preceded by the CheckFail for
        // the same checker and segment.
        use crate::scenario::ObserverEvent;
        let p = store_loop(4000);
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(3))
            .record_events()
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(!r.detections.is_empty(), "the flip must be caught");
        let mut rec = RecordingObserver::new();
        run.replay_events(&mut rec);
        let events = rec.events();
        let mut detections_seen = 0;
        for (i, e) in events.iter().enumerate() {
            if let ObserverEvent::Detection(d) = e {
                detections_seen += 1;
                assert!(i > 0, "a detection can never be the first event");
                assert!(
                    matches!(
                        &events[i - 1],
                        ObserverEvent::CheckFail(checker, seq, _)
                            if *checker == d.checker_core && *seq == d.segment_seq
                    ),
                    "on_check_fail must immediately precede on_detection \
                     for the same segment; got {:?} before {:?}",
                    events[i - 1],
                    e
                );
            }
        }
        assert!(detections_seen >= 1);
    }

    #[test]
    fn check_start_opens_every_verdict_window() {
        // Every pass/fail verdict must have been preceded by a
        // CheckStart for the same checker and segment — the pairing the
        // trace exporter turns into checker-occupancy spans.
        use crate::scenario::ObserverEvent;
        let p = store_loop(2000);
        let mut run = Scenario::new(&p).cores(2).record_events().build().unwrap();
        let r = run.run_to_completion(10_000_000);
        assert!(r.completed);
        let mut rec = RecordingObserver::new();
        run.replay_events(&mut rec);
        let events = rec.events();
        let mut open: Option<(usize, u64)> = None;
        let mut verdicts = 0;
        for e in events {
            match e {
                ObserverEvent::CheckStart(checker, _main, seq, _) => {
                    assert_eq!(open, None, "a checker cannot start two replays at once");
                    open = Some((*checker, *seq));
                }
                ObserverEvent::CheckPass(checker, seq, _)
                | ObserverEvent::CheckFail(checker, seq, _) => {
                    assert_eq!(
                        open.take(),
                        Some((*checker, *seq)),
                        "verdict without a matching CheckStart"
                    );
                    verdicts += 1;
                }
                _ => {}
            }
        }
        assert_eq!(open, None, "a completed run leaves no replay window open");
        assert_eq!(verdicts, r.segments_checked);
    }

    #[test]
    fn expired_shots_notify_observers() {
        use crate::scenario::ObserverEvent;
        let p = store_loop(300);
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::random_with_seed(u64::MAX / 2, 1))
            .record_events()
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert_eq!(r.shots_expired, 1);
        let mut rec = RecordingObserver::new();
        run.replay_events(&mut rec);
        let expiries: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| matches!(e, ObserverEvent::ShotExpired(0, _)))
            .collect();
        assert_eq!(expiries.len(), 1, "one expiry event for the one shot");
    }

    #[test]
    fn shared_checker_grants_are_observable() {
        use crate::scenario::ObserverEvent;
        use flexstep_isa::asm::Assembler;
        let job = |slot: u64, iters: i64| {
            let mut asm = Assembler::with_bases(
                format!("job{slot}"),
                0x1000_0000 + slot * 0x10_0000,
                0x2000_0000 + slot * 0x10_0000,
            );
            asm.li(XReg::A0, iters);
            asm.li(XReg::A1, (0x2000_0000 + slot * 0x10_0000) as i64);
            asm.label("l").unwrap();
            asm.sd(XReg::A1, XReg::A0, 0);
            asm.addi(XReg::A0, XReg::A0, -1);
            asm.bnez(XReg::A0, "l");
            asm.ecall();
            asm.finish().unwrap()
        };
        let mut run = Scenario::new(&job(0, 1500))
            .program(&job(1, 1500))
            .cores(3)
            .topology(Topology::SharedChecker { checkers: 1 })
            .record_events()
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        assert_eq!(r.arbiters[0].switches, 1, "one hand-over");
        let mut rec = RecordingObserver::new();
        run.replay_events(&mut rec);
        let grants: Vec<(usize, usize, u64)> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                ObserverEvent::CheckerGranted(c, m, at) => Some((*c, *m, *at)),
                _ => None,
            })
            .collect();
        // Initial grant to main 0 at cycle 0, then the hand-over to
        // main 1 once main 0 released and drained.
        assert_eq!(grants.len(), 2, "{grants:?}");
        assert_eq!(grants[0], (2, 0, 0));
        assert_eq!(grants[1].0, 2);
        assert_eq!(grants[1].1, 1);
        assert!(grants[1].2 > 0);
    }

    #[test]
    fn runs_cross_threads() {
        // `VerifiedRun: Send` is statically asserted above; exercise it
        // for real — build on this thread, run to completion on another.
        let p = store_loop(800);
        let run = Scenario::new(&p).cores(2).record_events().build().unwrap();
        let baseline = dual(&p, FabricConfig::paper()).run_to_completion(10_000_000);
        let report = std::thread::spawn(move || {
            let mut run = run;
            let r = run.run_to_completion(10_000_000);
            (r, run.take_events().expect("recording enabled"))
        })
        .join()
        .unwrap();
        assert_eq!(report.0, baseline, "cross-thread run is bit-identical");
        assert!(!report.1.is_empty(), "the buffer came back with the run");
    }

    #[test]
    fn observers_see_the_whole_protocol_without_perturbing_it() {
        let p = store_loop(2000);
        let mut plain = dual(&p, FabricConfig::paper());
        let rp = plain.run_to_completion(10_000_000);

        let mut run = Scenario::new(&p)
            .cores(2)
            .observer(RecordingObserver::new())
            .build()
            .unwrap();
        let r = run.run_to_completion(10_000_000);
        assert_eq!(rp, r, "observers must not perturb the run");
    }

    #[test]
    fn targeted_fault_plan_lands_and_reports() {
        let p = store_loop(4000);
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::bit_flip_at(20_000, FaultTarget::EntryData).with_seed(3))
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert_eq!(r.injections.len(), 1);
        let inj = &r.injections[0];
        assert_eq!(inj.target, FaultTarget::EntryData);
        assert!(inj.at_cycle >= 20_000);
        assert!(
            !r.detections.is_empty() || r.segments_failed > 0,
            "a data flip in a store-heavy loop must be caught"
        );
    }

    #[test]
    fn matched_detections_consume_injections_one_to_one() {
        use crate::detect::MismatchKind;
        use crate::fault::FaultTarget;
        let det = |main: usize, checker: usize, at: u64| DetectionEvent {
            main_core: main,
            checker_core: checker,
            segment_seq: 0,
            tag: 0,
            kind: MismatchKind::LogUnderrun,
            detected_at: at,
        };
        let inj = |main: usize, at: u64| crate::Injection {
            main_core: main,
            target: FaultTarget::EntryData,
            bits: vec![1],
            at_cycle: at,
        };
        let mut report = RunReport {
            completed: true,
            main_finish_cycle: 0,
            drain_cycle: 0,
            retired: 0,
            segments_checked: 0,
            segments_failed: 0,
            // Two detections follow the single injection on main 0; the
            // latest-preceding rule would match both.
            detections: vec![det(0, 2, 5_000), det(0, 2, 9_000), det(1, 3, 800)],
            backpressure_stalls: 0,
            engine_steps: 0,
            per_main: vec![],
            arbiters: vec![],
            injections: vec![inj(0, 1_000), inj(1, 2_000)],
            shots_armed: 2,
            shots_expired: 0,
            checkers_lost: 0,
            repair_latency_cycles: vec![],
            warnings: vec![],
            mode_stats: vec![],
        };
        let pairs = report.matched_detections();
        assert_eq!(
            pairs,
            vec![MatchedDetection {
                main_core: 0,
                checker_core: 2,
                injected_at: 1_000,
                detected_at: 5_000,
            }],
            "one injection is consumed by at most one detection; the \
             detection on main 1 precedes its injection and stays unmatched"
        );
        assert!(pairs.len() <= report.injections.len());

        // Dense same-main campaign: FIFO consumption attributes each
        // detection to the earliest live shot, not the newest.
        report.injections = vec![inj(0, 1_000), inj(0, 4_900)];
        report.detections = vec![det(0, 2, 5_000), det(0, 2, 6_000)];
        let pairs = report.matched_detections();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].injected_at, 1_000);
        assert_eq!(pairs[0].latency_cycles(), 4_000);
        assert_eq!(pairs[1].injected_at, 4_900);
        assert_eq!(pairs[1].latency_cycles(), 1_100);
    }

    #[test]
    fn shot_armed_after_completion_expires_and_is_counted() {
        let p = store_loop(300);
        let mut run = Scenario::new(&p)
            .cores(2)
            .fault_plan(FaultPlan::random_with_seed(u64::MAX / 2, 1))
            .build()
            .unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        assert!(
            r.injections.is_empty(),
            "an expired shot must never appear in injections: {:?}",
            r.injections
        );
        assert_eq!(r.shots_armed, 1);
        assert_eq!(r.shots_expired, 1);
        assert_eq!(r.segments_failed, 0);
    }

    #[test]
    fn expiry_is_finalized_even_when_the_step_budget_ends_the_run() {
        // With a budget of exactly the steps the run needs, the loop in
        // run_to_completion exits on the bound without a final
        // step_once that would observe completion — report() must still
        // balance the shot accounts.
        let p = store_loop(300);
        let build = || {
            Scenario::new(&p)
                .cores(2)
                .fault_plan(FaultPlan::random_with_seed(u64::MAX / 2, 1))
                .build()
                .unwrap()
        };
        let steps = build().run_to_completion(u64::MAX).engine_steps;
        let mut run = build();
        let r = run.run_to_completion(steps);
        assert!(r.completed);
        assert!(r.injections.is_empty());
        assert_eq!(r.shots_armed, 1);
        assert_eq!(r.shots_expired, 1, "report() must finalize expiry");
    }

    #[test]
    fn shot_on_drained_stream_expires_mid_run() {
        // Main 0 (slot 0) is short: it finishes and its stream drains
        // while main 1 (slot 1) is still running. A shot armed on
        // channel 0 after that drain must expire through the live
        // fire_due path — the run is NOT complete when it arms.
        let short = {
            let mut asm = Assembler::with_bases("short", 0x1000_0000, 0x2000_0000);
            asm.li(XReg::A0, 100);
            asm.li(XReg::A2, 0x2000_0000);
            asm.label("l").unwrap();
            asm.sd(XReg::A2, XReg::A0, 0);
            asm.addi(XReg::A0, XReg::A0, -1);
            asm.bnez(XReg::A0, "l");
            asm.ecall();
            asm.finish().unwrap()
        };
        let long = {
            let mut asm = Assembler::with_bases("long", 0x1100_0000, 0x2100_0000);
            asm.li(XReg::A0, 8_000);
            asm.li(XReg::A2, 0x2100_0000);
            asm.label("l").unwrap();
            asm.sd(XReg::A2, XReg::A0, 0);
            asm.addi(XReg::A0, XReg::A0, -1);
            asm.bnez(XReg::A0, "l");
            asm.ecall();
            asm.finish().unwrap()
        };
        let mut run = Scenario::new(&short)
            .program(&long)
            .cores(4)
            .topology(Topology::PairedLockstep)
            .fault_plan(FaultPlan::none().then_random_at(10_000).on_channel(0))
            .build()
            .unwrap();
        // The shot arms at 10k cycles: main 0 (~100 iterations) drains
        // long before, main 1 (~8k iterations) is still producing.
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        assert!(
            r.per_main[0].finish_cycle < 10_000,
            "short main must finish before the shot arms: {}",
            r.per_main[0].finish_cycle
        );
        assert!(
            r.per_main[1].finish_cycle > 10_000,
            "long main must outlive the shot: {}",
            r.per_main[1].finish_cycle
        );
        assert!(r.injections.is_empty());
        assert_eq!(r.shots_armed, 1);
        assert_eq!(r.shots_expired, 1);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let p = store_loop(300);
        let mut run = dual(&p, FabricConfig::paper());
        let r = run.run_to_completion(10_000_000);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"segments_checked\": "));
        assert!(json.contains("\"per_main\": ["));
    }
}
