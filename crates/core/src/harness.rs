//! A self-contained run harness for verified execution.
//!
//! Drives one main core plus its checker(s) through a guest program
//! without a full OS: the performance (Fig. 4, Fig. 6) and
//! detection-latency (Fig. 7) experiments use exactly this configuration
//! — dual- or triple-core verification of a single workload — while the
//! scheduling experiments use `flexstep-kernel` on top.

use crate::detect::DetectionEvent;
use crate::engine::{EngineStep, FlexSoc};
use crate::fabric::FabricConfig;
use flexstep_isa::asm::Program;
use flexstep_mem::cache::CacheGeometryError;
use flexstep_sim::{PrivMode, SocConfig, StepKind, TrapCause};

/// Outcome of a verified run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether the program reached its final `ecall` within the step
    /// budget.
    pub completed: bool,
    /// Cycle at which the main core finished (excludes checker drain).
    pub main_finish_cycle: u64,
    /// Cycle at which the last checker drained.
    pub drain_cycle: u64,
    /// Instructions retired by the main core.
    pub retired: u64,
    /// Segments verified across all checkers.
    pub segments_checked: u64,
    /// Segments that failed verification.
    pub segments_failed: u64,
    /// Detection events raised during the run.
    pub detections: Vec<DetectionEvent>,
    /// Backpressure stalls suffered by the main core.
    pub backpressure_stalls: u64,
    /// Engine steps executed over the run's lifetime (throughput
    /// accounting for the perf harness).
    pub engine_steps: u64,
}

/// A single-workload verified-execution driver.
///
/// ```
/// use flexstep_core::harness::VerifiedRun;
/// use flexstep_core::FabricConfig;
/// use flexstep_isa::{asm::Assembler, XReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Assembler::new("tiny");
/// asm.li(XReg::A0, 3);
/// asm.label("l")?;
/// asm.addi(XReg::A0, XReg::A0, -1);
/// asm.bnez(XReg::A0, "l");
/// asm.ecall();
/// let program = asm.finish()?;
///
/// let mut run = VerifiedRun::dual_core(&program, FabricConfig::paper())?;
/// let report = run.run_to_completion(1_000_000);
/// assert!(report.completed);
/// assert_eq!(report.segments_failed, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VerifiedRun {
    /// The platform under test.
    pub fs: FlexSoc,
    main: usize,
    checkers: Vec<usize>,
    main_done: bool,
    main_finish_cycle: u64,
    steps: u64,
}

impl VerifiedRun {
    /// Builds a platform with core 0 as main and cores `1..=n` as its
    /// checkers (n = 1 for dual-core mode, 2 for triple-core mode).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn with_checkers(
        program: &Program,
        fabric: FabricConfig,
        num_checkers: usize,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let num_cores = 1 + num_checkers;
        let mut fs = FlexSoc::new(SocConfig::paper(num_cores), fabric)?;
        let checkers: Vec<usize> = (1..num_cores).collect();
        fs.op_g_configure(&[0], &checkers)?;
        fs.op_m_associate(0, &checkers)?;
        fs.op_m_check(0, true)?;
        for &c in &checkers {
            fs.op_c_check_state(c, true)?;
            fs.soc.core_mut(c).unpark();
        }
        fs.soc.load_program(program);
        fs.soc.core_mut(0).state.pc = program.entry;
        fs.soc.core_mut(0).state.prv = PrivMode::User;
        fs.soc.core_mut(0).unpark();
        Ok(VerifiedRun {
            fs,
            main: 0,
            checkers,
            main_done: false,
            main_finish_cycle: 0,
            steps: 0,
        })
    }

    /// Dual-core verification (one checker) — the Fig. 4 configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn dual_core(
        program: &Program,
        fabric: FabricConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        Self::with_checkers(program, fabric, 1)
    }

    /// Triple-core verification (two checkers) — the Fig. 6 comparison
    /// mode.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn triple_core(
        program: &Program,
        fabric: FabricConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        Self::with_checkers(program, fabric, 2)
    }

    /// Whether the main core has reached its final `ecall`.
    pub fn main_done(&self) -> bool {
        self.main_done
    }

    /// Whether every checker has drained its stream and returned to the
    /// wait-for-SCP state.
    pub fn drained(&self) -> bool {
        self.fs.fabric.unit(self.main).fifo.is_fully_drained()
            && self.checkers.iter().all(|&c| {
                matches!(
                    self.fs.fabric.unit(c).checker.phase,
                    crate::checker::CheckPhase::WaitScp
                )
            })
    }

    /// Selects the ready-core scheduler; see
    /// [`SchedMode`](flexstep_sim::SchedMode). Both modes produce
    /// bit-identical runs — `LinearScan` exists for A/B benchmarking.
    pub fn set_sched_mode(&mut self, mode: flexstep_sim::SchedMode) {
        self.fs.soc.set_sched_mode(mode);
    }

    /// Executes one scheduling quantum: steps the earliest-ready core.
    /// Returns `false` once the run is fully complete.
    pub fn step_once(&mut self) -> bool {
        if self.main_done && self.drained() {
            return false;
        }
        let core = match self.fs.soc.next_ready() {
            Some(c) => c,
            None => return false,
        };
        self.steps += 1;
        let step = self.fs.step(core);
        if core == self.main {
            if let EngineStep::Core(StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            }) = &step
            {
                self.main_done = true;
                self.main_finish_cycle = self.fs.soc.now();
                self.fs.soc.core_mut(self.main).park();
            } else if let EngineStep::Core(StepKind::Trap { cause, tval, pc }) = &step {
                panic!("main core faulted: {cause:?} tval={tval:#x} pc={pc:#x}");
            }
        }
        true
    }

    /// Runs until the cycle counter passes `cycle` or the run completes.
    /// Returns `true` while the run is still live.
    pub fn run_until_cycle(&mut self, cycle: u64) -> bool {
        while self.fs.soc.now() < cycle {
            if !self.step_once() {
                return false;
            }
        }
        true
    }

    /// Runs to completion (program end + checker drain), bounded by
    /// `max_steps` engine steps.
    pub fn run_to_completion(&mut self, max_steps: u64) -> RunReport {
        let mut steps = 0;
        while steps < max_steps && self.step_once() {
            steps += 1;
        }
        self.report()
    }

    /// Produces the report for the current state.
    pub fn report(&mut self) -> RunReport {
        let (mut checked, mut failed) = (0, 0);
        for &c in &self.checkers {
            checked += self.fs.fabric.unit(c).checker.segments_checked;
            failed += self.fs.fabric.unit(c).checker.segments_failed;
        }
        RunReport {
            completed: self.main_done,
            main_finish_cycle: self.main_finish_cycle,
            drain_cycle: self.fs.soc.now(),
            retired: self.fs.soc.core(self.main).instret,
            segments_checked: checked,
            segments_failed: failed,
            detections: self.fs.fabric.take_detections(),
            backpressure_stalls: self.fs.fabric.stats.backpressure_stalls,
            engine_steps: self.steps,
        }
    }
}

/// Runs `program` unverified on a plain SoC and returns the finish cycle —
/// the baseline for slowdown measurements.
///
/// # Errors
///
/// Propagates configuration errors.
///
/// # Panics
///
/// Panics if the program does not finish within `max_instructions`.
pub fn baseline_cycles(
    program: &Program,
    max_instructions: u64,
) -> Result<u64, CacheGeometryError> {
    let mut soc = flexstep_sim::Soc::new(SocConfig::paper(1))?;
    soc.run_to_ecall(program, max_instructions);
    Ok(soc.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_isa::asm::Assembler;
    use flexstep_isa::XReg;

    fn store_loop(n: i64) -> Program {
        let mut asm = Assembler::new("store_loop");
        asm.li(XReg::A0, 0);
        asm.li(XReg::A1, n);
        asm.li(XReg::A2, 0x2000_0000);
        asm.li(XReg::A4, 0);
        asm.label("loop").unwrap();
        asm.add(XReg::A0, XReg::A0, XReg::A1);
        asm.sd(XReg::A2, XReg::A0, 0);
        asm.ld(XReg::A3, XReg::A2, 0);
        // Keep loaded data architecturally live so data faults propagate.
        asm.add(XReg::A4, XReg::A4, XReg::A3);
        asm.addi(XReg::A1, XReg::A1, -1);
        asm.bnez(XReg::A1, "loop");
        asm.ecall();
        asm.finish().unwrap()
    }

    #[test]
    fn dual_core_clean_run_verifies() {
        let p = store_loop(2000);
        let mut run = VerifiedRun::dual_core(&p, FabricConfig::paper()).unwrap();
        let r = run.run_to_completion(10_000_000);
        assert!(r.completed);
        assert!(r.segments_checked >= 2, "10k instructions => >=2 segments");
        assert_eq!(r.segments_failed, 0);
        assert!(r.detections.is_empty());
        assert!(r.drain_cycle >= r.main_finish_cycle);
    }

    #[test]
    fn triple_core_clean_run_verifies_twice() {
        let p = store_loop(500);
        let mut dual = VerifiedRun::dual_core(&p, FabricConfig::paper()).unwrap();
        let rd = dual.run_to_completion(10_000_000);
        let mut triple = VerifiedRun::triple_core(&p, FabricConfig::paper()).unwrap();
        let rt = triple.run_to_completion(10_000_000);
        assert!(rt.completed);
        assert_eq!(rt.segments_failed, 0);
        assert_eq!(
            rt.segments_checked,
            2 * rd.segments_checked,
            "each segment is verified by both checkers"
        );
    }

    #[test]
    fn slowdown_is_small_but_nonzero() {
        let p = store_loop(3000);
        let base = baseline_cycles(&p, 10_000_000).unwrap();
        let mut run = VerifiedRun::dual_core(&p, FabricConfig::paper()).unwrap();
        let r = run.run_to_completion(50_000_000);
        assert!(r.completed);
        let slowdown = r.main_finish_cycle as f64 / base as f64;
        assert!(
            slowdown >= 1.0,
            "verification cannot speed things up: {slowdown}"
        );
        assert!(slowdown < 1.25, "slowdown should be modest: {slowdown}");
    }

    #[test]
    fn injected_faults_are_detected_with_high_coverage() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = store_loop(5000);
        let mut injected = 0;
        let mut detected = 0;
        for seed in 0..12u64 {
            let mut run = VerifiedRun::dual_core(&p, FabricConfig::paper()).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            // Let the pipeline fill, then corrupt an in-flight packet.
            assert!(run.run_until_cycle(20_000));
            let now = run.fs.soc.now();
            if crate::fault::inject_random_fault(&mut run.fs.fabric, 0, now, &mut rng).is_some() {
                injected += 1;
                let r = run.run_to_completion(50_000_000);
                if !r.detections.is_empty() || r.segments_failed > 0 {
                    detected += 1;
                }
            }
        }
        assert!(
            injected >= 10,
            "campaign must inject in most runs: {injected}"
        );
        // A small number of flips can be architecturally masked (dead
        // registers overwritten before the ECP); coverage must still be
        // high, mirroring the paper's >99.9% claim at scale.
        assert!(
            detected * 10 >= injected * 9,
            "detected {detected} of {injected} injected faults"
        );
    }
}
