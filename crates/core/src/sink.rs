//! `Send`-able event sinks: the run's observer callbacks, reified.
//!
//! The original observer attachment was a shared handle
//! (`Rc<RefCell<Observer>>`), which made every
//! [`VerifiedRun`](crate::harness::VerifiedRun)
//! `!Send` — a run could never cross a thread, so campaigns had to
//! parallelise around whole runs. This module replaces the shared
//! handle with owned values:
//!
//! - [`RunEvent`] reifies one [`Observer`] callback as an owned,
//!   `Send` value carrying everything the callback saw (the verdict
//!   callbacks own their full [`SegmentResult`], unlike the slimmer
//!   [`ObserverEvent`](crate::ObserverEvent) record, so a buffer can
//!   stand in for a live observer with zero fidelity loss).
//! - [`EventBuffer`] is an owned, in-order buffer of those events.
//!   Enable it with
//!   [`Scenario::record_events`](crate::Scenario::record_events); after
//!   the run, replay the buffer into any observer with
//!   [`EventBuffer::replay`] (or
//!   [`VerifiedRun::replay_events`](crate::VerifiedRun::replay_events)).
//!
//! The harness dispatches every event through one choke point to its
//! live observers (now `Observer + Send`), its by-value
//! [`TraceObserver`](crate::TraceObserver), and the optional recorded
//! buffer — so `VerifiedRun: Send` holds (statically asserted in
//! `harness.rs`) and runs migrate freely across worker threads.
//!
//! # Migrating from `Rc<RefCell<_>>` observers
//!
//! ```
//! use flexstep_core::{RecordingObserver, Scenario};
//! # use flexstep_isa::{asm::Assembler, XReg};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut asm = Assembler::new("tiny");
//! # asm.li(XReg::A0, 50);
//! # asm.li(XReg::A1, 0x2000_0000);
//! # asm.label("l")?;
//! # asm.sd(XReg::A1, XReg::A0, 0);
//! # asm.addi(XReg::A0, XReg::A0, -1);
//! # asm.bnez(XReg::A0, "l");
//! # asm.ecall();
//! # let program = asm.finish()?;
//! // Before: Rc::new(RefCell::new(RecordingObserver::new())) attached
//! // via .observer(handle.clone()), inspected via handle.borrow().
//! // After: record the run once, replay into any observer you like.
//! let mut run = Scenario::new(&program)
//!     .cores(2)
//!     .record_events()
//!     .build()?;
//! assert!(run.run_to_completion(10_000_000).completed);
//!
//! let mut recorder = RecordingObserver::new();
//! run.replay_events(&mut recorder);
//! assert!(recorder.summary().segments_opened > 0);
//! # Ok(())
//! # }
//! ```

use crate::detect::{DetectionEvent, SegmentResult};
use crate::scenario::{Injection, Observer};

/// One [`Observer`] callback as an owned, `Send` value.
///
/// Field names mirror the callback parameters; see the corresponding
/// [`Observer`] method for semantics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunEvent {
    /// [`Observer::on_segment_open`].
    SegmentOpen {
        /// Main core that opened the segment.
        main: usize,
        /// Segment sequence number.
        seq: u64,
        /// Cycle of the open.
        cycle: u64,
    },
    /// [`Observer::on_segment_close`].
    SegmentClose {
        /// Main core that closed the segment.
        main: usize,
        /// Segment sequence number.
        seq: u64,
        /// Cycle of the close.
        cycle: u64,
    },
    /// [`Observer::on_check_start`].
    CheckStart {
        /// Checker entering replay.
        checker: usize,
        /// Main core whose stream is being verified.
        main: usize,
        /// Segment sequence number.
        seq: u64,
        /// Cycle of the SCP apply.
        cycle: u64,
    },
    /// [`Observer::on_check_pass`].
    CheckPass {
        /// Checker that issued the verdict.
        checker: usize,
        /// The clean verdict.
        result: SegmentResult,
    },
    /// [`Observer::on_check_fail`].
    CheckFail {
        /// Checker that issued the verdict.
        checker: usize,
        /// The failing verdict (mismatch included).
        result: SegmentResult,
    },
    /// [`Observer::on_detection`].
    Detection(DetectionEvent),
    /// [`Observer::on_fault_injected`].
    FaultInjected(Injection),
    /// [`Observer::on_shot_expired`].
    ShotExpired {
        /// Main whose armed shot expired.
        main: usize,
        /// Cycle of the expiry.
        cycle: u64,
    },
    /// [`Observer::on_checker_granted`].
    CheckerGranted {
        /// The granted shared checker.
        checker: usize,
        /// Main connected to it.
        main: usize,
        /// Cycle of the grant.
        cycle: u64,
    },
    /// [`Observer::on_checker_parked`].
    CheckerParked {
        /// The parked checker.
        checker: usize,
        /// Cycle of the park.
        cycle: u64,
    },
    /// [`Observer::on_main_finished`].
    MainFinished {
        /// The finished main core.
        main: usize,
        /// Cycle of the final `ecall`.
        cycle: u64,
    },
    /// [`Observer::on_recovery_start`].
    RecoveryStart {
        /// Main rolled back for re-execution.
        main: usize,
        /// Segment of the rollback anchor.
        seq: u64,
        /// Cycle of the rollback.
        cycle: u64,
    },
    /// [`Observer::on_recovery_complete`].
    RecoveryComplete {
        /// Main that verified clean again.
        main: usize,
        /// Cycle of the clean verdict.
        cycle: u64,
        /// Detect → verified-again latency, cycles.
        latency: u64,
    },
    /// [`Observer::on_checker_killed`].
    CheckerKilled {
        /// The permanently failed checker.
        checker: usize,
        /// Cycle of the kill.
        cycle: u64,
    },
    /// [`Observer::on_checker_released`].
    CheckerReleased {
        /// Main that released its checker by pairing policy.
        main: usize,
        /// Cycle the release took effect (a segment boundary).
        cycle: u64,
    },
    /// [`Observer::on_checker_acquired`].
    CheckerAcquired {
        /// Main that re-acquired checking by pairing policy.
        main: usize,
        /// Cycle of the acquire.
        cycle: u64,
    },
}

impl RunEvent {
    /// Invokes the [`Observer`] callback this event reifies. Replaying
    /// a recorded buffer in order reproduces exactly the callback
    /// sequence a live observer would have seen.
    pub fn dispatch(&self, o: &mut dyn Observer) {
        match self {
            RunEvent::SegmentOpen { main, seq, cycle } => o.on_segment_open(*main, *seq, *cycle),
            RunEvent::SegmentClose { main, seq, cycle } => o.on_segment_close(*main, *seq, *cycle),
            RunEvent::CheckStart {
                checker,
                main,
                seq,
                cycle,
            } => o.on_check_start(*checker, *main, *seq, *cycle),
            RunEvent::CheckPass { checker, result } => o.on_check_pass(*checker, result),
            RunEvent::CheckFail { checker, result } => o.on_check_fail(*checker, result),
            RunEvent::Detection(event) => o.on_detection(event),
            RunEvent::FaultInjected(injection) => o.on_fault_injected(injection),
            RunEvent::ShotExpired { main, cycle } => o.on_shot_expired(*main, *cycle),
            RunEvent::CheckerGranted {
                checker,
                main,
                cycle,
            } => o.on_checker_granted(*checker, *main, *cycle),
            RunEvent::CheckerParked { checker, cycle } => o.on_checker_parked(*checker, *cycle),
            RunEvent::MainFinished { main, cycle } => o.on_main_finished(*main, *cycle),
            RunEvent::RecoveryStart { main, seq, cycle } => {
                o.on_recovery_start(*main, *seq, *cycle)
            }
            RunEvent::RecoveryComplete {
                main,
                cycle,
                latency,
            } => o.on_recovery_complete(*main, *cycle, *latency),
            RunEvent::CheckerKilled { checker, cycle } => o.on_checker_killed(*checker, *cycle),
            RunEvent::CheckerReleased { main, cycle } => o.on_checker_released(*main, *cycle),
            RunEvent::CheckerAcquired { main, cycle } => o.on_checker_acquired(*main, *cycle),
        }
    }
}

/// An owned, in-order buffer of [`RunEvent`]s — the `Send`-able stand-in
/// for a live observer. See the [module documentation](self) for the
/// migration pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBuffer {
    events: Vec<RunEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: RunEvent) {
        self.events.push(event);
    }

    /// The recorded events, in dispatch order.
    pub fn events(&self) -> &[RunEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every event into `observer`, in recorded order — the
    /// post-run equivalent of having attached it live.
    pub fn replay(&self, observer: &mut dyn Observer) {
        for e in &self.events {
            e.dispatch(observer);
        }
    }

    /// Consumes the buffer, yielding the owned event list.
    pub fn into_events(self) -> Vec<RunEvent> {
        self.events
    }

    /// Merges another buffer's events onto the end of this one (worker
    /// threads record per-run buffers; the aggregator merges post-run).
    pub fn extend(&mut self, other: EventBuffer) {
        self.events.extend(other.events);
    }
}

// The whole point: buffers and events cross threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RunEvent>();
    assert_send::<EventBuffer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ObserverEvent, RecordingObserver};

    #[test]
    fn replay_reproduces_the_callback_sequence() {
        let mut buf = EventBuffer::new();
        buf.push(RunEvent::SegmentOpen {
            main: 0,
            seq: 1,
            cycle: 10,
        });
        buf.push(RunEvent::CheckStart {
            checker: 1,
            main: 0,
            seq: 1,
            cycle: 20,
        });
        buf.push(RunEvent::CheckPass {
            checker: 1,
            result: SegmentResult {
                seq: 1,
                tag: 0,
                mismatch: None,
                at: 30,
            },
        });
        let mut rec = RecordingObserver::new();
        buf.replay(&mut rec);
        assert_eq!(
            rec.events(),
            &[
                ObserverEvent::SegmentOpen(0, 1, 10),
                ObserverEvent::CheckStart(1, 0, 1, 20),
                ObserverEvent::CheckPass(1, 1, 30),
            ]
        );
        assert_eq!(rec.summary().checks_passed, 1);
    }

    #[test]
    fn extend_merges_in_order() {
        let mut a = EventBuffer::new();
        a.push(RunEvent::MainFinished { main: 0, cycle: 5 });
        let mut b = EventBuffer::new();
        b.push(RunEvent::MainFinished { main: 1, cycle: 9 });
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(matches!(
            a.events()[1],
            RunEvent::MainFinished { main: 1, cycle: 9 }
        ));
    }

    #[test]
    fn buffers_cross_threads() {
        let mut buf = EventBuffer::new();
        buf.push(RunEvent::CheckerParked {
            checker: 2,
            cycle: 77,
        });
        let handle = std::thread::spawn(move || buf.len());
        assert_eq!(handle.join().unwrap(), 1);
    }
}
