//! Property tests of the Data-Buffer FIFO (DESIGN.md §7: "FIFO
//! conservation").
//!
//! The DBC FIFO is the hinge of asynchronous checking: every packet the
//! main core produces must reach every consumer exactly once, in order,
//! and storage accounting must stay exact under any interleaving of
//! pushes and per-consumer pops. These properties drive randomly
//! generated operation sequences against a reference model.

use flexstep_core::{BufferFifo, Checkpoint, LogEntry, LogKind, Packet};
use flexstep_sim::ArchState;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Operations the property drives.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push the next packet (payload derived from a running counter).
    Push(PacketShape),
    /// Pop for consumer `c` (modulo the consumer count).
    Pop(usize),
}

/// Operations for the burst-API equivalence property.
#[derive(Debug, Clone)]
enum BurstOp {
    /// Push a burst of packets in one `push_burst` call.
    PushBurst(Vec<PacketShape>),
    /// Pop one packet for consumer `c`.
    Pop(usize),
    /// Drain one complete segment for consumer `c`.
    DrainSegment(usize),
    /// Skip one complete segment for consumer `c`.
    SkipSegment(usize),
}

#[derive(Debug, Clone, Copy)]
enum PacketShape {
    Load,
    Store,
    ScPair,
    Scp,
    Ecp,
    Count,
}

fn packet_of(shape: PacketShape, n: u64) -> Packet {
    let snap = ArchState::new(n).snapshot();
    match shape {
        PacketShape::Load => Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0x1000 + n * 8,
            size: 8,
            data: n,
        }),
        PacketShape::Store => Packet::Mem(LogEntry {
            kind: LogKind::Store,
            addr: 0x2000 + n * 8,
            size: 8,
            data: n,
        }),
        PacketShape::ScPair => Packet::Mem(LogEntry {
            kind: LogKind::ScResult,
            addr: 0,
            size: 8,
            data: n & 1,
        }),
        PacketShape::Scp => Packet::scp(Checkpoint {
            snapshot: snap,
            seq: n,
            tag: 7,
        }),
        PacketShape::Ecp => Packet::ecp(Checkpoint {
            snapshot: snap,
            seq: n,
            tag: 7,
        }),
        PacketShape::Count => Packet::InstCount(n),
    }
}

fn shape_strategy() -> impl Strategy<Value = PacketShape> {
    prop_oneof![
        Just(PacketShape::Load),
        Just(PacketShape::Store),
        Just(PacketShape::ScPair),
        Just(PacketShape::Scp),
        Just(PacketShape::Ecp),
        Just(PacketShape::Count),
    ]
}

fn burst_op_strategy() -> impl Strategy<Value = BurstOp> {
    prop_oneof![
        3 => proptest::collection::vec(shape_strategy(), 1..6).prop_map(BurstOp::PushBurst),
        2 => (0usize..3).prop_map(BurstOp::Pop),
        1 => (0usize..3).prop_map(BurstOp::DrainSegment),
        1 => (0usize..3).prop_map(BurstOp::SkipSegment),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop_oneof![
            Just(PacketShape::Load),
            Just(PacketShape::Store),
            Just(PacketShape::ScPair),
            Just(PacketShape::Scp),
            Just(PacketShape::Ecp),
            Just(PacketShape::Count),
        ]
        .prop_map(Op::Push),
        2 => (0usize..3).prop_map(Op::Pop),
    ]
}

/// A reference model: unbounded per-consumer queues.
struct Reference {
    streams: Vec<VecDeque<Packet>>,
}

impl Reference {
    fn new(consumers: usize) -> Self {
        Reference {
            streams: (0..consumers).map(|_| VecDeque::new()).collect(),
        }
    }
    fn push(&mut self, p: &Packet) {
        for s in &mut self.streams {
            s.push_back(p.clone());
        }
    }
    fn pop(&mut self, c: usize) -> Option<Packet> {
        self.streams[c].pop_front()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With spill enabled the FIFO delivers exactly the pushed sequence
    /// to every consumer, independent of interleaving.
    #[test]
    fn delivery_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        consumers in 1usize..3,
    ) {
        let mut fifo = BufferFifo::new(256, 2);
        fifo.set_spill(true);
        fifo.set_consumers(consumers);
        let mut reference = Reference::new(consumers);
        let mut n = 0u64;
        for op in ops {
            match op {
                Op::Push(shape) => {
                    let p = packet_of(shape, n);
                    n += 1;
                    reference.push(&p);
                    fifo.push(p).expect("spill-enabled push cannot fail");
                }
                Op::Pop(c) => {
                    let c = c % consumers;
                    prop_assert_eq!(fifo.pop(c), reference.pop(c), "consumer {} diverged", c);
                }
            }
        }
        // Drain everything and compare the tails.
        for c in 0..consumers {
            loop {
                let (got, want) = (fifo.pop(c), reference.pop(c));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
        prop_assert!(fifo.is_fully_drained());
        prop_assert_eq!(fifo.used_bytes(), 0);
        prop_assert_eq!(fifo.checkpoints_in_flight(), 0);
    }

    /// Storage accounting is exact: used bytes always equal the byte sum
    /// of packets some consumer has not yet passed, and capacity is never
    /// exceeded without spill.
    #[test]
    fn accounting_is_exact_without_spill(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        consumers in 1usize..3,
    ) {
        let mut fifo = BufferFifo::new(160, 3);
        fifo.set_consumers(consumers);
        let mut n = 0u64;
        // Shadow: packets currently held with per-consumer positions.
        let mut reference = Reference::new(consumers);
        let mut held: VecDeque<Packet> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(shape) => {
                    let p = packet_of(shape, n);
                    let (bytes, cps) =
                        if p.is_checkpoint() { (0, 1) } else { (p.bytes(), 0) };
                    let fits = fifo.can_accept(bytes, cps);
                    match fifo.push(p.clone()) {
                        Ok(()) => {
                            prop_assert!(fits, "push succeeded though can_accept was false");
                            n += 1;
                            reference.push(&p);
                            held.push_back(p);
                        }
                        Err(e) => {
                            prop_assert!(!fits, "push failed though can_accept was true");
                            // The error reports the rejected packet's need
                            // in its own storage class: bytes for entries,
                            // slots for checkpoints.
                            if p.is_checkpoint() {
                                prop_assert_eq!(e.needed, 0);
                                prop_assert_eq!(e.needed_slots, 1);
                            } else {
                                prop_assert_eq!(e.needed, p.bytes());
                                prop_assert_eq!(e.needed_slots, 0);
                            }
                        }
                    }
                }
                Op::Pop(c) => {
                    let c = c % consumers;
                    let got = fifo.pop(c);
                    prop_assert_eq!(got, reference.pop(c));
                    // Reclaim in the shadow: the FIFO holds packets the
                    // *slowest* consumer has not passed, i.e. the longest
                    // remaining stream.
                    let max_remaining =
                        reference.streams.iter().map(VecDeque::len).max().unwrap_or(0);
                    while held.len() > max_remaining {
                        held.pop_front();
                    }
                }
            }
            let want_bytes: usize =
                held.iter().filter(|p| !p.is_checkpoint()).map(Packet::bytes).sum();
            let want_cps = held.iter().filter(|p| p.is_checkpoint()).count();
            prop_assert_eq!(fifo.used_bytes(), want_bytes, "byte accounting diverged");
            prop_assert_eq!(fifo.checkpoints_in_flight(), want_cps);
            prop_assert!(fifo.used_bytes() <= 160, "capacity violated");
            prop_assert!(fifo.peak_used_bytes() >= fifo.used_bytes());
        }
    }

    /// `complete_segments_ahead` counts exactly the unconsumed ECPs.
    #[test]
    fn segment_counting_matches_ecp_flow(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut fifo = BufferFifo::new(512, 8);
        fifo.set_spill(true);
        let mut pushed_ecps = 0u64;
        let mut consumed_ecps = 0u64;
        let mut n = 0u64;
        for op in ops {
            match op {
                Op::Push(shape) => {
                    let p = packet_of(shape, n);
                    n += 1;
                    if matches!(p, Packet::Ecp(_)) {
                        pushed_ecps += 1;
                    }
                    fifo.push(p).expect("spill enabled");
                }
                Op::Pop(_) => {
                    if let Some(Packet::Ecp(_)) = fifo.pop(0) {
                        consumed_ecps += 1;
                    }
                }
            }
            prop_assert_eq!(
                fifo.complete_segments_ahead(0),
                pushed_ecps - consumed_ecps
            );
        }
    }

    /// The burst APIs are byte-for-byte equivalent to per-packet
    /// `push`/`pop`: the same consumer-visible packet sequence, the same
    /// cursors (observed through `backlog`), and the same reclaim
    /// accounting (`used_bytes`/`checkpoints_in_flight`), under random
    /// interleavings with 1–2 consumers.
    #[test]
    fn burst_apis_match_per_packet_ops(
        ops in proptest::collection::vec(burst_op_strategy(), 1..80),
        consumers in 1usize..3,
    ) {
        let mut batched = BufferFifo::new(256, 4);
        batched.set_spill(true);
        batched.set_consumers(consumers);
        let mut single = batched.clone();
        let mut n = 0u64;
        for op in ops {
            match op {
                BurstOp::PushBurst(shapes) => {
                    let burst: Vec<Packet> = shapes
                        .iter()
                        .map(|&s| {
                            let p = packet_of(s, n);
                            n += 1;
                            p
                        })
                        .collect();
                    batched.push_burst(&burst).expect("spill enabled");
                    for p in &burst {
                        single.push(p.clone()).expect("spill enabled");
                    }
                }
                BurstOp::Pop(c) => {
                    let c = c % consumers;
                    prop_assert_eq!(batched.pop(c), single.pop(c));
                }
                BurstOp::DrainSegment(c) => {
                    let c = c % consumers;
                    let drained = batched.drain_segment(c);
                    // Reference: pop one at a time through the next ECP.
                    let expect = if single.complete_segments_ahead(c) == 0 {
                        None
                    } else {
                        let mut v = Vec::new();
                        loop {
                            let p = single.pop(c).expect("segment is buffered");
                            let is_ecp = matches!(p, Packet::Ecp(_));
                            v.push(p);
                            if is_ecp {
                                break;
                            }
                        }
                        Some(v)
                    };
                    prop_assert_eq!(drained, expect);
                }
                BurstOp::SkipSegment(c) => {
                    let c = c % consumers;
                    let skipped = batched.skip_segment(c);
                    let expect = if single.complete_segments_ahead(c) == 0 {
                        None
                    } else {
                        let mut count = 0usize;
                        loop {
                            let p = single.pop(c).expect("segment is buffered");
                            count += 1;
                            if matches!(p, Packet::Ecp(_)) {
                                break;
                            }
                        }
                        Some(count)
                    };
                    prop_assert_eq!(skipped, expect);
                }
            }
            // The two FIFOs must be indistinguishable after every op.
            prop_assert_eq!(batched.used_bytes(), single.used_bytes());
            prop_assert_eq!(
                batched.checkpoints_in_flight(),
                single.checkpoints_in_flight()
            );
            prop_assert_eq!(batched.len(), single.len());
            prop_assert_eq!(batched.total_pushed(), single.total_pushed());
            prop_assert_eq!(batched.spilled_packets(), single.spilled_packets());
            prop_assert_eq!(batched.is_fully_drained(), single.is_fully_drained());
            for c in 0..consumers {
                prop_assert_eq!(batched.backlog(c), single.backlog(c), "cursor {} diverged", c);
                prop_assert_eq!(
                    batched.complete_segments_ahead(c),
                    single.complete_segments_ahead(c)
                );
            }
        }
    }

    /// `reset` always restores an empty, reusable FIFO regardless of the
    /// state it interrupts.
    #[test]
    fn reset_from_any_state_is_clean(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        consumers in 1usize..3,
    ) {
        let mut fifo = BufferFifo::new(128, 2);
        fifo.set_spill(true);
        fifo.set_consumers(consumers);
        let mut n = 0u64;
        for op in ops {
            match op {
                Op::Push(shape) => {
                    fifo.push(packet_of(shape, n)).expect("spill enabled");
                    n += 1;
                }
                Op::Pop(c) => {
                    let _ = fifo.pop(c % consumers);
                }
            }
        }
        fifo.reset();
        prop_assert!(fifo.is_fully_drained());
        prop_assert_eq!(fifo.used_bytes(), 0);
        prop_assert_eq!(fifo.checkpoints_in_flight(), 0);
        prop_assert_eq!(fifo.complete_segments_ahead(0), 0);
        // The FIFO stays usable with aligned cursors.
        let p = packet_of(PacketShape::Load, 9999);
        fifo.push(p.clone()).expect("post-reset push");
        for c in 0..consumers {
            prop_assert_eq!(fifo.pop(c), Some(p.clone()), "consumer {} misaligned after reset", c);
        }
    }
}
