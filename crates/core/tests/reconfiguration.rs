//! Dynamic-configuration integration tests: §II's headline — "any
//! processor core can be configured as either a main core or a checker
//! core" — exercised end to end through the Tab. I operations, plus the
//! teardown preconditions that make runtime reconfiguration safe.

use flexstep_core::{CoreAttr, EngineStep, FabricConfig, FlexError, FlexSoc, Scenario, Topology};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_sim::{PrivMode, SocConfig, StepKind, TrapCause};

fn store_loop(name: &str, n: i64, slot: u64) -> Program {
    let mut asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    asm.li(XReg::A0, 0);
    asm.li(XReg::A1, n);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.label("loop").unwrap();
    asm.add(XReg::A0, XReg::A0, XReg::A1);
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "loop");
    asm.ecall();
    asm.finish().unwrap()
}

/// Drives `main` (running `program`) plus `checker` until the program's
/// final `ecall` and a drained stream; returns (segments_checked,
/// segments_failed) on the checker.
fn run_verified(fs: &mut FlexSoc, main: usize, checker: usize, program: &Program) -> (u64, u64) {
    fs.soc.load_program(program);
    fs.soc.core_mut(main).state.pc = program.entry;
    fs.soc.core_mut(main).state.prv = PrivMode::User;
    fs.soc.core_mut(main).unpark();
    fs.soc.core_mut(checker).unpark();
    let before = (
        fs.checker_state(checker).segments_checked,
        fs.checker_state(checker).segments_failed,
    );
    let mut done = false;
    for _ in 0..30_000_000u64 {
        if !done {
            if let EngineStep::Core(StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            }) = fs.step(main)
            {
                done = true;
                fs.soc.core_mut(main).park();
            }
        }
        fs.step(checker);
        if done && fs.fabric.unit(main).fifo.is_fully_drained() {
            break;
        }
    }
    assert!(done, "program must finish");
    (
        fs.checker_state(checker).segments_checked - before.0,
        fs.checker_state(checker).segments_failed - before.1,
    )
}

#[test]
fn roles_swap_between_runs() {
    // Phase 1: core 0 main, core 1 checker.
    let mut fs = FlexSoc::new(SocConfig::paper(2), FabricConfig::paper()).unwrap();
    fs.op_g_configure(&[0], &[1]).unwrap();
    fs.op_m_associate(0, &[1]).unwrap();
    fs.op_m_check(0, true).unwrap();
    fs.op_c_check_state(1, true).unwrap();
    let p1 = store_loop("first", 3_000, 0);
    let (checked, failed) = run_verified(&mut fs, 0, 1, &p1);
    assert!(checked > 0, "phase 1 verified segments");
    assert_eq!(failed, 0);

    // Swap: tear down cleanly, then core 1 main, core 0 checker.
    fs.op_m_check(0, false).unwrap();
    fs.op_c_check_state(1, false).unwrap();
    fs.op_g_configure(&[1], &[0]).unwrap();
    assert_eq!(fs.op_g_ids_contain(0).unwrap(), CoreAttr::Checker);
    assert_eq!(fs.op_g_ids_contain(1).unwrap(), CoreAttr::Main);
    fs.op_m_associate(1, &[0]).unwrap();
    fs.op_m_check(1, true).unwrap();
    fs.op_c_check_state(0, true).unwrap();

    let p2 = store_loop("second", 2_000, 1);
    let (checked, failed) = run_verified(&mut fs, 1, 0, &p2);
    assert!(
        checked > 0,
        "phase 2 verified segments on the swapped roles"
    );
    assert_eq!(failed, 0);
}

#[test]
fn quad_mode_verifies_three_times() {
    // 1:3 — beyond the paper's 1:1 / 1:2 figures, supported by the same
    // multi-consumer FIFO ("one-to-two, or more modes").
    let p = store_loop("quad", 1_500, 0);
    let mut dual = Scenario::new(&p).cores(2).build().unwrap();
    let rd = dual.run_to_completion(50_000_000);
    let mut quad = Scenario::new(&p)
        .cores(4)
        .topology(Topology::Custom(vec![(0, vec![1, 2, 3])]))
        .build()
        .unwrap();
    let rq = quad.run_to_completion(50_000_000);
    assert!(rd.completed && rq.completed);
    assert_eq!(rq.segments_failed, 0);
    assert_eq!(
        rq.segments_checked,
        3 * rd.segments_checked,
        "every segment verified by all three checkers"
    );
    // Wider fan-out may cost more backpressure but must stay bounded.
    assert!(
        rq.main_finish_cycle < rd.main_finish_cycle * 2,
        "quad mode must not collapse throughput: {} vs {}",
        rq.main_finish_cycle,
        rd.main_finish_cycle
    );
}

#[test]
fn reconfiguration_rejected_while_checking_live() {
    let p = store_loop("live", 50_000, 0);
    let mut run = Scenario::new(&p).cores(2).build().unwrap();
    assert!(run.run_until_cycle(20_000), "run must still be live");
    // Checking is enabled on main core 0: role change must be refused.
    let err = run.platform_mut().op_g_configure(&[1], &[0]).unwrap_err();
    assert_eq!(err, FlexError::CheckingEnabled { main: 0 });

    // Disabling checking exposes the next precondition: the undrained
    // stream (data is still buffered for the checker).
    run.platform_mut().op_m_check(0, false).unwrap();
    if !run.fabric().unit(0).fifo.is_fully_drained() {
        let err = run.platform_mut().op_g_configure(&[1], &[0]).unwrap_err();
        assert!(
            matches!(
                err,
                FlexError::StreamNotDrained { main: 0 } | FlexError::CheckerBusy { checker: 1 }
            ),
            "undrained reconfiguration must be refused: {err:?}"
        );
    }
}

#[test]
fn associate_validates_roles_and_ownership() {
    let mut fs = FlexSoc::new(SocConfig::paper(4), FabricConfig::paper()).unwrap();
    fs.op_g_configure(&[0, 2], &[1]).unwrap();
    // Checker list cannot be empty.
    assert_eq!(
        fs.op_m_associate(0, &[]).unwrap_err(),
        FlexError::NoCheckers
    );
    // A compute core is not a checker.
    assert_eq!(
        fs.op_m_associate(0, &[3]).unwrap_err(),
        FlexError::NotChecker { core: 3 }
    );
    // A main core cannot serve as a checker.
    assert_eq!(
        fs.op_m_associate(0, &[2]).unwrap_err(),
        FlexError::NotChecker { core: 2 }
    );
    // First association wins; a second main cannot steal the checker.
    fs.op_m_associate(0, &[1]).unwrap();
    assert_eq!(
        fs.op_m_associate(2, &[1]).unwrap_err(),
        FlexError::CheckerTaken {
            checker: 1,
            current_main: 0
        }
    );
    // Checker-only ops on the wrong attribute.
    assert_eq!(
        fs.op_c_record(0).unwrap_err(),
        FlexError::NotChecker { core: 0 }
    );
    assert_eq!(
        fs.op_c_result(0).unwrap_err(),
        FlexError::NotChecker { core: 0 }
    );
}

#[test]
#[allow(clippy::needless_range_loop)] // `core` is a core id, not just an index
fn compute_cores_run_unchecked_alongside_verification() {
    // 4 cores: 0 verified by 1; cores 2 and 3 are plain compute running
    // their own programs with zero FlexStep involvement.
    let mut fs = FlexSoc::new(SocConfig::paper(4), FabricConfig::paper()).unwrap();
    fs.op_g_configure(&[0], &[1]).unwrap();
    fs.op_m_associate(0, &[1]).unwrap();
    fs.op_m_check(0, true).unwrap();
    fs.op_c_check_state(1, true).unwrap();

    let pv = store_loop("verified", 2_000, 0);
    let pc2 = store_loop("compute2", 1_000, 1);
    let pc3 = store_loop("compute3", 1_200, 2);
    fs.soc.load_program(&pv);
    fs.soc.load_program(&pc2);
    fs.soc.load_program(&pc3);
    for (core, p) in [(0usize, &pv), (2, &pc2), (3, &pc3)] {
        fs.soc.core_mut(core).state.pc = p.entry;
        fs.soc.core_mut(core).state.prv = PrivMode::User;
        fs.soc.core_mut(core).unpark();
    }
    fs.soc.core_mut(1).unpark();

    let mut finished = [false; 4];
    finished[1] = true; // the checker has no program of its own
    for _ in 0..20_000_000u64 {
        for core in 0..4 {
            if finished[core] && core != 1 {
                continue;
            }
            if let EngineStep::Core(StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            }) = fs.step(core)
            {
                finished[core] = true;
                fs.soc.core_mut(core).park();
            }
        }
        if finished.iter().all(|&f| f) && fs.fabric.unit(0).fifo.is_fully_drained() {
            break;
        }
    }
    assert!(
        finished.iter().all(|&f| f),
        "all programs finish: {finished:?}"
    );
    assert_eq!(fs.checker_state(1).segments_failed, 0);
    assert!(fs.checker_state(1).segments_checked > 0);
    // Compute cores never produced checking traffic.
    assert_eq!(fs.fabric.unit(2).fifo.total_pushed(), 0);
    assert_eq!(fs.fabric.unit(3).fifo.total_pushed(), 0);
}
