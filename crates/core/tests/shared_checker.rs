//! N:1 checker-sharing integration tests (§III-C conflict resolution):
//! several main cores compete for one checker; the arbiter serialises
//! access at segment boundaries while waiting mains buffer into their own
//! FIFOs, so every stream is eventually verified and detections stay
//! attributed to the right main core.
//!
//! Built through the `Scenario` front door with
//! [`Topology::SharedChecker`].

use flexstep_core::{inject_random_fault, FabricConfig, Scenario, Topology, VerifiedRun};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn job(i: u64, iters: i64) -> Program {
    let mut asm = Assembler::with_bases(
        format!("job{i}"),
        0x1000_0000 + i * 0x10_0000,
        0x2000_0000 + i * 0x10_0000,
    );
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.li(XReg::A0, iters);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

/// N mains sharing one checker (cores = n + 1).
fn shared(programs: &[Program]) -> VerifiedRun {
    let mut scenario = Scenario::new(&programs[0])
        .cores(programs.len() + 1)
        .topology(Topology::SharedChecker { checkers: 1 })
        .fabric(FabricConfig::paper());
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    scenario.build().unwrap()
}

#[test]
fn three_mains_share_one_checker_cleanly() {
    let programs: Vec<Program> = (0..3).map(|i| job(i, 1_200 + 400 * i as i64)).collect();
    let mut run = shared(&programs);
    let report = run.run_to_completion(100_000_000);

    assert!(
        report.per_main.iter().all(|m| m.completed),
        "all mains finish: {report:?}"
    );
    assert_eq!(report.segments_failed, 0, "clean streams verify clean");
    assert!(
        report.segments_checked >= 3,
        "every stream produced segments"
    );
    assert!(report.detections.is_empty());
    // Exactly one immediate grant; the other two conflicted and queued.
    let arb = &report.arbiters[0];
    assert_eq!(arb.immediate_grants, 1);
    assert_eq!(arb.conflicts, 2);
    assert_eq!(arb.switches, 2, "the channel handed over twice");
    assert!(
        report.drain_cycle
            >= report
                .per_main
                .iter()
                .map(|m| m.finish_cycle)
                .max()
                .unwrap()
    );
}

#[test]
fn shared_checker_detection_attributes_the_right_main() {
    let programs: Vec<Program> = (0..2).map(|i| job(i, 4_000)).collect();
    let mut run = shared(&programs);

    // Let both mains produce, then corrupt a packet in main 1's stream
    // specifically (its own FIFO buffers while waiting for the checker).
    let mut rng = StdRng::seed_from_u64(17);
    let mut corrupted = false;
    for _ in 0..2_000_000 {
        if !run.step_once() {
            break;
        }
        if !corrupted && run.fabric().unit(1).fifo.len() > 4 {
            let now = run.now();
            if inject_random_fault(run.fabric_mut(), 1, now, &mut rng).is_some() {
                corrupted = true;
            }
        }
    }
    assert!(corrupted, "stream 1 must have buffered data to corrupt");
    let report = run.report();
    assert!(
        !report.detections.is_empty(),
        "the corrupted stream must be detected: {report:?}"
    );
    for d in &report.detections {
        assert_eq!(
            d.main_core, 1,
            "detection must blame the corrupted main: {d}"
        );
        assert_eq!(d.checker_core, 2, "the shared checker reports it");
    }
    // Main 0's stream still verified clean alongside.
    assert!(report.segments_checked > report.segments_failed);
}

#[test]
fn single_main_degenerates_to_dual_core() {
    let programs = vec![job(0, 2_000)];
    let mut run = shared(&programs);
    let report = run.run_to_completion(50_000_000);
    assert!(report.per_main[0].completed);
    assert_eq!(report.segments_failed, 0);
    let arb = &report.arbiters[0];
    assert_eq!(arb.immediate_grants, 1);
    assert_eq!(arb.conflicts, 0);
    assert_eq!(arb.switches, 0);
}

#[test]
fn mains_progress_while_waiting_for_the_checker() {
    // The §III-C point: a waiting main is NOT stalled — it keeps
    // executing, buffering its checking data (DMA spill beyond SRAM).
    let programs: Vec<Program> = (0..2).map(|i| job(i, 2_500)).collect();
    let mut run = shared(&programs);
    // Run a while; before any switch, the waiting main (core 1) must have
    // retired instructions even though core 0 holds the checker.
    for _ in 0..200_000 {
        if run.arbiter_stats()[0].switches > 0 {
            break;
        }
        if !run.step_once() {
            break;
        }
    }
    let waiting_retired = run.soc().core(1).instret;
    assert!(
        waiting_retired > 100,
        "waiting main must keep executing asynchronously: {waiting_retired}"
    );
    let report = run.run_to_completion(100_000_000);
    assert!(report.per_main.iter().all(|m| m.completed));
    assert_eq!(report.segments_failed, 0);
}

#[test]
fn shared_topology_with_two_checkers_balances_mains() {
    // 4 mains over 2 shared checkers: mains 0/2 bind to checker 4,
    // mains 1/3 to checker 5.
    let programs: Vec<Program> = (0..4).map(|i| job(i, 1_000)).collect();
    let mut scenario = Scenario::new(&programs[0])
        .cores(6)
        .topology(Topology::SharedChecker { checkers: 2 });
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build().unwrap();
    let report = run.run_to_completion(200_000_000);
    assert!(report.per_main.iter().all(|m| m.completed), "{report:?}");
    assert_eq!(report.segments_failed, 0);
    assert_eq!(report.arbiters.len(), 2, "one arbiter per shared checker");
    for arb in &report.arbiters {
        assert_eq!(arb.immediate_grants, 1);
        assert_eq!(arb.conflicts, 1);
        assert_eq!(arb.switches, 1);
    }
}
