//! The event-queue scheduler must be *bit-for-bit* interchangeable with
//! the seed's linear scan: both pick the same core at every step (same
//! `(ready_at, id)` order, same tie-breaks), so verified runs produce
//! identical reports — cycle counts included — under either engine.
//!
//! This is the safety net for the O(log n) ready queue: any divergence in
//! pick order would change interleaving, segment boundaries and cycle
//! accounting, and show up here immediately.

use flexstep_core::{FabricConfig, RunReport, Scenario, Topology};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_sim::SchedMode;

/// The store-loop workload of the harness tests: loads, stores and ALU
/// ops in a tight loop — every packet class flows through the DBC.
fn store_loop(n: i64) -> Program {
    let mut asm = Assembler::new("store_loop");
    asm.li(XReg::A0, 0);
    asm.li(XReg::A1, n);
    asm.li(XReg::A2, 0x2000_0000);
    asm.li(XReg::A4, 0);
    asm.label("loop").unwrap();
    asm.add(XReg::A0, XReg::A0, XReg::A1);
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "loop");
    asm.ecall();
    asm.finish().unwrap()
}

fn run_with(
    program: &Program,
    fabric: FabricConfig,
    checkers: usize,
    mode: SchedMode,
) -> RunReport {
    let mut run = Scenario::new(program)
        .cores(1 + checkers)
        .topology(Topology::Custom(vec![(0, (1..=checkers).collect())]))
        .fabric(fabric)
        .sched_mode(mode)
        .build()
        .expect("setup");
    let report = run.run_to_completion(100_000_000);
    assert!(report.completed, "run must finish under {mode:?}");
    report
}

fn assert_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(
        a.main_finish_cycle, b.main_finish_cycle,
        "{what}: main_finish_cycle"
    );
    assert_eq!(a.drain_cycle, b.drain_cycle, "{what}: drain_cycle");
    assert_eq!(a.retired, b.retired, "{what}: retired");
    assert_eq!(
        a.segments_checked, b.segments_checked,
        "{what}: segments_checked"
    );
    assert_eq!(
        a.segments_failed, b.segments_failed,
        "{what}: segments_failed"
    );
    assert_eq!(
        a.backpressure_stalls, b.backpressure_stalls,
        "{what}: backpressure_stalls"
    );
    assert_eq!(a.engine_steps, b.engine_steps, "{what}: engine_steps");
}

#[test]
fn heap_scheduler_matches_linear_scan_dual_core() {
    let p = store_loop(2000);
    let ev = run_with(&p, FabricConfig::paper(), 1, SchedMode::EventQueue);
    let scan = run_with(&p, FabricConfig::paper(), 1, SchedMode::LinearScan);
    assert!(ev.segments_checked >= 2, "workload spans segments");
    assert_identical(&ev, &scan, "dual-core paper config");
}

#[test]
fn heap_scheduler_matches_linear_scan_triple_core() {
    let p = store_loop(800);
    let ev = run_with(&p, FabricConfig::paper(), 2, SchedMode::EventQueue);
    let scan = run_with(&p, FabricConfig::paper(), 2, SchedMode::LinearScan);
    assert_identical(&ev, &scan, "triple-core paper config");
}

#[test]
fn heap_scheduler_matches_linear_scan_under_backpressure() {
    // A strict (no-spill) configuration with a deliberately tiny SRAM
    // exercises the backpressure path, where the main core's stall/retry
    // cadence is scheduler sensitive — the reports must still agree
    // exactly.
    let fabric = FabricConfig {
        fifo_entry_bytes: 160,
        ..FabricConfig::paper_strict()
    };
    let p = store_loop(1200);
    let ev = run_with(&p, fabric, 1, SchedMode::EventQueue);
    let scan = run_with(&p, fabric, 1, SchedMode::LinearScan);
    assert!(
        ev.backpressure_stalls > 0,
        "strict config must exercise backpressure"
    );
    assert_identical(&ev, &scan, "dual-core strict config");
}
