//! Property tests of the FlexStep checking pipeline.
//!
//! The central invariant of §II: as long as checkpoints and memory
//! accesses are recorded and buffered, the checker can reproduce the
//! main core's execution *exactly* — so for any program, a fault-free
//! run must verify clean, and the verified run's architectural results
//! must equal an unverified run's.

use flexstep_core::harness::baseline_cycles;
use flexstep_core::{FabricConfig, FaultPlan, FaultTarget, RecoveryPolicy, Scenario, Topology};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::inst::*;
use flexstep_isa::reg::{FReg, XReg};
use flexstep_sim::{Soc, SocConfig};
use flexstep_workloads::builder::control_loop_kernel_at;
use proptest::prelude::*;

/// Registers the generator may freely clobber (a2 = data base, a1 = loop
/// counter are reserved).
const SCRATCH: [XReg; 8] = [
    XReg::A0,
    XReg::A3,
    XReg::A4,
    XReg::A5,
    XReg::A6,
    XReg::A7,
    XReg::T0,
    XReg::T1,
];

const FP: [u32; 6] = [0, 1, 2, 3, 4, 5];

#[derive(Debug, Clone)]
enum BodyOp {
    Alu {
        op: IntOp,
        rd: usize,
        rs1: usize,
        rs2: usize,
    },
    AluImm {
        op: IntImmOp,
        rd: usize,
        rs1: usize,
        imm: i64,
    },
    Load {
        rd: usize,
        offset: i64,
    },
    Store {
        rs: usize,
        offset: i64,
    },
    Amo {
        op: AmoOp,
        rd: usize,
        rs: usize,
        offset_slot: i64,
    },
    LrSc {
        rd: usize,
        rs: usize,
        offset_slot: i64,
    },
    Fld {
        fd: usize,
        offset: i64,
    },
    Fsd {
        fs: usize,
        offset: i64,
    },
    Fp {
        op: FpOp,
        fd: usize,
        fa: usize,
        fb: usize,
    },
    Fma {
        fd: usize,
        fa: usize,
        fb: usize,
        fc: usize,
    },
    FCvt {
        rd: usize,
        fa: usize,
    },
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    let reg = 0usize..SCRATCH.len();
    let freg = 0usize..FP.len();
    let off = (0i64..64).prop_map(|v| v * 8);
    prop_oneof![
        (
            prop_oneof![
                Just(IntOp::Add),
                Just(IntOp::Sub),
                Just(IntOp::Xor),
                Just(IntOp::And),
                Just(IntOp::Or),
                Just(IntOp::Mul),
                Just(IntOp::Sltu),
            ],
            reg.clone(),
            reg.clone(),
            reg.clone()
        )
            .prop_map(|(op, rd, rs1, rs2)| BodyOp::Alu { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(IntImmOp::Addi),
                Just(IntImmOp::Xori),
                Just(IntImmOp::Andi)
            ],
            reg.clone(),
            reg.clone(),
            -512i64..512
        )
            .prop_map(|(op, rd, rs1, imm)| BodyOp::AluImm { op, rd, rs1, imm }),
        (reg.clone(), off.clone()).prop_map(|(rd, offset)| BodyOp::Load { rd, offset }),
        (reg.clone(), off.clone()).prop_map(|(rs, offset)| BodyOp::Store { rs, offset }),
        (
            prop_oneof![
                Just(AmoOp::Add),
                Just(AmoOp::Swap),
                Just(AmoOp::Xor),
                Just(AmoOp::Max)
            ],
            reg.clone(),
            reg.clone(),
            0i64..8
        )
            .prop_map(|(op, rd, rs, slot)| BodyOp::Amo {
                op,
                rd,
                rs,
                offset_slot: slot * 8
            }),
        (reg.clone(), reg.clone(), 0i64..8).prop_map(|(rd, rs, slot)| BodyOp::LrSc {
            rd,
            rs,
            offset_slot: slot * 8
        }),
        (freg.clone(), off.clone()).prop_map(|(fd, offset)| BodyOp::Fld { fd, offset }),
        (freg.clone(), off.clone()).prop_map(|(fs, offset)| BodyOp::Fsd { fs, offset }),
        (
            prop_oneof![
                Just(FpOp::Add),
                Just(FpOp::Sub),
                Just(FpOp::Mul),
                Just(FpOp::Min)
            ],
            freg.clone(),
            freg.clone(),
            freg.clone()
        )
            .prop_map(|(op, fd, fa, fb)| BodyOp::Fp { op, fd, fa, fb }),
        (freg.clone(), freg.clone(), freg.clone(), freg.clone())
            .prop_map(|(fd, fa, fb, fc)| BodyOp::Fma { fd, fa, fb, fc }),
        (reg, freg).prop_map(|(rd, fa)| BodyOp::FCvt { rd, fa }),
    ]
}

/// Builds a terminating program: an initialised data region, a loop of
/// `iters` iterations over the generated body, then `ecall`.
fn build_program(body: &[BodyOp], iters: i64) -> Program {
    build_program_at(body, iters, None)
}

/// Same, but placed in a per-slot text/data window so several instances
/// can run side by side on a multi-main topology.
fn build_program_at(body: &[BodyOp], iters: i64, slot: Option<u64>) -> Program {
    let mut asm = match slot {
        None => Assembler::new("prop_program"),
        Some(slot) => Assembler::with_bases(
            format!("prop_program{slot}"),
            0x1000_0000 + slot * 0x10_0000,
            0x2000_0000 + slot * 0x10_0000,
        ),
    };
    asm.data_label("region").unwrap();
    for i in 0..80u64 {
        asm.data_u64s(&[i.wrapping_mul(0x9E37_79B9_7F4A_7C15)]);
    }
    // a2 = data base, a1 = loop counter; seed scratch registers.
    asm.la(XReg::A2, "region");
    asm.li(XReg::A1, iters);
    for (i, &r) in SCRATCH.iter().enumerate() {
        asm.li(r, (i as i64 + 1) * 3);
    }
    for (i, &f) in FP.iter().enumerate() {
        asm.li(XReg::T2, i as i64 + 1);
        asm.push(Inst::FpCvt {
            op: FpCvtOp::LToD,
            rd: f,
            rs1: XReg::T2.index() as u32,
        });
    }
    asm.label("loop").unwrap();
    for op in body {
        match *op {
            BodyOp::Alu { op, rd, rs1, rs2 } => {
                asm.push(Inst::Op {
                    op,
                    rd: SCRATCH[rd],
                    rs1: SCRATCH[rs1],
                    rs2: SCRATCH[rs2],
                });
            }
            BodyOp::AluImm { op, rd, rs1, imm } => {
                asm.push(Inst::OpImm {
                    op,
                    rd: SCRATCH[rd],
                    rs1: SCRATCH[rs1],
                    imm,
                });
            }
            BodyOp::Load { rd, offset } => {
                asm.ld(SCRATCH[rd], XReg::A2, offset);
            }
            BodyOp::Store { rs, offset } => {
                asm.sd(XReg::A2, SCRATCH[rs], offset);
            }
            BodyOp::Amo {
                op,
                rd,
                rs,
                offset_slot,
            } => {
                // Compute the address in t2 = a2 + slot.
                asm.addi(XReg::T2, XReg::A2, offset_slot);
                asm.push(Inst::Amo {
                    op,
                    width: AmoWidth::D,
                    rd: SCRATCH[rd],
                    rs1: XReg::T2,
                    rs2: SCRATCH[rs],
                });
            }
            BodyOp::LrSc {
                rd,
                rs,
                offset_slot,
            } => {
                asm.addi(XReg::T2, XReg::A2, offset_slot);
                asm.push(Inst::Lr {
                    width: AmoWidth::D,
                    rd: SCRATCH[rd],
                    rs1: XReg::T2,
                });
                asm.push(Inst::Sc {
                    width: AmoWidth::D,
                    rd: SCRATCH[rd],
                    rs1: XReg::T2,
                    rs2: SCRATCH[rs],
                });
            }
            BodyOp::Fld { fd, offset } => {
                asm.fld(FReg::of(FP[fd]), XReg::A2, offset);
            }
            BodyOp::Fsd { fs, offset } => {
                asm.fsd(XReg::A2, FReg::of(FP[fs]), offset);
            }
            BodyOp::Fp { op, fd, fa, fb } => {
                asm.push(Inst::Fp {
                    op,
                    rd: FReg::of(FP[fd]),
                    rs1: FReg::of(FP[fa]),
                    rs2: FReg::of(FP[fb]),
                });
            }
            BodyOp::Fma { fd, fa, fb, fc } => {
                asm.push(Inst::Fma {
                    op: FmaOp::Madd,
                    rd: FReg::of(FP[fd]),
                    rs1: FReg::of(FP[fa]),
                    rs2: FReg::of(FP[fb]),
                    rs3: FReg::of(FP[fc]),
                });
            }
            BodyOp::FCvt { rd, fa } => {
                asm.push(Inst::FpCvt {
                    op: FpCvtOp::DToL,
                    rd: SCRATCH[rd].index() as u32,
                    rs1: FP[fa],
                });
            }
        }
    }
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "loop");
    asm.ecall();
    asm.finish().expect("generated program must assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any fault-free program verifies clean under dual-core checking,
    /// and checking does not change architectural results.
    #[test]
    fn clean_runs_always_verify(
        body in proptest::collection::vec(body_op(), 4..40),
        iters in 5i64..60,
    ) {
        let program = build_program(&body, iters);

        // Unverified baseline.
        let mut plain = Soc::new(SocConfig::paper(1)).expect("config");
        plain.run_to_ecall(&program, 5_000_000);
        let base_state = plain.core(0).state.snapshot();

        // Verified run with an intentionally small segment limit so even
        // short programs cross several segment boundaries.
        let fabric = FabricConfig { segment_limit: 150, ..FabricConfig::paper() };
        let mut run = Scenario::new(&program).cores(2).fabric(fabric).build().expect("setup");
        let report = run.run_to_completion(20_000_000);

        prop_assert!(report.completed, "verified run must finish");
        prop_assert_eq!(report.segments_failed, 0, "fault-free run must verify clean");
        prop_assert!(report.detections.is_empty());
        prop_assert!(report.segments_checked >= 1);

        // Verification must not perturb architectural results.
        let verified_state = run.soc().core(0).state.snapshot();
        prop_assert_eq!(verified_state.xregs, base_state.xregs);
        prop_assert_eq!(verified_state.fregs, base_state.fregs);

        // And memory contents must agree over the data region.
        let region = program.data_base;
        for slot in 0..80 {
            let addr = region + slot * 8;
            prop_assert_eq!(
                run.soc().mem.phys().read_u64(addr),
                plain.mem.phys().read_u64(addr),
                "memory diverged at {:#x}", addr
            );
        }
    }

    /// The backpressure path (tiny FIFO) preserves correctness: the run
    /// completes and still verifies clean, just more slowly.
    #[test]
    fn backpressure_preserves_correctness(
        body in proptest::collection::vec(body_op(), 8..24),
        iters in 20i64..50,
    ) {
        let program = build_program(&body, iters);
        let tight = FabricConfig {
            fifo_entry_bytes: 96, // a handful of entries
            segment_limit: 200,
            ..FabricConfig::paper_strict()
        };
        let mut run = Scenario::new(&program).cores(2).fabric(tight).build().expect("setup");
        let report = run.run_to_completion(50_000_000);
        prop_assert!(report.completed);
        prop_assert_eq!(report.segments_failed, 0);

        let base = baseline_cycles(&program, 5_000_000).expect("baseline");
        prop_assert!(report.main_finish_cycle >= base);
    }

    /// The segment-verdict memo must be architecturally and temporally
    /// invisible: for any program, topology, and fault plan, the memo-on
    /// and memo-off runs serialise to byte-identical reports. Hits replay
    /// the recorded cycle/consumption profile exactly; channels with an
    /// armed or in-flight fault shot bypass the memo and re-execute.
    #[test]
    fn memo_on_and_off_reports_are_byte_identical(
        body in proptest::collection::vec(body_op(), 4..24),
        iters in 30i64..120,
        shape in 0usize..3,
        faulted in any::<bool>(),
        tiny_cache in any::<bool>(),
    ) {
        // A small segment limit makes even short programs cross many
        // segment boundaries; loop-heavy bodies then produce real hits.
        let fabric = FabricConfig { segment_limit: 150, ..FabricConfig::paper() };
        let p0 = build_program_at(&body, iters, Some(0));
        let p1 = build_program_at(&body, iters, Some(1));

        let mut jsons = Vec::new();
        let mut hits = 0u64;
        for memo in [false, true] {
            let mut scenario = match shape {
                // 1 main : 1 checker, the Fig. 4 DCLS-like pair.
                0 => Scenario::new(&p0).cores(2),
                // Two pairs side by side.
                1 => Scenario::new(&p0).program(&p1).cores(4),
                // Two mains arbitrating over one shared checker (§III-C).
                _ => Scenario::new(&p0)
                    .program(&p1)
                    .cores(3)
                    .topology(Topology::SharedChecker { checkers: 1 }),
            };
            scenario = scenario
                .fabric(fabric)
                .memo(memo)
                .memo_capacity(if tiny_cache { 4 } else { 64 });
            if faulted {
                scenario = scenario.fault_plan(
                    FaultPlan::bit_flip_at(10_000, FaultTarget::EntryData).with_seed(7),
                );
            }
            let mut run = scenario.build().expect("setup");
            let report = run.run_to_completion(50_000_000);
            prop_assert!(report.completed, "memo={memo} run must finish");
            if memo {
                hits = run.fabric().stats.memo_hits;
            }
            jsons.push(report.to_json());
        }
        prop_assert_eq!(&jsons[0], &jsons[1], "memo on/off reports diverged (hits={})", hits);
    }

    /// Same identity on a workload engineered to produce real memo hits
    /// (`control_loop_kernel` repeats architectural state across
    /// segment-aligned repetitions): the hit path — recorded-profile
    /// playback instead of re-execution — must be byte-for-byte
    /// indistinguishable from a full replay, across dedicated and
    /// shared-checker topologies, cache-eviction pressure, and armed
    /// fault shots (which bypass the memo on the targeted channel).
    #[test]
    fn memo_hits_are_invisible_across_topologies(
        segments_per_rep in 2i64..5,
        reps in 2i64..5,
        shape in 0usize..3,
        faulted in any::<bool>(),
        tiny_cache in any::<bool>(),
    ) {
        let fabric = FabricConfig { segment_limit: 150, ..FabricConfig::paper() };
        let p0 = control_loop_kernel_at("ctrl0", 150, segments_per_rep, reps, 0);
        let p1 = control_loop_kernel_at("ctrl1", 150, segments_per_rep, reps, 1);

        let mut jsons = Vec::new();
        let mut hits = 0u64;
        for memo in [false, true] {
            let mut scenario = match shape {
                0 => Scenario::new(&p0).cores(2),
                1 => Scenario::new(&p0).program(&p1).cores(4),
                _ => Scenario::new(&p0)
                    .program(&p1)
                    .cores(3)
                    .topology(Topology::SharedChecker { checkers: 1 }),
            };
            scenario = scenario
                .fabric(fabric)
                .memo(memo)
                .memo_capacity(if tiny_cache { 4 } else { 64 });
            if faulted {
                scenario = scenario.fault_plan(
                    FaultPlan::bit_flip_at(2_000, FaultTarget::EntryData).with_seed(11),
                );
            }
            let mut run = scenario.build().expect("setup");
            let report = run.run_to_completion(50_000_000);
            prop_assert!(report.completed, "memo={memo} run must finish");
            if memo {
                hits = run.fabric().stats.memo_hits;
            }
            jsons.push(report.to_json());
        }
        if !faulted {
            prop_assert!(hits > 0, "aligned workload must produce memo hits");
        }
        prop_assert_eq!(&jsons[0], &jsons[1], "memo on/off reports diverged (hits={})", hits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §VI robustness: under `RecoveryPolicy::Rollback`, a faulted run
    /// must *converge* — faults only ever corrupt the in-flight DBC
    /// stream, so restoring the last verified segment checkpoint and
    /// re-executing yields a final architectural state byte-identical to
    /// a fault-free golden run, across random programs, topologies and
    /// fault plans. The attribution chain stays ordered
    /// (`detected <= landed <= armed`) and recoveries consume
    /// detections (`recovered <= detected`).
    #[test]
    fn rollback_runs_converge_to_the_golden_state(
        body in proptest::collection::vec(body_op(), 4..24),
        iters in 60i64..160,
        shape in 0usize..3,
        first_shot in 500u64..6_000,
        second_shot in 0u64..4_000,
        target in prop_oneof![
            Just(FaultTarget::EntryAddr),
            Just(FaultTarget::EntryData),
            Just(FaultTarget::Checkpoint),
            Just(FaultTarget::InstCount),
        ],
        seed in 0u64..1_000,
        max_retries in 1u32..4,
    ) {
        // The vendored proptest implements `Strategy` for tuples up to
        // arity 8 — derive the ninth dimension from the seed.
        let two_shots = seed % 2 == 0;
        let fabric = FabricConfig { segment_limit: 150, ..FabricConfig::paper() };
        let p0 = build_program_at(&body, iters, Some(0));
        let p1 = build_program_at(&body, iters, Some(1));
        let build = |faults: Option<FaultPlan>, recovery: RecoveryPolicy| {
            let mut scenario = match shape {
                0 => Scenario::new(&p0).cores(2),
                1 => Scenario::new(&p0).program(&p1).cores(4),
                _ => Scenario::new(&p0)
                    .program(&p1)
                    .cores(3)
                    .topology(Topology::SharedChecker { checkers: 1 }),
            };
            scenario = scenario.fabric(fabric).recovery(recovery);
            if let Some(plan) = faults {
                scenario = scenario.fault_plan(plan);
            }
            scenario.build().expect("setup")
        };
        let mains = if shape == 0 { 1 } else { 2 };

        // Fault-free golden run (policy irrelevant without detections).
        let mut golden = build(None, RecoveryPolicy::Detect);
        prop_assert!(golden.run_to_completion(50_000_000).completed);

        let mut plan = FaultPlan::bit_flip_at(first_shot, target).with_seed(seed);
        if two_shots {
            plan = plan.then_bit_flip_at(first_shot + 1_000 + second_shot, target);
        }
        let mut run = build(Some(plan), RecoveryPolicy::Rollback { max_retries });
        let report = run.run_to_completion(50_000_000);
        prop_assert!(report.completed, "rollback run must finish");

        // Attribution ordering and recovery accounting.
        let detected = report.detections.len();
        let landed = report.injections.len();
        prop_assert!(
            detected <= landed && landed <= report.shots_armed as usize,
            "detected {} <= landed {} <= armed {}",
            detected, landed, report.shots_armed
        );
        let recovered: usize = report
            .per_main
            .iter()
            .map(|m| m.recovery_latency_cycles.len())
            .sum();
        prop_assert!(recovered <= detected, "recovered {recovered} <= detected {detected}");
        for m in &report.per_main {
            prop_assert_eq!(
                m.unrecovered, 0,
                "transient shots always re-execute clean within one retry"
            );
            prop_assert_eq!(m.recovery_latency_cycles.len() as u64, m.recoveries);
        }

        // Convergence: every main ends byte-identical to the golden run,
        // registers and data region alike.
        for main in 0..mains {
            let slot = main * 2; // mains sit on even cores in all three shapes
            prop_assert_eq!(
                run.soc().core(slot).state.snapshot(),
                golden.soc().core(slot).state.snapshot(),
                "main {} diverged from the golden run", main
            );
            let region = if main == 0 { p0.data_base } else { p1.data_base };
            for word in 0..80 {
                let addr = region + word * 8;
                prop_assert_eq!(
                    run.soc().mem.phys().read_u64(addr),
                    golden.soc().mem.phys().read_u64(addr),
                    "memory diverged at {:#x}", addr
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The memo's invisibility guarantee survives the reliability-mode
    /// layer (ISSUE 10): under every [`ReliabilityMode`], and under
    /// mid-run checker release/re-acquire, memo-on and memo-off runs
    /// serialise to byte-identical reports — mode accounting included.
    /// Mode dispatch changes segment granularity (lockstep pins the
    /// limit to 1) and pairing swaps channels on and off mid-stream;
    /// neither may let a cached verdict replay where state diverged.
    #[test]
    fn memo_is_invisible_under_every_mode_and_repairing(
        body in proptest::collection::vec(body_op(), 4..20),
        iters in 30i64..100,
        mode_idx in 0usize..4,
        shape in 0usize..3,
        windowed in any::<bool>(),
        release in 1_000u64..4_000,
        window_len in 1_000u64..6_000,
        faulted in any::<bool>(),
    ) {
        use flexstep_core::{PairingSchedule, RELIABILITY_MODES};

        let mode = RELIABILITY_MODES[mode_idx];
        let fabric = FabricConfig { segment_limit: 150, ..FabricConfig::paper() };
        let p0 = build_program_at(&body, iters, Some(0));
        let p1 = build_program_at(&body, iters, Some(1));

        let mut jsons = Vec::new();
        for memo in [false, true] {
            let mut scenario = match shape {
                0 => Scenario::new(&p0).cores(2),
                1 => Scenario::new(&p0).program(&p1).cores(4),
                _ => Scenario::new(&p0)
                    .program(&p1)
                    .cores(3)
                    .topology(Topology::SharedChecker { checkers: 1 }),
            };
            scenario = scenario
                .fabric(fabric)
                .memo(memo)
                .main_reliability_mode(mode);
            // Pairing events are rejected on unchecked slots by design.
            if windowed && mode.is_checked() {
                scenario = scenario.pairing_schedule(
                    PairingSchedule::new().window(0, release, release + window_len),
                );
            }
            if faulted {
                scenario = scenario.fault_plan(
                    FaultPlan::bit_flip_at(2_000, FaultTarget::EntryData).with_seed(13),
                );
            }
            let mut run = scenario.build().expect("setup");
            let report = run.run_to_completion(100_000_000);
            prop_assert!(report.completed, "memo={memo} {mode} run must finish");
            jsons.push(report.to_json());
        }
        prop_assert_eq!(&jsons[0], &jsons[1], "memo on/off diverged under {}", mode);
    }
}
