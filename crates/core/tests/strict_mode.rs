//! SRAM-only (no DMA spill) datapath tests.
//!
//! Without spill, the DBC SRAM alone buffers the stream, and a checking
//! segment can be *larger* than the SRAM. The checker must then consume
//! streaming — entry by entry as the producer makes progress — because
//! waiting for a complete buffered segment would deadlock against the
//! main core's backpressure. These tests pin that down (regression: the
//! segment-granular consumption rule must only apply with spill enabled).

use flexstep_core::harness::baseline_cycles;
use flexstep_core::{FabricConfig, FaultPlan, Scenario};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;

/// A memory-heavy loop: every iteration does a store and a load, so a
/// 200-instruction segment carries ~80 log entries (≈ 1.3 KiB) — far
/// beyond a 96-byte SRAM.
fn memory_heavy(n: i64) -> Program {
    let mut asm = Assembler::new("memheavy");
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(128);
    asm.li(XReg::A1, n);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A1, 0);
    asm.ld(XReg::A3, XReg::A2, 8);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A1, XReg::A1, -1);
    asm.bnez(XReg::A1, "l");
    asm.ecall();
    asm.finish().unwrap()
}

#[test]
fn segment_larger_than_sram_streams_without_deadlock() {
    let tight = FabricConfig {
        fifo_entry_bytes: 96,
        segment_limit: 200,
        ..FabricConfig::paper_strict()
    };
    let program = memory_heavy(2_000);
    let mut run = Scenario::new(&program)
        .cores(2)
        .fabric(tight)
        .build()
        .unwrap();
    let report = run.run_to_completion(80_000_000);
    assert!(report.completed, "SRAM-only mode must stream, not deadlock");
    assert_eq!(report.segments_failed, 0);
    assert!(report.segments_checked > 0);
    assert!(
        report.backpressure_stalls > 0,
        "a 96-byte SRAM must backpressure a memory-heavy producer"
    );
}

#[test]
fn strict_mode_is_slower_but_correct() {
    let program = memory_heavy(3_000);
    let base = baseline_cycles(&program, 10_000_000).unwrap();

    let mut spill = Scenario::new(&program).cores(2).build().unwrap();
    let rs = spill.run_to_completion(100_000_000);
    let mut strict = Scenario::new(&program)
        .cores(2)
        .fabric(FabricConfig {
            fifo_entry_bytes: 256,
            ..FabricConfig::paper_strict()
        })
        .build()
        .unwrap();
    let rt = strict.run_to_completion(100_000_000);

    assert!(rs.completed && rt.completed);
    assert_eq!(rs.segments_failed + rt.segments_failed, 0);
    // Both checked the same stream.
    assert_eq!(rs.segments_checked, rt.segments_checked);
    // Spill decouples the producer; the tight SRAM costs main-core time.
    assert!(
        rt.main_finish_cycle >= rs.main_finish_cycle,
        "strict mode cannot be faster: {} vs {}",
        rt.main_finish_cycle,
        rs.main_finish_cycle
    );
    assert!(
        rt.main_finish_cycle >= base,
        "verification never speeds the main core up"
    );
}

#[test]
fn strict_mode_detects_injected_faults_too() {
    let tight = FabricConfig {
        fifo_entry_bytes: 256,
        ..FabricConfig::paper_strict()
    };
    let program = memory_heavy(5_000);
    let mut injected = 0;
    let mut detected = 0;
    for seed in 0..8u64 {
        let mut run = Scenario::new(&program)
            .cores(2)
            .fabric(tight)
            .fault_plan(FaultPlan::random_with_seed(20_000, seed))
            .build()
            .unwrap();
        let r = run.run_to_completion(100_000_000);
        if !r.injections.is_empty() {
            injected += 1;
            if !r.detections.is_empty() || r.segments_failed > 0 {
                detected += 1;
            }
        }
    }
    assert!(
        injected >= 6,
        "faults must land in the smaller in-flight window: {injected}"
    );
    assert!(
        detected * 10 >= injected * 8,
        "streaming replay must still verify: {detected}/{injected}"
    );
}
