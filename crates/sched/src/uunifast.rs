//! Task-set generation with the UUniFast algorithm (Bini & Buttazzo),
//! the generator used by the Fig. 5 experiments (§VI-B).

use crate::model::{ReliabilityClass, SpTask, TaskSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// How the generated set's total utilisation is accounted against the
/// `total_utilization` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UtilNorm {
    /// The originals alone sum to the target (verification copies come on
    /// top) — the natural view for analysing one scheme's inflation.
    #[default]
    OriginalsOnly,
    /// Originals *plus* verification copies sum to the target (a V2 task
    /// counts 2×u, a V3 task 3×u) — the Fig. 5 x-axis, where "task set
    /// utilisation" includes the duplicated computations the system must
    /// actually execute.
    WithCopies,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Number of tasks `n`.
    pub n: usize,
    /// Total utilisation `U` to distribute.
    pub total_utilization: f64,
    /// Fraction of double-check tasks `α`.
    pub alpha: f64,
    /// Fraction of triple-check tasks `β`.
    pub beta: f64,
    /// Minimum period (time units).
    pub period_min: f64,
    /// Maximum period (time units).
    pub period_max: f64,
    /// Utilisation accounting (see [`UtilNorm`]).
    pub normalization: UtilNorm,
}

impl GenParams {
    /// Originals-only accounting with log-uniform periods in
    /// [10, 1000] ms.
    pub fn paper(n: usize, total_utilization: f64, alpha: f64, beta: f64) -> Self {
        GenParams {
            n,
            total_utilization,
            alpha,
            beta,
            period_min: 10.0,
            period_max: 1000.0,
            normalization: UtilNorm::OriginalsOnly,
        }
    }

    /// The Fig. 5 sweep configuration: copy-inclusive accounting (the
    /// figure's x-axis counts the verification copies the system must
    /// run) and a decade of log-uniform periods ([10, 100] ms, keeping
    /// non-preemption blocking ratios in HMR's analysable range).
    pub fn fig5(n: usize, total_utilization: f64, alpha: f64, beta: f64) -> Self {
        GenParams {
            n,
            total_utilization,
            alpha,
            beta,
            period_min: 10.0,
            period_max: 100.0,
            normalization: UtilNorm::WithCopies,
        }
    }
}

/// UUniFast: draws `n` utilisations summing to `u` with a uniform
/// distribution over the valid simplex.
pub fn uunifast<R: Rng>(rng: &mut R, n: usize, u: f64) -> Vec<f64> {
    let mut utils = Vec::with_capacity(n);
    let mut sum = u;
    for i in 1..n {
        let next = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

/// Generates a task set per the Fig. 5 methodology: UUniFast utilisations,
/// log-uniform periods, and `α`/`β` fractions of double-/triple-check
/// tasks assigned to random tasks.
pub fn generate<R: Rng>(rng: &mut R, params: &GenParams) -> TaskSet {
    let utils = uunifast(rng, params.n, params.total_utilization);
    let mut tasks: Vec<SpTask> = utils
        .into_iter()
        .map(|u| {
            let log_min = params.period_min.ln();
            let log_max = params.period_max.ln();
            let period = (log_min + rng.gen::<f64>() * (log_max - log_min)).exp();
            // Cap utilisation at 1: a single task cannot exceed a core.
            let u = u.min(1.0);
            SpTask {
                id: 0,
                wcet: u * period,
                period,
                class: ReliabilityClass::Normal,
            }
        })
        .collect();

    let n_v2 = (params.alpha * params.n as f64).round() as usize;
    let n_v3 = (params.beta * params.n as f64).round() as usize;
    let mut idx: Vec<usize> = (0..params.n).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(n_v3) {
        tasks[i].class = ReliabilityClass::TripleCheck;
    }
    for &i in idx.iter().skip(n_v3).take(n_v2) {
        tasks[i].class = ReliabilityClass::DoubleCheck;
    }
    if params.normalization == UtilNorm::WithCopies {
        // Rescale so originals + verification copies hit the target.
        let with_copies: f64 = tasks
            .iter()
            .map(|t| t.utilization() * (1.0 + t.class.copies() as f64))
            .sum();
        if with_copies > 0.0 {
            let scale = params.total_utilization / with_copies;
            for t in &mut tasks {
                t.wcet *= scale;
            }
        }
    }
    TaskSet::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uunifast_sums_to_target() {
        let mut rng = StdRng::seed_from_u64(42);
        for &u in &[0.5, 2.0, 6.4] {
            for &n in &[2usize, 10, 160] {
                let utils = uunifast(&mut rng, n, u);
                assert_eq!(utils.len(), n);
                let sum: f64 = utils.iter().sum();
                assert!((sum - u).abs() < 1e-9, "sum {sum} != {u}");
                assert!(utils.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn generate_respects_class_fractions() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = GenParams::paper(160, 4.0, 0.125, 0.0625);
        let ts = generate(&mut rng, &params);
        assert_eq!(ts.len(), 160);
        let v2 = ts.of_class(ReliabilityClass::DoubleCheck).count();
        let v3 = ts.of_class(ReliabilityClass::TripleCheck).count();
        assert_eq!(v2, 20);
        assert_eq!(v3, 10);
    }

    #[test]
    fn generate_periods_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GenParams::paper(50, 2.0, 0.1, 0.1);
        let ts = generate(&mut rng, &params);
        for t in ts.tasks() {
            assert!(t.period >= 10.0 && t.period <= 1000.0);
            assert!(t.wcet > 0.0);
            assert!(t.utilization() <= 1.0 + 1e-12);
        }
        assert!(
            (ts.utilization() - 2.0).abs() < 0.05,
            "caps may trim slightly"
        );
    }

    #[test]
    fn with_copies_normalization_hits_target() {
        let mut rng = StdRng::seed_from_u64(21);
        let params = GenParams::fig5(80, 4.0, 0.25, 0.125);
        let ts = generate(&mut rng, &params);
        assert!(
            (ts.utilization_with_copies() - 4.0).abs() < 1e-9,
            "copy-inclusive total must hit the target: {}",
            ts.utilization_with_copies()
        );
        assert!(
            ts.utilization() < 4.0,
            "originals alone must be below the target"
        );
        for t in ts.tasks() {
            assert!(t.period >= 10.0 && t.period <= 100.0, "fig5 period decade");
        }
    }

    #[test]
    fn utilisation_distribution_is_not_degenerate() {
        // All mass should not consistently land on one task.
        let mut rng = StdRng::seed_from_u64(11);
        let mut max_share = 0.0f64;
        for _ in 0..20 {
            let utils = uunifast(&mut rng, 8, 1.0);
            let max = utils.iter().cloned().fold(0.0, f64::max);
            max_share = max_share.max(max);
        }
        assert!(max_share < 0.99, "UUniFast must spread utilisation");
    }
}
