//! Task-partitioning algorithms: FlexStep (Al. 3 of the paper) and the
//! LockStep / HMR baselines as described in §VI-B.

use crate::model::{ReliabilityClass, SpTask, TaskSet, VdPolicy};
use std::fmt;

/// What a core runs on behalf of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Piece {
    /// The original computation; verification tasks carry their virtual
    /// deadline (the EDF deadline used for the original computation).
    Original {
        /// `D'` when the task is verified, `D` otherwise.
        effective_deadline: f64,
    },
    /// The `copy`-th checking computation (0-based), scheduled with the
    /// original deadline.
    Check {
        /// Copy index (0 for double-check; 0 and 1 for triple-check).
        copy: usize,
    },
}

/// One task piece placed on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The task (index into the task set).
    pub task: usize,
    /// Which piece.
    pub piece: Piece,
    /// The core it was placed on.
    pub core: usize,
    /// The density this piece contributes to the core.
    pub density: f64,
}

/// A successful partition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Partition {
    /// All placements.
    pub assignments: Vec<Assignment>,
    /// Total density per core.
    pub core_density: Vec<f64>,
}

impl Partition {
    /// Placements on one core.
    pub fn on_core(&self, core: usize) -> impl Iterator<Item = &Assignment> {
        self.assignments.iter().filter(move |a| a.core == core)
    }

    /// The core hosting `task`'s original computation, if placed.
    pub fn original_core_of(&self, task: usize) -> Option<usize> {
        self.assignments
            .iter()
            .find(|a| a.task == task && matches!(a.piece, Piece::Original { .. }))
            .map(|a| a.core)
    }

    /// The cores hosting `task`'s checking copies, in copy order.
    pub fn checker_cores_of(&self, task: usize) -> Vec<usize> {
        let mut checks: Vec<(usize, usize)> = self
            .assignments
            .iter()
            .filter_map(|a| match a.piece {
                Piece::Check { copy } if a.task == task => Some((copy, a.core)),
                _ => None,
            })
            .collect();
        checks.sort_unstable();
        checks.into_iter().map(|(_, core)| core).collect()
    }

    /// The maximum core density.
    pub fn max_density(&self) -> f64 {
        self.core_density.iter().cloned().fold(0.0, f64::max)
    }
}

/// A partitioning scheme under test.
pub trait Partitioner {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Attempts to partition `ts` onto `m` cores; `None` = unschedulable
    /// under this scheme's admission test.
    fn partition(&self, ts: &TaskSet, m: usize) -> Option<Partition>;

    /// Convenience: whether the set is schedulable.
    fn schedulable(&self, ts: &TaskSet, m: usize) -> bool {
        self.partition(ts, m).is_some()
    }
}

impl fmt::Debug for dyn Partitioner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partitioner({})", self.name())
    }
}

fn argmin_excluding(density: &[f64], exclude: &[usize]) -> Option<usize> {
    density
        .iter()
        .enumerate()
        .filter(|(k, _)| !exclude.contains(k))
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("densities are finite"))
        .map(|(k, _)| k)
}

// ---------------------------------------------------------------------------
// FlexStep (Al. 3)
// ---------------------------------------------------------------------------

/// Al. 3: partitioned EDF with virtual deadlines and asynchronous
/// verification. Originals and their checking copies are forced onto
/// distinct cores; cores are chosen min-density-first; the set is
/// schedulable if every core's total density is at most one.
///
/// Uses the paper's density-optimal virtual deadlines; see
/// [`VdFlexStepPartitioner`] for the ablation over other splits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlexStepPartitioner;

impl Partitioner for FlexStepPartitioner {
    fn name(&self) -> &'static str {
        "FlexStep"
    }

    fn partition(&self, ts: &TaskSet, m: usize) -> Option<Partition> {
        VdFlexStepPartitioner::new(VdPolicy::paper()).partition(ts, m)
    }
}

/// Al. 3 with a configurable virtual-deadline split — the ablation knob
/// behind the `ablate_vd` bench. [`FlexStepPartitioner`] is this with
/// [`VdPolicy::paper`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VdFlexStepPartitioner {
    /// The virtual-deadline split in use.
    pub policy: VdPolicy,
}

impl VdFlexStepPartitioner {
    /// Creates the partitioner with an explicit policy.
    pub fn new(policy: VdPolicy) -> Self {
        VdFlexStepPartitioner { policy }
    }
}

impl Partitioner for VdFlexStepPartitioner {
    fn name(&self) -> &'static str {
        "FlexStep-vd"
    }

    fn partition(&self, ts: &TaskSet, m: usize) -> Option<Partition> {
        let mut delta = vec![0.0f64; m];
        let mut assignments = Vec::new();

        // Lines 4–14: verification tasks, descending utilisation.
        for t in ts.verification_desc_util() {
            let (d_o, d_v) = self.policy.densities(&t).expect("verification task");
            let dp = self.policy.virtual_deadline(&t).expect("verification task");

            let k = argmin_excluding(&delta, &[])?;
            delta[k] += d_o;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: dp,
                },
                core: k,
                density: d_o,
            });

            let k1 = argmin_excluding(&delta, &[k])?;
            delta[k1] += d_v;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Check { copy: 0 },
                core: k1,
                density: d_v,
            });

            if t.class == ReliabilityClass::TripleCheck {
                let k2 = argmin_excluding(&delta, &[k, k1])?;
                delta[k2] += d_v;
                assignments.push(Assignment {
                    task: t.id,
                    piece: Piece::Check { copy: 1 },
                    core: k2,
                    density: d_v,
                });
            }
        }

        // Lines 15–18: normal tasks, descending utilisation.
        for t in ts.normal_desc_util() {
            let d_o = t.utilization();
            let k = argmin_excluding(&delta, &[])?;
            delta[k] += d_o;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: t.deadline(),
                },
                core: k,
                density: d_o,
            });
        }

        // Lines 19–20: density test.
        if delta.iter().any(|&d| d > 1.0 + 1e-12) {
            return None;
        }
        Some(Partition {
            assignments,
            core_density: delta,
        })
    }
}

// ---------------------------------------------------------------------------
// LockStep baseline
// ---------------------------------------------------------------------------

/// The LockStep baseline of §VI-B: the *rigid* design of Fig. 1(a).
/// Every core is statically bound into a lockstep group (TCLS triples
/// where triple-check demand requires them, DCLS pairs otherwise); a
/// group executes as a single logical core and *everything* scheduled on
/// it is checked, needed or not. Verification tasks are allocated first,
/// opening a new group only when the current one is full; leftover cores
/// that cannot form a pair are unusable; non-verification tasks then go
/// onto the least-loaded group.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockStepPartitioner;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinKind {
    Tcls,
    Dcls,
}

impl Partitioner for LockStepPartitioner {
    fn name(&self) -> &'static str {
        "LockStep"
    }

    fn partition(&self, ts: &TaskSet, m: usize) -> Option<Partition> {
        // Logical bins: (kind, load). Groups consume 2 or 3 physical
        // cores from the pool.
        let mut bins: Vec<(BinKind, f64)> = Vec::new();
        let mut free_cores = m;
        let mut assignments = Vec::new();

        let place = |bins: &mut Vec<(BinKind, f64)>,
                     free_cores: &mut usize,
                     t: &SpTask,
                     want: Option<BinKind>|
         -> Option<usize> {
            let u = t.utilization();
            // Fit into an existing eligible bin (TCLS covers V2 and
            // normal demand; DCLS covers V2 and normal, not V3).
            let eligible = |k: BinKind| match want {
                Some(BinKind::Tcls) => k == BinKind::Tcls,
                Some(BinKind::Dcls) | None => true,
            };
            let best = bins
                .iter()
                .enumerate()
                .filter(|(_, (k, load))| eligible(*k) && load + u <= 1.0 + 1e-12)
                .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
                .map(|(i, _)| i);
            if let Some(i) = best {
                bins[i].1 += u;
                return Some(i);
            }
            // Open a new group of the wanted kind (normal tasks cannot
            // open groups — the static structure is set by verification
            // demand and the final pairing pass).
            let cost = match want? {
                BinKind::Tcls => 3,
                BinKind::Dcls => 2,
            };
            if *free_cores >= cost && u <= 1.0 + 1e-12 {
                *free_cores -= cost;
                bins.push((want?, u));
                return Some(bins.len() - 1);
            }
            None
        };

        // Verification tasks first, V3 before V2 (a TCLS group can host
        // V2 demand but not vice versa), each class by descending
        // utilisation.
        let verif = ts.verification_desc_util();
        for t in verif
            .iter()
            .filter(|t| t.class == ReliabilityClass::TripleCheck)
        {
            let bin = place(&mut bins, &mut free_cores, t, Some(BinKind::Tcls))?;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: t.deadline(),
                },
                core: bin,
                density: t.utilization(),
            });
        }
        for t in verif
            .iter()
            .filter(|t| t.class == ReliabilityClass::DoubleCheck)
        {
            let bin = place(&mut bins, &mut free_cores, t, Some(BinKind::Dcls))?;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: t.deadline(),
                },
                core: bin,
                density: t.utilization(),
            });
        }
        // The rigid design binds every remaining core into DCLS pairs; an
        // odd leftover core has no partner and is wasted.
        while free_cores >= 2 {
            free_cores -= 2;
            bins.push((BinKind::Dcls, 0.0));
        }
        // Non-verification tasks across all groups (least-loaded first);
        // they are checked whether they need it or not.
        for t in ts.normal_desc_util() {
            let bin = place(&mut bins, &mut free_cores, &t, None)?;
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: t.deadline(),
                },
                core: bin,
                density: t.utilization(),
            });
        }

        let core_density: Vec<f64> = bins.iter().map(|(_, l)| *l).collect();
        if core_density.iter().any(|&d| d > 1.0 + 1e-12) {
            return None;
        }
        Some(Partition {
            assignments,
            core_density,
        })
    }
}

// ---------------------------------------------------------------------------
// HMR baseline
// ---------------------------------------------------------------------------

/// The HMR baseline of §VI-B: runtime split-lock on static core pairs.
/// Verification tasks execute synchronously with their copies — the
/// partner core(s) are occupied for the task's whole execution and the
/// pair must find *common* slack (gang constraint) — and verification
/// cannot be preempted by non-verification tasks, which adds an EDF
/// blocking term for normal tasks sharing a core with verification work.
/// Non-verification tasks run unchecked on any individual core.
#[derive(Debug, Clone, Copy, Default)]
pub struct HmrPartitioner;

impl HmrPartitioner {
    /// Longest verification section on `core` with a deadline strictly
    /// longer than `deadline` (what can block a task of that deadline).
    fn blocking(per_core: &[Vec<SpTask>], core: usize, deadline: f64) -> f64 {
        per_core[core]
            .iter()
            .filter(|o| o.class != ReliabilityClass::Normal && o.deadline() > deadline)
            .map(|o| o.wcet)
            .fold(0.0, f64::max)
    }
}

impl Partitioner for HmrPartitioner {
    fn name(&self) -> &'static str {
        "HMR"
    }

    fn partition(&self, ts: &TaskSet, m: usize) -> Option<Partition> {
        let pairs = m / 2;
        if pairs == 0 {
            // A single core cannot split-lock; only pure-normal sets fit.
            if ts
                .tasks()
                .iter()
                .any(|t| t.class != ReliabilityClass::Normal)
            {
                return None;
            }
        }
        let mut load = vec![0.0f64; m];
        // Verification utilisation charged per pair (gang constraint).
        let mut pair_verif = vec![0.0f64; pairs.max(1)];
        let mut per_core: Vec<Vec<SpTask>> = vec![Vec::new(); m];
        let mut assignments = Vec::new();

        // Verification tasks first (descending utilisation), onto the
        // least-loaded pair that can absorb them. A V3 task additionally
        // occupies one core of another pair for its second copy.
        for t in ts.verification_desc_util() {
            let u = t.utilization();
            let best = (0..pairs)
                .filter(|&p| load[2 * p] + u <= 1.0 + 1e-12 && load[2 * p + 1] + u <= 1.0 + 1e-12)
                .min_by(|&a, &b| {
                    (load[2 * a] + load[2 * a + 1])
                        .partial_cmp(&(load[2 * b] + load[2 * b + 1]))
                        .expect("finite")
                })?;
            let cores = [2 * best, 2 * best + 1];
            for (copy, &c) in cores.iter().enumerate() {
                load[c] += u;
                per_core[c].push(t);
                assignments.push(Assignment {
                    task: t.id,
                    piece: if copy == 0 {
                        Piece::Original {
                            effective_deadline: t.deadline(),
                        }
                    } else {
                        Piece::Check { copy: copy - 1 }
                    },
                    core: c,
                    density: u,
                });
            }
            pair_verif[best] += u;
            if t.class == ReliabilityClass::TripleCheck {
                // Second copy on the least-loaded core outside the pair.
                let extra = (0..m)
                    .filter(|&c| c / 2 != best && load[c] + u <= 1.0 + 1e-12)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))?;
                load[extra] += u;
                per_core[extra].push(t);
                if extra / 2 < pairs {
                    pair_verif[extra / 2] += u;
                }
                assignments.push(Assignment {
                    task: t.id,
                    piece: Piece::Check { copy: 1 },
                    core: extra,
                    density: u,
                });
            }
        }

        // Non-verification tasks: first fill verification-free cores,
        // then the least-loaded core where capacity and the blocking
        // bound both hold.
        for t in ts.normal_desc_util() {
            let u = t.utilization();
            let fits = |c: usize| {
                load[c] + u <= 1.0 + 1e-12
                    && load[c] + u + Self::blocking(&per_core, c, t.deadline()) / t.deadline()
                        <= 1.0 + 1e-12
            };
            let free_first = (0..m)
                .filter(|&c| {
                    per_core[c]
                        .iter()
                        .all(|o| o.class == ReliabilityClass::Normal)
                })
                .filter(|&c| fits(c))
                .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"));
            let chosen = free_first.or_else(|| {
                (0..m)
                    .filter(|&c| fits(c))
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
            })?;
            load[chosen] += u;
            per_core[chosen].push(t);
            assignments.push(Assignment {
                task: t.id,
                piece: Piece::Original {
                    effective_deadline: t.deadline(),
                },
                core: chosen,
                density: u,
            });
        }

        // Admission: per-core capacity, per-pair gang slack, and the
        // blocking bound for every normal task.
        for c in 0..m {
            if load[c] > 1.0 + 1e-12 {
                return None;
            }
            for t in &per_core[c] {
                if t.class == ReliabilityClass::Normal {
                    let b = Self::blocking(&per_core, c, t.deadline());
                    if load[c] + b / t.deadline() > 1.0 + 1e-12 {
                        return None;
                    }
                }
            }
        }
        for p in 0..pairs {
            let normal_a = load[2 * p] - pair_verif[p].min(load[2 * p]);
            let normal_b = load[2 * p + 1] - pair_verif[p].min(load[2 * p + 1]);
            if pair_verif[p] + normal_a.max(normal_b) > 1.0 + 1e-12 {
                return None;
            }
        }
        Some(Partition {
            assignments,
            core_density: load,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, wcet: f64, period: f64, class: ReliabilityClass) -> SpTask {
        SpTask {
            id,
            wcet,
            period,
            class,
        }
    }

    fn set(tasks: Vec<SpTask>) -> TaskSet {
        TaskSet::new(tasks)
    }

    #[test]
    fn flexstep_places_copies_on_distinct_cores() {
        let ts = set(vec![
            t(0, 2.0, 10.0, ReliabilityClass::TripleCheck),
            t(1, 1.0, 10.0, ReliabilityClass::Normal),
        ]);
        let p = FlexStepPartitioner.partition(&ts, 4).expect("schedulable");
        let cores: Vec<usize> = p
            .assignments
            .iter()
            .filter(|a| a.task == 0)
            .map(|a| a.core)
            .collect();
        assert_eq!(cores.len(), 3, "V3 = original + two checks");
        let mut unique = cores.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "all on distinct cores: {cores:?}");
    }

    #[test]
    fn partition_lookup_helpers() {
        let ts = set(vec![
            t(0, 1.0, 10.0, ReliabilityClass::TripleCheck),
            t(1, 2.0, 10.0, ReliabilityClass::Normal),
        ]);
        let p = FlexStepPartitioner.partition(&ts, 4).expect("schedulable");
        let orig = p.original_core_of(0).expect("placed");
        let checkers = p.checker_cores_of(0);
        assert_eq!(checkers.len(), 2, "V3 has two checking copies");
        assert!(
            !checkers.contains(&orig),
            "copies avoid the original's core"
        );
        assert!(p.original_core_of(1).is_some());
        assert!(
            p.checker_cores_of(1).is_empty(),
            "normal tasks have no copies"
        );
        assert_eq!(p.original_core_of(7), None);
    }

    #[test]
    fn flexstep_density_accounting_is_exact() {
        let ts = set(vec![t(0, 2.0, 10.0, ReliabilityClass::DoubleCheck)]);
        let p = FlexStepPartitioner.partition(&ts, 2).expect("schedulable");
        // δ^o = C/(D/2) = 0.4 on one core; δ^v = C/(D−D') = 0.4 on the other.
        let mut d = p.core_density.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((d[0] - 0.4).abs() < 1e-12);
        assert!((d[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn flexstep_rejects_overload() {
        // Density of a V2 task is 2C/D per core; C=6,D=10 => 1.2 > 1.
        let ts = set(vec![t(0, 6.0, 10.0, ReliabilityClass::DoubleCheck)]);
        assert!(FlexStepPartitioner.partition(&ts, 8).is_none());
    }

    #[test]
    fn flexstep_needs_enough_cores_for_v3() {
        let ts = set(vec![t(0, 1.0, 10.0, ReliabilityClass::TripleCheck)]);
        assert!(
            FlexStepPartitioner.partition(&ts, 2).is_none(),
            "3 pieces need 3 cores"
        );
        assert!(FlexStepPartitioner.partition(&ts, 3).is_some());
    }

    #[test]
    fn lockstep_groups_consume_cores() {
        // One V2 task forces a DCLS pair; the rigid design fuses all
        // cores, so a heavy normal task needs a whole second pair.
        let ts = set(vec![
            t(0, 5.0, 10.0, ReliabilityClass::DoubleCheck),
            t(1, 6.0, 10.0, ReliabilityClass::Normal),
        ]);
        // m=2: pair load would be 0.5 + 0.6 = 1.1 > 1.
        assert!(LockStepPartitioner.partition(&ts, 2).is_none());
        // m=3: the leftover third core has no partner and is wasted.
        assert!(LockStepPartitioner.partition(&ts, 3).is_none());
        // m=4: two pairs.
        assert!(LockStepPartitioner.partition(&ts, 4).is_some());
    }

    #[test]
    fn lockstep_v3_needs_a_triple() {
        let ts = set(vec![t(0, 1.0, 10.0, ReliabilityClass::TripleCheck)]);
        assert!(LockStepPartitioner.partition(&ts, 2).is_none());
        assert!(LockStepPartitioner.partition(&ts, 3).is_some());
    }

    #[test]
    fn hmr_blocks_short_deadline_normals() {
        // A long verification section blocks a short-deadline normal
        // task on the same core when it cannot be placed elsewhere.
        let ts = set(vec![
            t(0, 5.0, 100.0, ReliabilityClass::DoubleCheck), // long section
            t(1, 0.9, 2.0, ReliabilityClass::Normal),        // tight deadline
        ]);
        // m=2: pair (0,1) hosts verification on both cores; the normal
        // task lands with the verification and gets blocked:
        // 0.05 + 0.45 + 5/2 > 1.
        assert!(HmrPartitioner.partition(&ts, 2).is_none());
        // m=4: the normal task gets a verification-free core.
        assert!(HmrPartitioner.partition(&ts, 4).is_some());
    }

    #[test]
    fn hmr_occupies_partner_core() {
        let ts = set(vec![t(0, 4.0, 10.0, ReliabilityClass::DoubleCheck)]);
        let p = HmrPartitioner.partition(&ts, 2).expect("fits");
        assert!((p.core_density[0] - 0.4).abs() < 1e-12);
        assert!(
            (p.core_density[1] - 0.4).abs() < 1e-12,
            "synchronous copy occupies partner"
        );
    }

    #[test]
    fn relative_flexibility_on_a_crafted_set() {
        // The Fig. 1 story in miniature: light verification demand plus
        // two medium normal tasks. FlexStep runs the normals on separate
        // cores and slots the checking in asynchronously; rigid LockStep
        // fuses both cores into one checked pair and fails.
        let ts = set(vec![
            t(0, 0.5, 10.0, ReliabilityClass::DoubleCheck), // δ = 0.1 + 0.1
            t(1, 6.0, 10.0, ReliabilityClass::Normal),
            t(2, 6.0, 10.0, ReliabilityClass::Normal),
        ]);
        assert!(
            FlexStepPartitioner.partition(&ts, 2).is_some(),
            "FlexStep fits on 2 cores"
        );
        assert!(
            LockStepPartitioner.partition(&ts, 2).is_none(),
            "one fused pair cannot host 0.05 + 0.6 + 0.6"
        );
        assert!(
            HmrPartitioner.partition(&ts, 2).is_some(),
            "HMR sits in between"
        );
    }

    #[test]
    fn vd_partitioner_with_paper_policy_matches_flexstep() {
        let ts = set(vec![
            t(0, 2.0, 10.0, ReliabilityClass::DoubleCheck),
            t(1, 1.0, 8.0, ReliabilityClass::TripleCheck),
            t(2, 3.0, 12.0, ReliabilityClass::Normal),
        ]);
        let a = FlexStepPartitioner.partition(&ts, 4);
        let b = VdFlexStepPartitioner::new(VdPolicy::paper()).partition(&ts, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_vd_policy_loses_schedulability() {
        // A set right at the paper policy's admission edge: a V2 task
        // with density 0.5 per piece. θ = 0.5 gives (1.0, 1.0)-per-core
        // on two cores; a skewed split pushes one side over 1.
        let ts = set(vec![
            t(0, 2.5, 10.0, ReliabilityClass::DoubleCheck),
            t(1, 5.0, 10.0, ReliabilityClass::Normal),
            t(2, 5.0, 10.0, ReliabilityClass::Normal),
        ]);
        assert!(FlexStepPartitioner.partition(&ts, 2).is_some());
        assert!(
            VdFlexStepPartitioner::new(VdPolicy::uniform(0.3))
                .partition(&ts, 2)
                .is_none(),
            "tight original window overloads its core"
        );
        assert!(
            VdFlexStepPartitioner::new(VdPolicy::uniform(0.7))
                .partition(&ts, 2)
                .is_none(),
            "tight checking window overloads the other core"
        );
    }

    #[test]
    fn empty_set_is_trivially_schedulable() {
        let ts = set(vec![]);
        assert!(FlexStepPartitioner.partition(&ts, 1).is_some());
        assert!(LockStepPartitioner.partition(&ts, 1).is_some());
        assert!(HmrPartitioner.partition(&ts, 1).is_some());
    }
}
