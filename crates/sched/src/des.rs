//! Discrete-event simulation of a partitioned-EDF schedule.
//!
//! Empirically validates the analytical admission tests: a partition
//! accepted by Al. 3 must produce no deadline misses under the analysis'
//! release model (originals released periodically with virtual deadlines;
//! checking copies released at the virtual deadline — the worst case §V
//! assumes — with the original deadline).

use crate::model::{virtual_deadline, TaskSet};
use crate::partition::{Partition, Piece};

/// One job stream on a core.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Release offset within the period.
    offset: f64,
    /// Period.
    period: f64,
    /// Relative deadline from the stream release.
    rel_deadline: f64,
    /// Execution demand per job.
    wcet: f64,
}

/// Result of simulating one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSimResult {
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that missed their deadline.
    pub misses: u64,
    /// Busy time fraction.
    pub busy_fraction: f64,
}

/// Simulates preemptive EDF on one core's streams until `horizon`.
fn simulate_core(streams: &[Stream], horizon: f64) -> CoreSimResult {
    #[derive(Debug, Clone, Copy)]
    struct LiveJob {
        deadline: f64,
        remaining: f64,
    }

    let mut released = 0u64;
    let mut misses = 0u64;
    let mut busy = 0.0f64;

    // Next release index per stream.
    let mut next_k: Vec<u64> = vec![0; streams.len()];
    let mut live: Vec<LiveJob> = Vec::new();
    let mut t = 0.0f64;

    let next_release = |next_k: &[u64]| -> Option<(usize, f64)> {
        streams
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.offset + next_k[i] as f64 * s.period))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
    };

    while t < horizon {
        // Release everything due now.
        while let Some((i, r)) = next_release(&next_k) {
            if r <= t + 1e-9 {
                next_k[i] += 1;
                released += 1;
                live.push(LiveJob {
                    deadline: r + streams[i].rel_deadline,
                    remaining: streams[i].wcet,
                });
            } else {
                break;
            }
        }
        let upcoming = next_release(&next_k).map(|(_, r)| r).unwrap_or(horizon);

        // Pick the EDF job.
        let job = live
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > 1e-12)
            .min_by(|a, b| a.1.deadline.partial_cmp(&b.1.deadline).expect("finite"));
        match job {
            None => {
                // Idle until next release.
                if upcoming >= horizon {
                    break;
                }
                t = upcoming;
            }
            Some((idx, j)) => {
                // Run to completion or the next release, whichever first.
                let run = j.remaining.min((upcoming - t).max(0.0));
                let run = if run <= 1e-12 { j.remaining } else { run };
                let finish = t + run;
                busy += run;
                let deadline = j.deadline;
                let remaining = j.remaining - run;
                live[idx].remaining = remaining;
                if remaining <= 1e-12 {
                    if finish > deadline + 1e-9 {
                        misses += 1;
                    }
                    live.swap_remove(idx);
                }
                t = finish;
            }
        }
        // Deadline misses of still-running jobs are charged when they
        // finish; jobs that never finish within the horizon are swept
        // below.
    }
    misses += live
        .iter()
        .filter(|j| j.deadline < horizon && j.remaining > 1e-9)
        .count() as u64;

    CoreSimResult {
        released,
        misses,
        busy_fraction: busy / horizon,
    }
}

/// Simulates a whole partition; returns per-core results.
///
/// `horizon_periods` scales the horizon as a multiple of the largest
/// period in the set.
pub fn simulate_partition(
    ts: &TaskSet,
    partition: &Partition,
    horizon_periods: f64,
) -> Vec<CoreSimResult> {
    let max_period = ts
        .tasks()
        .iter()
        .map(|t| t.period)
        .fold(0.0, f64::max)
        .max(1.0);
    let horizon = max_period * horizon_periods;
    let cores = partition.core_density.len();
    let mut results = Vec::with_capacity(cores);
    for core in 0..cores {
        let streams: Vec<Stream> = partition
            .on_core(core)
            .map(|a| {
                let t = ts.tasks()[a.task];
                match a.piece {
                    Piece::Original { effective_deadline } => Stream {
                        offset: 0.0,
                        period: t.period,
                        rel_deadline: effective_deadline,
                        wcet: t.wcet,
                    },
                    Piece::Check { .. } => {
                        let dp = virtual_deadline(&t).expect("check of a verified task");
                        Stream {
                            // Worst case of §V: the checking computation
                            // starts only after the virtual deadline.
                            offset: dp,
                            period: t.period,
                            rel_deadline: t.period - dp,
                            wcet: t.wcet,
                        }
                    }
                }
            })
            .collect();
        results.push(simulate_core(&streams, horizon));
    }
    results
}

/// Total misses across cores.
pub fn total_misses(results: &[CoreSimResult]) -> u64 {
    results.iter().map(|r| r.misses).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ReliabilityClass, SpTask};
    use crate::partition::{FlexStepPartitioner, Partitioner};

    fn t(id: usize, wcet: f64, period: f64, class: ReliabilityClass) -> SpTask {
        SpTask {
            id,
            wcet,
            period,
            class,
        }
    }

    #[test]
    fn single_stream_meets_deadlines() {
        let s = [Stream {
            offset: 0.0,
            period: 10.0,
            rel_deadline: 10.0,
            wcet: 4.0,
        }];
        let r = simulate_core(&s, 100.0);
        assert_eq!(r.released, 10);
        assert_eq!(r.misses, 0);
        assert!((r.busy_fraction - 0.4).abs() < 1e-6);
    }

    #[test]
    fn overload_misses() {
        let s = [
            Stream {
                offset: 0.0,
                period: 10.0,
                rel_deadline: 10.0,
                wcet: 6.0,
            },
            Stream {
                offset: 0.0,
                period: 10.0,
                rel_deadline: 10.0,
                wcet: 6.0,
            },
        ];
        let r = simulate_core(&s, 100.0);
        assert!(r.misses > 0, "120% load must miss");
    }

    #[test]
    fn edf_preemption_order() {
        // A long job plus a short tight job released later: EDF must
        // preempt and both meet deadlines (total demand fits).
        let s = [
            Stream {
                offset: 0.0,
                period: 100.0,
                rel_deadline: 100.0,
                wcet: 50.0,
            },
            Stream {
                offset: 10.0,
                period: 100.0,
                rel_deadline: 20.0,
                wcet: 10.0,
            },
        ];
        let r = simulate_core(&s, 100.0);
        assert_eq!(r.misses, 0);
    }

    #[test]
    fn accepted_partitions_simulate_clean() {
        use crate::uunifast::{generate, GenParams};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2024);
        let mut accepted = 0;
        for _ in 0..40 {
            let ts = generate(&mut rng, &GenParams::paper(24, 4.0, 0.125, 0.125));
            if let Some(p) = FlexStepPartitioner.partition(&ts, 8) {
                accepted += 1;
                let results = simulate_partition(&ts, &p, 40.0);
                assert_eq!(
                    total_misses(&results),
                    0,
                    "Al. 3-accepted set missed deadlines in simulation"
                );
            }
        }
        assert!(
            accepted > 0,
            "the experiment needs accepted sets to be meaningful"
        );
    }

    #[test]
    fn check_stream_released_at_virtual_deadline() {
        let ts = TaskSet::new(vec![t(0, 2.0, 10.0, ReliabilityClass::DoubleCheck)]);
        let p = FlexStepPartitioner.partition(&ts, 2).unwrap();
        let r = simulate_partition(&ts, &p, 10.0);
        assert_eq!(total_misses(&r), 0);
        // Both cores must have run something.
        assert!(r.iter().all(|c| c.busy_fraction > 0.0));
    }
}
