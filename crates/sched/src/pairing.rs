//! Criticality-driven pairing schedules: from the §V task model to the
//! harness's dynamic checker acquire/release timeline.
//!
//! Doran's dynamic-lockstep work (PAPERS.md) has the *scheduler* decide
//! when a core holds its checker: verified jobs run checked, and the
//! slack between job releases hands the checker back to the shared
//! pool. This module lowers a [`TaskSet`] onto main slots — one task
//! per slot — and emits the [`PairingSchedule`] plus per-slot
//! [`ReliabilityMode`]s the run harness executes.
//!
//! Mapping (§V classes → modes):
//!
//! | class  | mode            | pairing                              |
//! |--------|-----------------|--------------------------------------|
//! | `T^V3` | `FullLockstep`  | holds its checker for the whole run  |
//! | `T^V2` | `SegmentCheck`  | checked in job windows, released in slack |
//! | `T^N`  | `Unchecked`     | never acquires a checker             |

use crate::model::{ReliabilityClass, SpTask, TaskSet};
use flexstep_soc::{PairingSchedule, ReliabilityMode};

/// The reliability mode a task's class runs under on the cycle-level
/// harness.
pub fn mode_for_class(class: ReliabilityClass) -> ReliabilityMode {
    match class {
        ReliabilityClass::Normal => ReliabilityMode::Unchecked,
        ReliabilityClass::DoubleCheck => ReliabilityMode::SegmentCheck,
        ReliabilityClass::TripleCheck => ReliabilityMode::FullLockstep,
    }
}

/// Lowering of a task set onto main slots: per-slot modes plus the
/// acquire/release timeline for the `T^V2` slots' slack windows.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalityPlan {
    /// Per-slot reliability mode, one per task (slot = task id).
    pub modes: Vec<ReliabilityMode>,
    /// Checker release/acquire events over the horizon.
    pub schedule: PairingSchedule,
}

/// Builds the pairing plan for `tasks` over `horizon_cycles`, scaling
/// one model time unit to `cycles_per_unit` harness cycles.
///
/// `T^V2` tasks release their checker when a job's worst-case window
/// ends (`k·T + C` in model time) and re-acquire it at the next job
/// release (`(k+1)·T`); `T^V3` tasks hold theirs throughout; `T^N`
/// tasks start — and stay — unchecked, so they never appear in the
/// schedule. Windows shorter than one cycle are dropped.
pub fn criticality_plan(
    tasks: &TaskSet,
    cycles_per_unit: f64,
    horizon_cycles: u64,
) -> CriticalityPlan {
    assert!(cycles_per_unit > 0.0, "cycles_per_unit must be positive");
    let modes: Vec<ReliabilityMode> = tasks
        .tasks()
        .iter()
        .map(|t| mode_for_class(t.class))
        .collect();
    let mut schedule = PairingSchedule::new();
    for (slot, task) in tasks.tasks().iter().enumerate() {
        if task.class != ReliabilityClass::DoubleCheck {
            continue;
        }
        for (release, reacquire) in slack_windows(task, cycles_per_unit, horizon_cycles) {
            schedule = schedule.window(slot, release, reacquire);
        }
    }
    CriticalityPlan { modes, schedule }
}

/// The slack windows (in cycles) of one task: `[k·T + C, (k+1)·T)` for
/// each job `k` whose slack starts inside the horizon.
fn slack_windows(task: &SpTask, cycles_per_unit: f64, horizon_cycles: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    if task.wcet >= task.period {
        return out; // fully utilised: no slack to release in
    }
    let mut k = 0u64;
    loop {
        let start = (k as f64 * task.period + task.wcet) * cycles_per_unit;
        let end = ((k + 1) as f64 * task.period) * cycles_per_unit;
        let (start, end) = (start.round() as u64, end.round() as u64);
        if start >= horizon_cycles {
            break;
        }
        let end = end.min(horizon_cycles);
        if end > start {
            out.push((start, end));
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_soc::PairingAction;

    fn set() -> TaskSet {
        TaskSet::new(vec![
            SpTask {
                id: 0,
                wcet: 2.0,
                period: 10.0,
                class: ReliabilityClass::DoubleCheck,
            },
            SpTask {
                id: 1,
                wcet: 3.0,
                period: 10.0,
                class: ReliabilityClass::Normal,
            },
            SpTask {
                id: 2,
                wcet: 1.0,
                period: 5.0,
                class: ReliabilityClass::TripleCheck,
            },
        ])
    }

    #[test]
    fn classes_map_to_modes() {
        let plan = criticality_plan(&set(), 100.0, 2_000);
        assert_eq!(
            plan.modes,
            [
                ReliabilityMode::SegmentCheck,
                ReliabilityMode::Unchecked,
                ReliabilityMode::FullLockstep,
            ]
        );
    }

    #[test]
    fn only_double_check_slots_cycle_their_checker() {
        let plan = criticality_plan(&set(), 100.0, 2_000);
        assert!(plan.schedule.events().iter().all(|e| e.slot == 0));
        // Two periods fit in the horizon: release at C=200, reacquire at
        // T=1000, release at T+C=1200, reacquire clipped to 2000.
        let ev: Vec<(u64, &str)> = plan
            .schedule
            .events()
            .iter()
            .map(|e| (e.at_cycle, e.action.label()))
            .collect();
        assert_eq!(
            ev,
            [
                (200, "release"),
                (1000, "acquire"),
                (1200, "release"),
                (2000, "acquire"),
            ]
        );
    }

    #[test]
    fn fully_utilised_task_never_releases() {
        let tasks = TaskSet::new(vec![SpTask {
            id: 0,
            wcet: 5.0,
            period: 5.0,
            class: ReliabilityClass::DoubleCheck,
        }]);
        let plan = criticality_plan(&tasks, 10.0, 1_000);
        assert!(plan.schedule.is_empty());
    }

    #[test]
    fn windows_alternate_release_acquire() {
        let plan = criticality_plan(&set(), 37.0, 5_000);
        let slot0: Vec<_> = plan
            .schedule
            .events()
            .iter()
            .filter(|e| e.slot == 0)
            .collect();
        for pair in slot0.chunks(2) {
            assert_eq!(pair[0].action, PairingAction::Release);
            if let Some(a) = pair.get(1) {
                assert_eq!(a.action, PairingAction::Acquire);
                assert!(a.at_cycle > pair[0].at_cycle);
            }
        }
    }
}
