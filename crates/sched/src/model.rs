//! The sporadic task model of §V.
//!
//! A task set of `n` sporadic tasks runs on `m` cores; each task has
//! worst-case execution time `C`, period `T` and implicit deadline
//! `D = T`, and belongs to one of the reliability classes `T^N`
//! (non-verification), `T^V2` (double-check) or `T^V3` (triple-check).

use std::fmt;

/// Reliability class (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReliabilityClass {
    /// `T^N`: no error checking.
    Normal,
    /// `T^V2`: one redundant execution.
    DoubleCheck,
    /// `T^V3`: two redundant executions.
    TripleCheck,
}

impl ReliabilityClass {
    /// Number of redundant (checking) executions.
    pub fn copies(self) -> usize {
        match self {
            ReliabilityClass::Normal => 0,
            ReliabilityClass::DoubleCheck => 1,
            ReliabilityClass::TripleCheck => 2,
        }
    }
}

impl fmt::Display for ReliabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityClass::Normal => f.write_str("T^N"),
            ReliabilityClass::DoubleCheck => f.write_str("T^V2"),
            ReliabilityClass::TripleCheck => f.write_str("T^V3"),
        }
    }
}

/// One sporadic task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpTask {
    /// Task index within its set.
    pub id: usize,
    /// Worst-case execution time `C`.
    pub wcet: f64,
    /// Period `T` (implicit deadline `D = T`).
    pub period: f64,
    /// Reliability class.
    pub class: ReliabilityClass,
}

impl SpTask {
    /// Utilisation `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }

    /// Implicit deadline.
    pub fn deadline(&self) -> f64 {
        self.period
    }
}

/// A task set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskSet {
    tasks: Vec<SpTask>,
}

impl TaskSet {
    /// Creates a task set, re-indexing tasks by position.
    pub fn new(mut tasks: Vec<SpTask>) -> Self {
        for (i, t) in tasks.iter_mut().enumerate() {
            t.id = i;
        }
        TaskSet { tasks }
    }

    /// The tasks.
    pub fn tasks(&self) -> &[SpTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total utilisation (original executions only).
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(SpTask::utilization).sum()
    }

    /// Total utilisation including redundant executions.
    pub fn utilization_with_copies(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.utilization() * (1.0 + t.class.copies() as f64))
            .sum()
    }

    /// Tasks of a given class.
    pub fn of_class(&self, class: ReliabilityClass) -> impl Iterator<Item = &SpTask> {
        self.tasks.iter().filter(move |t| t.class == class)
    }

    /// Verification tasks (V2 ∪ V3), sorted by descending utilisation.
    pub fn verification_desc_util(&self) -> Vec<SpTask> {
        let mut v: Vec<SpTask> = self
            .tasks
            .iter()
            .filter(|t| t.class != ReliabilityClass::Normal)
            .copied()
            .collect();
        v.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .expect("utilisations are finite")
        });
        v
    }

    /// Normal tasks sorted by descending utilisation.
    pub fn normal_desc_util(&self) -> Vec<SpTask> {
        let mut v: Vec<SpTask> = self.of_class(ReliabilityClass::Normal).copied().collect();
        v.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .expect("utilisations are finite")
        });
        v
    }
}

impl FromIterator<SpTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = SpTask>>(iter: I) -> Self {
        TaskSet::new(iter.into_iter().collect())
    }
}

/// A virtual-deadline policy: the fraction `θ` of the deadline allotted
/// to the original computation (`D' = θ·D`), per verification class.
///
/// The paper's choice (`θ = 1/2` for double-check, `θ = √2 − 1` for
/// triple-check) minimises the total density `δ^o + k·δ^v`; other
/// fractions are exposed for the virtual-deadline ablation.
///
/// ```
/// use flexstep_sched::model::{ReliabilityClass, SpTask, VdPolicy};
///
/// let t = SpTask { id: 0, wcet: 1.0, period: 10.0, class: ReliabilityClass::DoubleCheck };
/// let paper = VdPolicy::paper();
/// let skewed = VdPolicy::uniform(0.8);
/// let total = |p: VdPolicy| p.densities(&t).map(|(o, v)| o + v).unwrap();
/// assert!(total(paper) < total(skewed), "the paper's split minimises density");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdPolicy {
    /// `θ` for double-check tasks.
    pub theta_v2: f64,
    /// `θ` for triple-check tasks.
    pub theta_v3: f64,
}

impl VdPolicy {
    /// The paper's density-optimal split: `D/2` and `(√2 − 1)·D`.
    pub fn paper() -> Self {
        VdPolicy {
            theta_v2: 0.5,
            theta_v3: 2.0_f64.sqrt() - 1.0,
        }
    }

    /// The same fraction for both verification classes (ablation knob).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta < 1` — the original and the checks each
    /// need a positive share of the deadline.
    pub fn uniform(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1): {theta}"
        );
        VdPolicy {
            theta_v2: theta,
            theta_v3: theta,
        }
    }

    /// The deadline fraction for a class (`None` for normal tasks).
    pub fn fraction(&self, class: ReliabilityClass) -> Option<f64> {
        match class {
            ReliabilityClass::Normal => None,
            ReliabilityClass::DoubleCheck => Some(self.theta_v2),
            ReliabilityClass::TripleCheck => Some(self.theta_v3),
        }
    }

    /// The virtual deadline `D' = θ·D` of a verification task.
    pub fn virtual_deadline(&self, task: &SpTask) -> Option<f64> {
        Some(self.fraction(task.class)? * task.deadline())
    }

    /// Densities `(δ^o, δ^v) = (C/D', C/(D − D'))` of the original and
    /// each checking computation.
    pub fn densities(&self, task: &SpTask) -> Option<(f64, f64)> {
        let dv = self.virtual_deadline(task)?;
        Some((task.wcet / dv, task.wcet / (task.deadline() - dv)))
    }
}

impl Default for VdPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// The virtual deadline `D'` of a verification task (§V): `D/2` for
/// double-check, `(√2 − 1)·D` for triple-check. The split minimises the
/// total density of the original plus duplicated computations.
pub fn virtual_deadline(task: &SpTask) -> Option<f64> {
    VdPolicy::paper().virtual_deadline(task)
}

/// Densities `(δ^o, δ^v)` of the original and each checking computation
/// of a verification task (§V), under the paper's optimal split.
pub fn densities(task: &SpTask) -> Option<(f64, f64)> {
    VdPolicy::paper().densities(task)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet: f64, period: f64, class: ReliabilityClass) -> SpTask {
        SpTask {
            id: 0,
            wcet,
            period,
            class,
        }
    }

    #[test]
    fn utilization_arithmetic() {
        let t = task(2.0, 10.0, ReliabilityClass::Normal);
        assert!((t.utilization() - 0.2).abs() < 1e-12);
        let ts = TaskSet::new(vec![
            task(2.0, 10.0, ReliabilityClass::Normal),
            task(5.0, 10.0, ReliabilityClass::DoubleCheck),
            task(1.0, 10.0, ReliabilityClass::TripleCheck),
        ]);
        assert!((ts.utilization() - 0.8).abs() < 1e-12);
        assert!((ts.utilization_with_copies() - (0.2 + 1.0 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn virtual_deadline_splits() {
        let v2 = task(1.0, 10.0, ReliabilityClass::DoubleCheck);
        assert!((virtual_deadline(&v2).unwrap() - 5.0).abs() < 1e-12);
        let v3 = task(1.0, 10.0, ReliabilityClass::TripleCheck);
        let d = virtual_deadline(&v3).unwrap();
        assert!((d - 10.0 * (2.0_f64.sqrt() - 1.0)).abs() < 1e-9);
        assert!(virtual_deadline(&task(1.0, 10.0, ReliabilityClass::Normal)).is_none());
    }

    #[test]
    fn density_for_double_check_doubles() {
        // D' = D/2 => δ^o = δ^v = 2C/D.
        let t = task(1.0, 10.0, ReliabilityClass::DoubleCheck);
        let (o, v) = densities(&t).unwrap();
        assert!((o - 0.2).abs() < 1e-12);
        assert!((v - 0.2).abs() < 1e-12);
    }

    #[test]
    fn v3_split_minimises_total_density() {
        // At D' = (√2−1)D the derivative of δ^o + 2δ^v vanishes; verify
        // it beats nearby splits.
        let t = task(1.0, 10.0, ReliabilityClass::TripleCheck);
        let total = |dp: f64| t.wcet / dp + 2.0 * t.wcet / (t.period - dp);
        let opt = virtual_deadline(&t).unwrap();
        assert!(total(opt) <= total(opt * 0.9) + 1e-12);
        assert!(total(opt) <= total(opt * 1.1) + 1e-12);
    }

    #[test]
    fn sorting_helpers() {
        let ts = TaskSet::new(vec![
            task(1.0, 10.0, ReliabilityClass::Normal),      // u=0.1
            task(5.0, 10.0, ReliabilityClass::DoubleCheck), // u=0.5
            task(3.0, 10.0, ReliabilityClass::TripleCheck), // u=0.3
            task(8.0, 10.0, ReliabilityClass::Normal),      // u=0.8
        ]);
        let v = ts.verification_desc_util();
        assert_eq!(v.len(), 2);
        assert!(v[0].utilization() >= v[1].utilization());
        let n = ts.normal_desc_util();
        assert_eq!(n.len(), 2);
        assert!((n[0].utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn vd_policy_paper_matches_free_functions() {
        let p = VdPolicy::paper();
        for class in [ReliabilityClass::DoubleCheck, ReliabilityClass::TripleCheck] {
            let t = task(3.0, 12.0, class);
            assert_eq!(p.virtual_deadline(&t), virtual_deadline(&t));
            assert_eq!(p.densities(&t), densities(&t));
        }
        let n = task(3.0, 12.0, ReliabilityClass::Normal);
        assert!(p.virtual_deadline(&n).is_none());
        assert!(p.densities(&n).is_none());
    }

    #[test]
    fn vd_policy_uniform_shifts_density_between_pieces() {
        let t = task(1.0, 10.0, ReliabilityClass::DoubleCheck);
        let early = VdPolicy::uniform(0.25); // tight original, relaxed check
        let (o, v) = early.densities(&t).unwrap();
        assert!((o - 0.4).abs() < 1e-12);
        assert!((v - 1.0 / 7.5).abs() < 1e-12);
        let late = VdPolicy::uniform(0.75);
        let (o2, v2) = late.densities(&t).unwrap();
        assert!(o2 < o && v2 > v);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn vd_policy_rejects_degenerate_fraction() {
        let _ = VdPolicy::uniform(1.0);
    }

    #[test]
    fn taskset_reindexes() {
        let ts: TaskSet = vec![
            task(1.0, 10.0, ReliabilityClass::Normal),
            task(2.0, 10.0, ReliabilityClass::Normal),
        ]
        .into_iter()
        .collect();
        assert_eq!(ts.tasks()[0].id, 0);
        assert_eq!(ts.tasks()[1].id, 1);
    }
}
