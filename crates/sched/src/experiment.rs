//! The Fig. 5 schedulability experiment: percentage of schedulable task
//! sets under LockStep, HMR and FlexStep across utilisation levels and
//! system configurations.

use crate::partition::{FlexStepPartitioner, HmrPartitioner, LockStepPartitioner, Partitioner};
use crate::uunifast::{generate, GenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One Fig. 5 sub-plot configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Config {
    /// Number of cores `m`.
    pub m: usize,
    /// Number of tasks `n`.
    pub n: usize,
    /// Fraction of double-check tasks `α`.
    pub alpha: f64,
    /// Fraction of triple-check tasks `β`.
    pub beta: f64,
}

impl Fig5Config {
    /// The six published sub-plots (a)–(f).
    pub fn paper_all() -> [(char, Fig5Config); 6] {
        [
            (
                'a',
                Fig5Config {
                    m: 8,
                    n: 160,
                    alpha: 0.0625,
                    beta: 0.0625,
                },
            ),
            (
                'b',
                Fig5Config {
                    m: 8,
                    n: 160,
                    alpha: 0.125,
                    beta: 0.125,
                },
            ),
            (
                'c',
                Fig5Config {
                    m: 8,
                    n: 160,
                    alpha: 0.25,
                    beta: 0.25,
                },
            ),
            (
                'd',
                Fig5Config {
                    m: 8,
                    n: 160,
                    alpha: 0.25,
                    beta: 0.0,
                },
            ),
            (
                'e',
                Fig5Config {
                    m: 16,
                    n: 160,
                    alpha: 0.125,
                    beta: 0.125,
                },
            ),
            (
                'f',
                Fig5Config {
                    m: 8,
                    n: 80,
                    alpha: 0.25,
                    beta: 0.25,
                },
            ),
        ]
    }
}

/// Acceptance ratios at one utilisation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Normalised (per-core) utilisation of the generated sets.
    pub utilization: f64,
    /// % of sets schedulable under LockStep.
    pub lockstep: f64,
    /// % of sets schedulable under HMR.
    pub hmr: f64,
    /// % of sets schedulable under FlexStep.
    pub flexstep: f64,
}

/// Runs one sub-plot sweep.
///
/// `utils` holds normalised per-core utilisations (the paper sweeps 0.35
/// to 0.95); `sets_per_point` task sets are generated per point with a
/// deterministic seed derived from `seed`.
pub fn sweep(
    config: &Fig5Config,
    utils: &[f64],
    sets_per_point: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(utils.len());
    let lockstep = LockStepPartitioner;
    let hmr = HmrPartitioner;
    let flexstep = FlexStepPartitioner;
    for &u in utils {
        let mut ok = [0usize; 3];
        for s in 0..sets_per_point {
            // Seed from the utilisation *value* (not the slice index) so
            // a sweep over [a, b] and two single-point sweeps draw the
            // same task sets — sweep_parallel relies on this.
            let mut rng =
                StdRng::seed_from_u64(seed ^ u.to_bits().rotate_left(17) ^ (s as u64) << 24);
            let params = GenParams::fig5(config.n, u * config.m as f64, config.alpha, config.beta);
            let ts = generate(&mut rng, &params);
            if lockstep.schedulable(&ts, config.m) {
                ok[0] += 1;
            }
            if hmr.schedulable(&ts, config.m) {
                ok[1] += 1;
            }
            if flexstep.schedulable(&ts, config.m) {
                ok[2] += 1;
            }
        }
        let pct = |k: usize| 100.0 * ok[k] as f64 / sets_per_point as f64;
        out.push(SweepPoint {
            utilization: u,
            lockstep: pct(0),
            hmr: pct(1),
            flexstep: pct(2),
        });
    }
    out
}

/// Runs a sweep with per-utilisation-point parallelism (the Fig. 5 grid
/// is embarrassingly parallel).
pub fn sweep_parallel(
    config: &Fig5Config,
    utils: &[f64],
    sets_per_point: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out: Vec<Option<SweepPoint>> = vec![None; utils.len()];
    std::thread::scope(|scope| {
        for (slot, &u) in out.iter_mut().zip(utils) {
            let config = *config;
            scope.spawn(move || {
                *slot = Some(sweep(&config, &[u], sets_per_point, seed)[0]);
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("all points computed"))
        .collect()
}

/// The paper's x-axis: 0.35 to 0.95 in steps of 0.05.
pub fn paper_utilization_axis() -> Vec<f64> {
    (0..=12).map(|i| 0.35 + 0.05 * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_axis_shape() {
        let axis = paper_utilization_axis();
        assert_eq!(axis.len(), 13);
        assert!((axis[0] - 0.35).abs() < 1e-12);
        assert!((axis[12] - 0.95).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = Fig5Config {
            m: 4,
            n: 24,
            alpha: 0.125,
            beta: 0.125,
        };
        let a = sweep(&cfg, &[0.5, 0.7], 40, 99);
        let b = sweep(&cfg, &[0.5, 0.7], 40, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = Fig5Config {
            m: 4,
            n: 24,
            alpha: 0.125,
            beta: 0.125,
        };
        let a = sweep(&cfg, &[0.5, 0.8], 30, 7);
        let b = sweep_parallel(&cfg, &[0.5, 0.8], 30, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn flexstep_dominates_at_moderate_utilisation() {
        // The headline qualitative result of Fig. 5: FlexStep ≥ HMR ≥
        // LockStep, with LockStep collapsing first (its rigid fusion
        // halves the usable cores). On the copy-inclusive axis the
        // LockStep cliff for this mix falls just past 0.5.
        let cfg = Fig5Config {
            m: 8,
            n: 40,
            alpha: 0.125,
            beta: 0.125,
        };
        let pts = sweep(&cfg, &[0.35, 0.58], 60, 13);
        for p in &pts {
            assert!(
                p.flexstep >= p.hmr - 5.0,
                "FlexStep should not lose to HMR: {p:?}"
            );
            assert!(
                p.flexstep >= p.lockstep - 5.0,
                "FlexStep should not lose to LockStep: {p:?}"
            );
        }
        assert!(
            pts[1].flexstep > pts[1].lockstep + 20.0,
            "the flexibility gap must appear past the LockStep cliff: {:?}",
            pts[1]
        );
    }

    #[test]
    fn acceptance_decreases_with_utilisation() {
        let cfg = Fig5Config {
            m: 8,
            n: 40,
            alpha: 0.125,
            beta: 0.125,
        };
        let pts = sweep(&cfg, &[0.4, 0.95], 60, 5);
        assert!(pts[0].flexstep >= pts[1].flexstep);
        assert!(pts[0].lockstep >= pts[1].lockstep);
    }
}
