//! The Fig. 1 motivating example: the same three-task workload scheduled
//! on a dual-core platform under LockStep, HMR and FlexStep.
//!
//! The paper's introduction contrasts the three architectures on one
//! scenario (tasks τ1–τ3 with implicit deadlines; an emergency requires
//! part of τ2's work checked for errors):
//!
//! - **LockStep** (Fig. 1a): core 1 is a pre-configured checker, so every
//!   task executes — and is implicitly verified — on core 0 alone. The
//!   lost capacity makes a job of the non-verification task τ1 miss its
//!   deadline.
//! - **HMR** (Fig. 1b): split-lock frees core 1 for normal work, but
//!   verification is *synchronous* (the checker core is co-seized for the
//!   whole checked section) and *non-preemptible by non-verification
//!   tasks*, so τ1 misses its second deadline while τ2's check runs.
//! - **FlexStep** (Fig. 1c): verification is asynchronous (buffered and
//!   replayed on core 1 whenever it is free), selective (only the
//!   emergency-flagged job is checked) and preemptible, so every deadline
//!   is met.
//!
//! [`simulate`] is a unit-time discrete-event scheduler implementing
//! exactly these three semantics over one [`Scenario`]; [`gantt`] renders
//! the resulting per-core timelines in the style of the paper's figure.
//! The `fig1` bench binary prints all three.

use std::fmt;

/// Reliability demand of a motivating-example task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Demand {
    /// Non-verification task (`T^N`).
    Normal,
    /// Verification task: each checked job needs `check_work` units of
    /// its execution verified; only the first `check_jobs` jobs are
    /// flagged by the emergency (selective checking — FlexStep honours
    /// this, the baselines cannot).
    Verified {
        /// Units of work to verify per checked job.
        check_work: u64,
        /// Number of initial jobs the emergency flags for checking.
        check_jobs: u64,
    },
}

/// One task of the motivating scenario (integer time units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MTask {
    /// Display name, e.g. `"τ1"`.
    pub name: &'static str,
    /// Worst-case execution time in time units.
    pub wcet: u64,
    /// Period (implicit deadline).
    pub period: u64,
    /// First release time.
    pub phase: u64,
    /// Verification demand.
    pub demand: Demand,
    /// Core the task is partitioned onto (HMR / FlexStep; LockStep forces
    /// everything onto core 0).
    pub core: usize,
}

impl MTask {
    /// Whether the task carries any verification demand.
    pub fn is_verified(&self) -> bool {
        matches!(self.demand, Demand::Verified { .. })
    }
}

/// The dual-core scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The tasks.
    pub tasks: Vec<MTask>,
    /// Simulation horizon in time units.
    pub horizon: u64,
}

impl Scenario {
    /// The paper's Fig. 1 workload shape: three tasks with WCETs 15, 15→10
    /// and 5→8 class, τ1/τ3 non-verification, and an emergency flagging
    /// the *first* job of τ2 for checking. Parameters are chosen so the
    /// three published outcomes reproduce exactly:
    /// LockStep → τ1 misses (capacity), HMR → τ1 misses its *second*
    /// deadline (non-preemptible synchronous check), FlexStep → no miss.
    pub fn paper() -> Self {
        Scenario {
            tasks: vec![
                MTask {
                    name: "τ1",
                    wcet: 15,
                    period: 20,
                    phase: 0,
                    demand: Demand::Normal,
                    core: 0,
                },
                MTask {
                    name: "τ2",
                    wcet: 10,
                    period: 50,
                    phase: 18,
                    demand: Demand::Verified {
                        check_work: 10,
                        check_jobs: 1,
                    },
                    core: 0,
                },
                MTask {
                    name: "τ3",
                    wcet: 8,
                    period: 15,
                    phase: 0,
                    demand: Demand::Normal,
                    core: 1,
                },
            ],
            horizon: 60,
        }
    }
}

/// The error-detection architecture being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Fixed main core 0 + checker core 1; all tasks on core 0.
    LockStep,
    /// Split-lock: core 1 usable, but checking is synchronous and
    /// non-preemptible by non-verification tasks, and applies to every
    /// job of a verification task (no selectivity).
    Hmr,
    /// Asynchronous, selective, preemptible checking (this paper).
    FlexStep,
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arch::LockStep => f.write_str("LockStep"),
            Arch::Hmr => f.write_str("HMR"),
            Arch::FlexStep => f.write_str("FlexStep"),
        }
    }
}

/// What occupied one core for one time unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Nothing ran.
    Idle,
    /// Task `i` (index into [`Scenario::tasks`]) executed its original
    /// computation.
    Run(usize),
    /// Verification work for task `i` executed.
    Check(usize),
}

/// One recorded deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Miss {
    /// Task index.
    pub task: usize,
    /// Job index (0-based).
    pub k: u64,
    /// The missed absolute deadline.
    pub deadline: u64,
    /// Whether the miss was of the verification copy rather than the
    /// original computation.
    pub verification: bool,
}

/// Result of simulating one architecture over a scenario.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The architecture simulated.
    pub arch: Arch,
    /// Per-core timelines, one [`Slot`] per time unit.
    pub timeline: Vec<Vec<Slot>>,
    /// Deadline misses in release order.
    pub misses: Vec<Miss>,
}

impl SimOutcome {
    /// Misses of a given task.
    pub fn misses_of(&self, task: usize) -> Vec<&Miss> {
        self.misses.iter().filter(|m| m.task == task).collect()
    }
}

#[derive(Debug, Clone)]
struct LiveJob {
    task: usize,
    k: u64,
    deadline: u64,
    remaining: u64,
    /// Original work completed so far (produces check stream).
    produced: u64,
    /// Units of this job's execution still requiring verification.
    check_remaining: u64,
    /// Verification progress (consumed ≤ produced at all times).
    consumed: u64,
    /// Whether the HMR non-preemptible checked section has started.
    hmr_locked: bool,
    missed: bool,
    check_missed: bool,
}

impl LiveJob {
    fn original_done(&self) -> bool {
        self.remaining == 0
    }
    fn check_done(&self) -> bool {
        self.check_remaining == 0
    }
}

/// Simulates `scenario` under `arch` and returns timelines plus misses.
///
/// The simulator advances in unit time steps. Jobs are dispatched EDF per
/// core; the architecture determines where tasks may run, whether
/// verification work occupies a core, and what may preempt what (see the
/// module documentation).
///
/// # Panics
///
/// Panics if a task references a core other than 0 or 1 — the motivating
/// example is a dual-core scenario by construction.
pub fn simulate(scenario: &Scenario, arch: Arch) -> SimOutcome {
    for t in &scenario.tasks {
        assert!(
            t.core < 2,
            "Fig. 1 is a dual-core scenario; got core {}",
            t.core
        );
    }
    let mut timeline = vec![vec![Slot::Idle; scenario.horizon as usize]; 2];
    let mut misses: Vec<Miss> = Vec::new();
    let mut live: Vec<LiveJob> = Vec::new();
    let mut next_k: Vec<u64> = vec![0; scenario.tasks.len()];

    for now in 0..scenario.horizon {
        // Release due jobs.
        for (i, task) in scenario.tasks.iter().enumerate() {
            let release = task.phase + next_k[i] * task.period;
            if release == now {
                let k = next_k[i];
                next_k[i] += 1;
                let check_total = match (arch, task.demand) {
                    // LockStep checks implicitly in cycle lockstep: no
                    // separate verification work is scheduled.
                    (Arch::LockStep, _) => 0,
                    (_, Demand::Normal) => 0,
                    // HMR checks every job of a verification task
                    // (static, non-selective).
                    (Arch::Hmr, Demand::Verified { check_work, .. }) => check_work,
                    // FlexStep checks only the emergency-flagged jobs.
                    (
                        Arch::FlexStep,
                        Demand::Verified {
                            check_work,
                            check_jobs,
                        },
                    ) => {
                        if k < check_jobs {
                            check_work
                        } else {
                            0
                        }
                    }
                };
                live.push(LiveJob {
                    task: i,
                    k,
                    deadline: release + task.period,
                    remaining: task.wcet,
                    produced: 0,
                    check_remaining: check_total,
                    consumed: 0,
                    hmr_locked: false,
                    missed: false,
                    check_missed: false,
                });
            }
        }

        // Record deadline misses (job still unfinished at its deadline).
        for job in &mut live {
            if job.deadline == now {
                if !job.original_done() && !job.missed {
                    job.missed = true;
                    misses.push(Miss {
                        task: job.task,
                        k: job.k,
                        deadline: job.deadline,
                        verification: false,
                    });
                }
                if job.original_done() && !job.check_done() && !job.check_missed {
                    job.check_missed = true;
                    misses.push(Miss {
                        task: job.task,
                        k: job.k,
                        deadline: job.deadline,
                        verification: true,
                    });
                }
            }
        }

        // Dispatch one unit per core.
        let slots = match arch {
            Arch::LockStep => dispatch_lockstep(&mut live),
            Arch::Hmr => dispatch_hmr(scenario, &mut live),
            Arch::FlexStep => dispatch_flexstep(scenario, &mut live),
        };
        timeline[0][now as usize] = slots[0];
        timeline[1][now as usize] = slots[1];

        live.retain(|j| !(j.original_done() && j.check_done()) || j.deadline > now);
    }

    // Sweep misses at the horizon for jobs whose deadline lies beyond it
    // but which already cannot finish (keeps short horizons honest).
    misses.sort_by_key(|m| (m.deadline, m.task, m.k));
    SimOutcome {
        arch,
        timeline,
        misses,
    }
}

/// EDF pick over candidate indices; ties broken by task index then job.
fn edf_pick(live: &[LiveJob], candidates: impl Iterator<Item = usize>) -> Option<usize> {
    candidates
        .map(|i| (live[i].deadline, live[i].task, live[i].k, i))
        .min()
        .map(|(_, _, _, i)| i)
}

fn dispatch_lockstep(live: &mut [LiveJob]) -> [Slot; 2] {
    // All tasks on core 0; core 1 mirrors it as the bound checker.
    let pick = edf_pick(live, (0..live.len()).filter(|&i| !live[i].original_done()));
    match pick {
        Some(i) => {
            live[i].remaining -= 1;
            live[i].produced += 1;
            [Slot::Run(live[i].task), Slot::Check(live[i].task)]
        }
        None => [Slot::Idle, Slot::Idle],
    }
}

fn dispatch_hmr(scenario: &Scenario, live: &mut [LiveJob]) -> [Slot; 2] {
    // A verified job inside its checked section locks BOTH cores: the
    // main core executes it, the checker core verifies in sync, and
    // non-verification work cannot preempt either side.
    let locked = (0..live.len())
        .find(|&i| live[i].hmr_locked && !live[i].original_done() && live[i].check_remaining > 0);
    if let Some(i) = locked {
        live[i].remaining -= 1;
        live[i].produced += 1;
        live[i].check_remaining -= 1;
        live[i].consumed += 1;
        let t = live[i].task;
        let main_core = scenario.tasks[t].core;
        let mut slots = [Slot::Idle, Slot::Idle];
        slots[main_core] = Slot::Run(t);
        slots[1 - main_core] = Slot::Check(t);
        return slots;
    }

    // Otherwise EDF per core. If the winner on a core is a verified job
    // with checking still due, it enters the locked section, seizing the
    // other core this same unit.
    let mut slots = [Slot::Idle, Slot::Idle];
    let mut seized: Option<usize> = None; // core seized by a sync check
    for core in 0..2 {
        if seized == Some(core) {
            continue;
        }
        let pick = edf_pick(
            live,
            (0..live.len())
                .filter(|&i| !live[i].original_done() && scenario.tasks[live[i].task].core == core),
        );
        let Some(i) = pick else { continue };
        let t = live[i].task;
        if live[i].check_remaining > 0 {
            // Entering the synchronous checked section.
            live[i].hmr_locked = true;
            live[i].remaining -= 1;
            live[i].produced += 1;
            live[i].check_remaining -= 1;
            live[i].consumed += 1;
            slots[core] = Slot::Run(t);
            slots[1 - core] = Slot::Check(t);
            seized = Some(1 - core);
        } else {
            live[i].remaining -= 1;
            live[i].produced += 1;
            slots[core] = Slot::Run(t);
        }
    }
    slots
}

fn dispatch_flexstep(scenario: &Scenario, live: &mut [LiveJob]) -> [Slot; 2] {
    // Originals run EDF on their partitioned core; verification work is
    // an ordinary EDF entity on the *other* core (the checker), ready
    // whenever buffered work exists (consumed < produced), preemptible
    // and asynchronous.
    let mut slots = [Slot::Idle, Slot::Idle];
    for (core, slot) in slots.iter_mut().enumerate() {
        // Candidates: originals partitioned here, plus check streams
        // whose original runs on the other core and has produced work.
        let original = edf_pick(
            live,
            (0..live.len())
                .filter(|&i| !live[i].original_done() && scenario.tasks[live[i].task].core == core),
        );
        let check = edf_pick(
            live,
            (0..live.len()).filter(|&i| {
                live[i].check_remaining > 0
                    && live[i].consumed < live[i].produced
                    && scenario.tasks[live[i].task].core == 1 - core
            }),
        );
        let choice = match (original, check) {
            (Some(o), Some(c)) => {
                // EDF between the original and the check stream.
                if (live[o].deadline, live[o].task) <= (live[c].deadline, live[c].task) {
                    Some((o, false))
                } else {
                    Some((c, true))
                }
            }
            (Some(o), None) => Some((o, false)),
            (None, Some(c)) => Some((c, true)),
            (None, None) => None,
        };
        match choice {
            Some((i, false)) => {
                live[i].remaining -= 1;
                live[i].produced += 1;
                *slot = Slot::Run(live[i].task);
            }
            Some((i, true)) => {
                live[i].check_remaining -= 1;
                live[i].consumed += 1;
                *slot = Slot::Check(live[i].task);
            }
            None => {}
        }
    }
    slots
}

/// Renders per-core timelines as a Gantt chart in the style of Fig. 1:
/// one row per core, one column per time unit, task digits for original
/// execution, the same digit over `✓` marking (shown as `v`) for
/// verification work, `.` for idle, plus a 10-unit ruler.
pub fn gantt(scenario: &Scenario, outcome: &SimOutcome) -> String {
    let mut out = String::new();
    let width = scenario.horizon as usize;
    // Ruler.
    out.push_str("        ");
    for t in 0..width {
        out.push(if t % 10 == 0 { '|' } else { ' ' });
    }
    out.push('\n');
    for (core, row) in outcome.timeline.iter().enumerate() {
        out.push_str(&format!("core {core}  "));
        for slot in row {
            let ch = match slot {
                Slot::Idle => '.',
                Slot::Run(i) => symbol(*i),
                Slot::Check(_) => 'v',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    for m in &outcome.misses {
        let t = &scenario.tasks[m.task];
        out.push_str(&format!(
            "        {} job {} {} missed its deadline at t={}\n",
            t.name,
            m.k + 1,
            if m.verification { "(verification)" } else { "" },
            m.deadline
        ));
    }
    if outcome.misses.is_empty() {
        out.push_str("        all deadlines met\n");
    }
    out
}

fn symbol(task: usize) -> char {
    // τ1 → '1', τ2 → '2', …; falls back to letters past 9 tasks.
    let n = task + 1;
    if n < 10 {
        char::from_digit(n as u32, 10).expect("checked < 10")
    } else {
        (b'a' + (task - 9) as u8) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_run(arch: Arch) -> (Scenario, SimOutcome) {
        let s = Scenario::paper();
        let o = simulate(&s, arch);
        (s, o)
    }

    #[test]
    fn lockstep_loses_a_core_and_tau1_misses() {
        let (_, o) = paper_run(Arch::LockStep);
        assert!(
            !o.misses_of(0).is_empty(),
            "τ1 must miss under LockStep: {:?}",
            o.misses
        );
        // Core 1 never executes original work — it is a bound checker.
        assert!(o.timeline[1].iter().all(|s| !matches!(s, Slot::Run(_))));
    }

    #[test]
    fn hmr_blocks_tau1_second_job() {
        let (_, o) = paper_run(Arch::Hmr);
        let tau1 = o.misses_of(0);
        assert!(
            tau1.iter().any(|m| m.k == 1),
            "τ1's second job must miss under HMR (non-preemptible sync check): {:?}",
            o.misses
        );
        // The check occupies core 1 in sync with τ2 on core 0.
        let sync_units = o.timeline[1]
            .iter()
            .filter(|s| matches!(s, Slot::Check(1)))
            .count();
        assert_eq!(sync_units, 10, "τ2's full checked section runs on core 1");
    }

    #[test]
    fn flexstep_meets_every_deadline() {
        let (_, o) = paper_run(Arch::FlexStep);
        assert!(
            o.misses.is_empty(),
            "FlexStep must meet all deadlines: {:?}",
            o.misses
        );
        // Verification really happened (asynchronously, on core 1).
        let checked = o.timeline[1]
            .iter()
            .filter(|s| matches!(s, Slot::Check(1)))
            .count();
        assert_eq!(checked, 10, "τ2's flagged job is fully verified");
    }

    #[test]
    fn flexstep_checking_is_selective() {
        // Extend the horizon past τ2's second job: only job 1 is flagged,
        // so total check work stays at 10 units.
        let mut s = Scenario::paper();
        s.horizon = 120;
        let o = simulate(&s, Arch::FlexStep);
        let checked: usize = o
            .timeline
            .iter()
            .flatten()
            .filter(|s| matches!(s, Slot::Check(1)))
            .count();
        assert_eq!(checked, 10, "only the emergency-flagged job is verified");
        assert!(o.misses.is_empty());
    }

    #[test]
    fn hmr_checking_is_static_not_selective() {
        let mut s = Scenario::paper();
        s.horizon = 110; // τ2 jobs at t=18 and t=68 complete; t=118 is out
        let o = simulate(&s, Arch::Hmr);
        let checked: usize = o
            .timeline
            .iter()
            .flatten()
            .filter(|s| matches!(s, Slot::Check(1)))
            .count();
        assert_eq!(checked, 20, "HMR checks every job of a verification task");
    }

    #[test]
    fn flexstep_replay_lags_production() {
        // The check stream must never run ahead of the original: strip
        // the timeline and verify cumulative check units ≤ cumulative run
        // units of τ2 at every prefix.
        let (_, o) = paper_run(Arch::FlexStep);
        let mut produced = 0usize;
        let mut consumed = 0usize;
        for t in 0..o.timeline[0].len() {
            for core in 0..2 {
                match o.timeline[core][t] {
                    Slot::Run(1) => produced += 1,
                    Slot::Check(1) => consumed += 1,
                    _ => {}
                }
            }
            assert!(consumed <= produced, "replay overtook production at t={t}");
        }
        assert_eq!(consumed, 10);
    }

    #[test]
    fn gantt_renders_expected_shape() {
        let (s, o) = paper_run(Arch::FlexStep);
        let g = gantt(&s, &o);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[1].starts_with("core 0"));
        assert!(lines[2].starts_with("core 1"));
        assert_eq!(lines[1].len(), "core 0  ".len() + s.horizon as usize);
        assert!(g.contains("all deadlines met"));
        assert!(g.contains('v'), "verification slots must render");
    }

    #[test]
    fn work_conservation_no_lost_units() {
        // Under every architecture, each completed job executed exactly
        // its WCET of original work within the horizon.
        for arch in [Arch::LockStep, Arch::Hmr, Arch::FlexStep] {
            let s = Scenario::paper();
            let o = simulate(&s, arch);
            // τ3 (task 2) releases at 0,15,30,45 → 4 jobs, 8 units each;
            // count the units actually scheduled (unfinished tail jobs may
            // be partial, so compare against an upper bound and a lower
            // bound from completed jobs only).
            let units: usize = o
                .timeline
                .iter()
                .flatten()
                .filter(|s| matches!(s, Slot::Run(2)))
                .count();
            assert!(units <= 32, "{arch}: τ3 cannot exceed released demand");
            if o.misses_of(2).is_empty() && arch != Arch::LockStep {
                assert!(
                    units >= 24,
                    "{arch}: three τ3 jobs complete inside the horizon"
                );
            }
        }
    }

    #[test]
    fn lockstep_mirror_checks_every_run_unit() {
        let (_, o) = paper_run(Arch::LockStep);
        for t in 0..o.timeline[0].len() {
            match (o.timeline[0][t], o.timeline[1][t]) {
                (Slot::Run(i), Slot::Check(j)) => assert_eq!(i, j, "mirror diverged at {t}"),
                (Slot::Idle, Slot::Idle) => {}
                (a, b) => panic!("non-lockstep slots at {t}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn misses_sorted_and_unique() {
        let (_, o) = paper_run(Arch::LockStep);
        for w in o.misses.windows(2) {
            assert!(w[0].deadline <= w[1].deadline);
            assert!(
                !(w[0].task == w[1].task
                    && w[0].k == w[1].k
                    && w[0].verification == w[1].verification),
                "duplicate miss recorded"
            );
        }
    }
}
