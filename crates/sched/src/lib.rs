//! # flexstep-sched
//!
//! The scheduling theory of §V of the FlexStep paper: the sporadic task
//! model with reliability classes, virtual-deadline assignment for
//! asynchronous verification, the Al. 3 partitioning algorithm with its
//! density-based admission test, the LockStep and HMR baselines of §VI-B,
//! a UUniFast task-set generator, a discrete-event EDF simulator that
//! cross-validates the analysis, and the Fig. 5 experiment driver.
//!
//! ## Example
//!
//! ```
//! use flexstep_sched::model::{ReliabilityClass, SpTask, TaskSet};
//! use flexstep_sched::partition::{FlexStepPartitioner, Partitioner};
//!
//! let tasks = TaskSet::new(vec![
//!     SpTask { id: 0, wcet: 2.0, period: 10.0, class: ReliabilityClass::DoubleCheck },
//!     SpTask { id: 1, wcet: 3.0, period: 10.0, class: ReliabilityClass::Normal },
//! ]);
//! let partition = FlexStepPartitioner.partition(&tasks, 2).expect("schedulable");
//! assert!(partition.max_density() <= 1.0);
//! ```

#![warn(missing_docs)]

pub mod des;
pub mod experiment;
pub mod model;
pub mod motivating;
pub mod pairing;
pub mod partition;
pub mod uunifast;

pub use des::{simulate_partition, total_misses, CoreSimResult};
pub use experiment::{paper_utilization_axis, sweep, sweep_parallel, Fig5Config, SweepPoint};
pub use model::{densities, virtual_deadline, ReliabilityClass, SpTask, TaskSet, VdPolicy};
pub use pairing::{criticality_plan, mode_for_class, CriticalityPlan};
pub use partition::{
    Assignment, FlexStepPartitioner, HmrPartitioner, LockStepPartitioner, Partition, Partitioner,
    Piece, VdFlexStepPartitioner,
};
pub use uunifast::{generate, uunifast, GenParams, UtilNorm};
