//! Property tests of the §V scheduling machinery (DESIGN.md §7:
//! "partitioning invariants" and "DES-vs-analysis soundness").
//!
//! Over randomly generated UUniFast task sets:
//!
//! - Al. 3 structural invariants: a verification task's original and
//!   checking copies land on pairwise-distinct cores, the per-core
//!   density ledger is exact, and no admitted core exceeds density one.
//! - Admission soundness: any partition Al. 3 accepts produces zero
//!   deadline misses in the discrete-event EDF simulation under the
//!   worst-case release model the analysis assumes.
//! - Baseline sanity: LockStep and HMR admissions are also
//!   simulation-sound for their respective structures (checked via the
//!   density ledgers they return).

use flexstep_sched::model::ReliabilityClass;
use flexstep_sched::partition::{
    FlexStepPartitioner, HmrPartitioner, LockStepPartitioner, Partitioner, Piece,
};
use flexstep_sched::uunifast::{generate, uunifast, GenParams};
use flexstep_sched::{simulate_partition, total_misses};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Strategy: a generation configuration in the Fig. 5 neighbourhood.
fn gen_config() -> impl Strategy<Value = (u64, usize, usize, f64, f64, f64)> {
    (
        any::<u64>(), // seed
        2usize..10,   // m
        4usize..40,   // n
        0.3f64..0.95, // per-core utilisation
        0.0f64..0.3,  // alpha
        0.0f64..0.2,  // beta
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// UUniFast always returns `n` non-negative utilisations summing to
    /// the target, whatever the draw.
    #[test]
    fn uunifast_simplex_invariants(seed in any::<u64>(), n in 1usize..200, u in 0.01f64..8.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let utils = uunifast(&mut rng, n, u);
        prop_assert_eq!(utils.len(), n);
        prop_assert!(utils.iter().all(|&x| x >= -1e-12));
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - u).abs() < 1e-6, "sum {} != target {}", sum, u);
    }

    /// Al. 3 structural invariants on every accepted partition.
    #[test]
    fn flexstep_partition_invariants((seed, m, n, upc, alpha, beta) in gen_config()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = generate(&mut rng, &GenParams::paper(n, upc * m as f64, alpha, beta));
        let Some(p) = FlexStepPartitioner.partition(&ts, m) else {
            return Ok(()); // rejection is always allowed (sufficient test)
        };

        // (1) Density ledger is exact and within bounds.
        let mut ledger = vec![0.0f64; m];
        for a in &p.assignments {
            prop_assert!(a.core < m);
            prop_assert!(a.density > 0.0);
            ledger[a.core] += a.density;
        }
        for (k, (&got, &want)) in p.core_density.iter().zip(&ledger).enumerate() {
            prop_assert!((got - want).abs() < 1e-9, "core {} ledger {} != {}", k, got, want);
            prop_assert!(got <= 1.0 + 1e-9, "core {} overloaded: {}", k, got);
        }

        // (2) Piece inventory: one original per task; copies() checks for
        //     verification tasks; all pieces of a task on distinct cores.
        let mut pieces: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut originals: BTreeMap<usize, usize> = BTreeMap::new();
        let mut checks: BTreeMap<usize, usize> = BTreeMap::new();
        for a in &p.assignments {
            pieces.entry(a.task).or_default().push(a.core);
            match a.piece {
                Piece::Original { .. } => *originals.entry(a.task).or_insert(0) += 1,
                Piece::Check { .. } => *checks.entry(a.task).or_insert(0) += 1,
            }
        }
        for t in ts.tasks() {
            prop_assert_eq!(originals.get(&t.id).copied().unwrap_or(0), 1,
                "task {} must have exactly one original", t.id);
            prop_assert_eq!(checks.get(&t.id).copied().unwrap_or(0), t.class.copies(),
                "task {} check copies", t.id);
            let mut cores = pieces[&t.id].clone();
            cores.sort_unstable();
            let len = cores.len();
            cores.dedup();
            prop_assert_eq!(cores.len(), len, "task {} pieces share a core", t.id);
        }

        // (3) Virtual deadlines: originals of verification tasks carry
        //     D' < D; normal tasks carry D.
        for a in &p.assignments {
            if let Piece::Original { effective_deadline } = a.piece {
                let t = ts.tasks()[a.task];
                match t.class {
                    ReliabilityClass::Normal => {
                        prop_assert!((effective_deadline - t.period).abs() < 1e-9);
                    }
                    _ => {
                        prop_assert!(effective_deadline < t.period,
                            "verified original must use a virtual deadline");
                        prop_assert!(effective_deadline > 0.0);
                    }
                }
            }
        }
    }

    /// Admission soundness: Al. 3-accepted sets never miss a deadline in
    /// the DES under the analysis' worst-case release model.
    #[test]
    fn flexstep_admission_is_simulation_sound(
        (seed, m, n, upc, alpha, beta) in gen_config(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = generate(&mut rng, &GenParams::paper(n, upc * m as f64, alpha, beta));
        if let Some(p) = FlexStepPartitioner.partition(&ts, m) {
            let results = simulate_partition(&ts, &p, 20.0);
            prop_assert_eq!(total_misses(&results), 0,
                "analysis admitted a set that misses in simulation");
        }
    }

    /// Partitioning is a pure function: the same set and core count give
    /// the identical partition on every call (no iteration-order or
    /// hidden-state nondeterminism — Fig. 5's Monte-Carlo sweep relies on
    /// this for reproducibility).
    #[test]
    fn partitioning_is_deterministic((seed, m, n, upc, alpha, beta) in gen_config()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = generate(&mut rng, &GenParams::paper(n, upc * m as f64, alpha, beta));
        for p in [
            &FlexStepPartitioner as &dyn Partitioner,
            &LockStepPartitioner,
            &HmrPartitioner,
        ] {
            let a = p.partition(&ts, m);
            let b = p.partition(&ts, m);
            prop_assert_eq!(a.is_some(), b.is_some(), "{} verdict changed", p.name());
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert_eq!(a, b, "{} produced different partitions", p.name());
            }
        }
    }

    /// In the paper's mid-to-high utilisation regime (Fig. 5's right
    /// half), LockStep's fused pairs halve the usable capacity: per-core
    /// utilisation above ~0.55 is unschedulable for LockStep on these
    /// mixes while FlexStep keeps admitting a strict majority — the
    /// ordering that gives Fig. 5 its shape.
    #[test]
    fn flexstep_dominates_lockstep_at_high_utilisation(
        seed in any::<u64>(), m in 4usize..9, upc in 0.55f64..0.68,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flex = 0;
        let mut lock = 0;
        for _ in 0..12 {
            // Fig. 5(a)'s light verification mix (α = 6.25 %, β = 0).
            let ts = generate(&mut rng, &GenParams::paper(5 * m, upc * m as f64, 0.0625, 0.0));
            if FlexStepPartitioner.schedulable(&ts, m) {
                flex += 1;
            }
            if LockStepPartitioner.schedulable(&ts, m) {
                lock += 1;
            }
        }
        // U = upc·m > ⌊m/2⌋ for every m here, so LockStep's fused pairs
        // cannot host the load at all…
        prop_assert_eq!(lock, 0, "LockStep cannot host U > m/2");
        // …while FlexStep's density inflation (≈ 1.19×U on this mix)
        // still fits comfortably within the m cores.
        prop_assert!(flex > 0, "FlexStep admits sets in this regime");
    }
}
