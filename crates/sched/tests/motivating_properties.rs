//! Property tests of the Fig. 1 motivating-scenario simulator: the three
//! architecture semantics hold for *any* dual-core scenario, not just the
//! paper's parameters.

use flexstep_sched::motivating::{simulate, Arch, Demand, MTask, Scenario, Slot};
use proptest::prelude::*;

fn scenario() -> impl Strategy<Value = Scenario> {
    let task = (
        1u64..8,
        1u64..20,
        0u64..12,
        0usize..2,
        any::<bool>(),
        1u64..6,
    )
        .prop_map(|(wcet, slack, phase, core, verified, check)| {
            let period = wcet + slack;
            MTask {
                name: "τ",
                wcet,
                period,
                phase,
                demand: if verified {
                    Demand::Verified {
                        check_work: check.min(wcet),
                        check_jobs: 2,
                    }
                } else {
                    Demand::Normal
                },
                core,
            }
        });
    (proptest::collection::vec(task, 1..4), 20u64..80)
        .prop_map(|(tasks, horizon)| Scenario { tasks, horizon })
}

/// Total `Run` units of task `i` across the timeline.
fn run_units(o: &flexstep_sched::motivating::SimOutcome, i: usize) -> u64 {
    o.timeline
        .iter()
        .flatten()
        .filter(|s| matches!(s, Slot::Run(t) if *t == i))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simulator is a pure function of the scenario.
    #[test]
    fn deterministic(s in scenario()) {
        for arch in [Arch::LockStep, Arch::Hmr, Arch::FlexStep] {
            let a = simulate(&s, arch);
            let b = simulate(&s, arch);
            prop_assert_eq!(a.timeline, b.timeline);
            prop_assert_eq!(a.misses, b.misses);
        }
    }

    /// Work conservation upper bound: no task executes more original
    /// units than its released jobs demand.
    #[test]
    fn no_task_over_executes(s in scenario()) {
        for arch in [Arch::LockStep, Arch::Hmr, Arch::FlexStep] {
            let o = simulate(&s, arch);
            for (i, t) in s.tasks.iter().enumerate() {
                let released = if s.horizon > t.phase {
                    1 + (s.horizon - 1 - t.phase) / t.period
                } else {
                    0
                };
                prop_assert!(
                    run_units(&o, i) <= released * t.wcet,
                    "{arch}: task {i} ran more than its released demand"
                );
            }
        }
    }

    /// LockStep's checker core is a cycle-exact mirror: same task slot or
    /// both idle, never independent work.
    #[test]
    fn lockstep_mirrors_exactly(s in scenario()) {
        let o = simulate(&s, Arch::LockStep);
        for t in 0..s.horizon as usize {
            match (o.timeline[0][t], o.timeline[1][t]) {
                (Slot::Run(a), Slot::Check(b)) => prop_assert_eq!(a, b),
                (Slot::Idle, Slot::Idle) => {}
                (a, b) => prop_assert!(false, "non-mirrored slots at {}: {:?}/{:?}", t, a, b),
            }
        }
    }

    /// HMR checking is synchronous: whenever verification work for task
    /// `i` occupies one core, task `i`'s original executes on the other
    /// core in the same time unit.
    #[test]
    fn hmr_checking_is_synchronous(s in scenario()) {
        let o = simulate(&s, Arch::Hmr);
        for t in 0..s.horizon as usize {
            for core in 0..2 {
                if let Slot::Check(i) = o.timeline[core][t] {
                    prop_assert_eq!(
                        o.timeline[1 - core][t],
                        Slot::Run(i),
                        "HMR check without its synchronous original at t={}", t
                    );
                }
            }
        }
    }

    /// FlexStep replay never overtakes production, for every task.
    #[test]
    fn flexstep_replay_lags_production(s in scenario()) {
        let o = simulate(&s, Arch::FlexStep);
        let n = s.tasks.len();
        let mut produced = vec![0u64; n];
        let mut consumed = vec![0u64; n];
        for t in 0..s.horizon as usize {
            for core in 0..2 {
                match o.timeline[core][t] {
                    Slot::Run(i) => produced[i] += 1,
                    Slot::Check(i) => consumed[i] += 1,
                    Slot::Idle => {}
                }
            }
            for i in 0..n {
                prop_assert!(
                    consumed[i] <= produced[i],
                    "task {} replay overtook production at t={}", i, t
                );
            }
        }
    }

    /// FlexStep verification is selective: total check units never exceed
    /// the flagged jobs' demand.
    #[test]
    fn flexstep_checking_is_bounded_by_demand(s in scenario()) {
        let o = simulate(&s, Arch::FlexStep);
        for (i, t) in s.tasks.iter().enumerate() {
            let demanded = match t.demand {
                Demand::Normal => 0,
                Demand::Verified { check_work, check_jobs } => check_work * check_jobs,
            };
            let checked = o
                .timeline
                .iter()
                .flatten()
                .filter(|s| matches!(s, Slot::Check(j) if *j == i))
                .count() as u64;
            prop_assert!(
                checked <= demanded,
                "task {} verified {} units, demanded at most {}", i, checked, demanded
            );
        }
    }

    /// Misses are recorded at most once per (job, kind).
    #[test]
    fn misses_are_unique(s in scenario()) {
        for arch in [Arch::LockStep, Arch::Hmr, Arch::FlexStep] {
            let o = simulate(&s, arch);
            let mut seen = std::collections::BTreeSet::new();
            for m in &o.misses {
                prop_assert!(
                    seen.insert((m.task, m.k, m.verification)),
                    "{arch}: duplicate miss {:?}", m
                );
            }
        }
    }
}
