//! The Nzdc software error-detection baseline (§VI-A).
//!
//! nZDC ("near Zero silent Data Corruption", Didehban & Shrivastava,
//! DAC 2016) is a compiler transform that duplicates the computation in a
//! shadow register file and inserts checks at *memory and control
//! boundaries*: every store compares data and address against their
//! shadows, every branch compares its operands, and a divergence jumps to
//! an error handler. The ~1.5–2× slowdown of Fig. 4 comes from executing
//! this redundant stream on one core.
//!
//! The transform operates on assembled programs whose computation uses
//! `x5..=x15` / `f0..=f15` with loop-only control flow (no `jalr`), the
//! discipline all [`builder`](crate::builder) templates follow. Shadow
//! registers are `x16..=x26` / `f16..=f31`; `x30`/`x31` are transform
//! scratch.

use flexstep_isa::asm::Program;
use flexstep_isa::decode::decode;
use flexstep_isa::encode::encode;
use flexstep_isa::inst::*;
use flexstep_isa::reg::{FReg, XReg};
use std::fmt;

/// Offset added to a primary integer register to get its shadow.
const X_SHADOW_OFFSET: u32 = 11;
/// Offset added to a primary FP register to get its shadow.
const F_SHADOW_OFFSET: u32 = 16;
/// Scratch registers owned by the transform.
const SCRATCH0: XReg = XReg::T5; // x30
const SCRATCH1: XReg = XReg::T6; // x31

/// Why a program cannot be nZDC-transformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NzdcError {
    /// A register outside the protected palette is used.
    RegisterOutOfPalette {
        /// Instruction index.
        index: usize,
        /// Offending register index.
        reg: u32,
    },
    /// `jalr`/calls are not supported (return addresses shift).
    IndirectControlFlow {
        /// Instruction index.
        index: usize,
    },
    /// An undecodable word in the text.
    BadWord {
        /// Instruction index.
        index: usize,
    },
    /// A rebuilt branch offset exceeded its encoding range.
    OffsetOverflow {
        /// Instruction index.
        index: usize,
    },
}

impl fmt::Display for NzdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NzdcError::RegisterOutOfPalette { index, reg } => {
                write!(
                    f,
                    "instruction {index}: register x{reg} outside the nZDC palette"
                )
            }
            NzdcError::IndirectControlFlow { index } => {
                write!(f, "instruction {index}: indirect control flow unsupported")
            }
            NzdcError::BadWord { index } => write!(f, "instruction {index}: undecodable"),
            NzdcError::OffsetOverflow { index } => {
                write!(f, "instruction {index}: rebuilt offset out of range")
            }
        }
    }
}

impl std::error::Error for NzdcError {}

fn xshadow(r: XReg) -> Option<XReg> {
    match r.index() {
        0 => Some(XReg::ZERO), // zero shadows itself
        5..=15 => Some(XReg::of(u32::from(r.index()) + X_SHADOW_OFFSET)),
        _ => None,
    }
}

fn fshadow(r: FReg) -> Option<FReg> {
    match r.index() {
        0..=15 => Some(FReg::of(u32::from(r.index()) + F_SHADOW_OFFSET)),
        _ => None,
    }
}

fn xs(r: XReg, index: usize) -> Result<XReg, NzdcError> {
    xshadow(r).ok_or(NzdcError::RegisterOutOfPalette {
        index,
        reg: u32::from(r.index()),
    })
}

fn fs(r: FReg, index: usize) -> Result<FReg, NzdcError> {
    fshadow(r).ok_or(NzdcError::RegisterOutOfPalette {
        index,
        reg: u32::from(r.index()),
    })
}

/// The emitted instructions for one input instruction. Checks branch to
/// the error handler via a placeholder offset patched in pass 2.
enum Emitted {
    /// Plain instructions (no relocation).
    Plain(Vec<Inst>),
    /// Instructions where entry `branch_slot` is a pc-relative
    /// branch/jump to `target_index` (an *input* instruction index), and
    /// entries listed in `err_slots` branch to the error handler.
    WithRelocs {
        insts: Vec<Inst>,
        /// (slot in `insts`, input-index target)
        branch: Option<(usize, usize)>,
        /// Slots branching to the error handler.
        err_slots: Vec<usize>,
    },
}

/// Emits the comparison `bne a, shadow(a) -> err` pair.
fn check_x(insts: &mut Vec<Inst>, err_slots: &mut Vec<usize>, r: XReg, shadow: XReg) {
    if r.is_zero() {
        return;
    }
    err_slots.push(insts.len());
    insts.push(Inst::Branch {
        op: BranchOp::Ne,
        rs1: r,
        rs2: shadow,
        offset: 0,
    });
}

/// Transforms a program into its nZDC-protected equivalent.
///
/// # Errors
///
/// Returns [`NzdcError`] when the program violates the nZDC register or
/// control-flow discipline.
pub fn transform(program: &Program) -> Result<Program, NzdcError> {
    let insts: Vec<Inst> = program
        .text
        .iter()
        .enumerate()
        .map(|(i, &w)| decode(w).map_err(|_| NzdcError::BadWord { index: i }))
        .collect::<Result<_, _>>()?;

    // Pass 1: emit per-instruction groups, remembering relocations.
    let mut groups: Vec<Emitted> = Vec::with_capacity(insts.len());
    for (i, inst) in insts.iter().enumerate() {
        groups.push(emit_one(*inst, i, program, &insts)?);
    }

    // Layout: compute the output index of each input instruction's group.
    let mut base = vec![0usize; insts.len() + 1];
    let mut at = 0usize;
    for (i, g) in groups.iter().enumerate() {
        base[i] = at;
        at += match g {
            Emitted::Plain(v) => v.len(),
            Emitted::WithRelocs { insts, .. } => insts.len(),
        };
    }
    base[insts.len()] = at;
    let err_handler_index = at; // error handler sits at the end
    let total_err = err_handler_index + 1; // one `ebreak`

    // Pass 2: patch relocations and flatten.
    let mut out: Vec<Inst> = Vec::with_capacity(total_err);
    for (i, g) in groups.into_iter().enumerate() {
        match g {
            Emitted::Plain(v) => out.extend(v),
            Emitted::WithRelocs {
                mut insts,
                branch,
                err_slots,
            } => {
                if let Some((slot, target)) = branch {
                    let from = base[i] + slot;
                    let to = base[target];
                    let delta = (to as i64 - from as i64) * 4;
                    patch_offset(&mut insts[slot], delta);
                }
                for slot in err_slots {
                    let from = base[i] + slot;
                    let delta = (err_handler_index as i64 - from as i64) * 4;
                    patch_offset(&mut insts[slot], delta);
                }
                out.extend(insts);
            }
        }
    }
    // Error handler: a breakpoint trap the kernel treats as fatal.
    out.push(Inst::Ebreak);

    let text: Vec<u32> = out
        .iter()
        .enumerate()
        .map(|(i, inst)| encode(inst).map_err(|_| NzdcError::OffsetOverflow { index: i }))
        .collect::<Result<_, _>>()?;

    Ok(Program {
        name: format!("{}+nzdc", program.name),
        entry: program.text_base,
        text_base: program.text_base,
        text,
        data_base: program.data_base,
        data: program.data.clone(),
        symbols: program.symbols.clone(),
    })
}

fn patch_offset(inst: &mut Inst, delta: i64) {
    match inst {
        Inst::Branch { offset, .. } | Inst::Jal { offset, .. } => *offset = delta,
        _ => unreachable!("relocation slot must be a branch or jal"),
    }
}

#[allow(clippy::too_many_lines)]
fn emit_one(
    inst: Inst,
    index: usize,
    program: &Program,
    insts: &[Inst],
) -> Result<Emitted, NzdcError> {
    let plain = |v: Vec<Inst>| Ok(Emitted::Plain(v));
    match inst {
        // Pure computation: duplicate on shadows.
        Inst::Lui { rd, imm } => plain(vec![
            inst,
            Inst::Lui {
                rd: xs(rd, index)?,
                imm,
            },
        ]),
        Inst::OpImm { op, rd, rs1, imm } => plain(vec![
            inst,
            Inst::OpImm {
                op,
                rd: xs(rd, index)?,
                rs1: xs(rs1, index)?,
                imm,
            },
        ]),
        Inst::Op { op, rd, rs1, rs2 } => plain(vec![
            inst,
            Inst::Op {
                op,
                rd: xs(rd, index)?,
                rs1: xs(rs1, index)?,
                rs2: xs(rs2, index)?,
            },
        ]),
        Inst::OpImmW { op, rd, rs1, imm } => plain(vec![
            inst,
            Inst::OpImmW {
                op,
                rd: xs(rd, index)?,
                rs1: xs(rs1, index)?,
                imm,
            },
        ]),
        Inst::OpW { op, rd, rs1, rs2 } => plain(vec![
            inst,
            Inst::OpW {
                op,
                rd: xs(rd, index)?,
                rs1: xs(rs1, index)?,
                rs2: xs(rs2, index)?,
            },
        ]),
        Inst::Fp { op, rd, rs1, rs2 } => plain(vec![
            inst,
            Inst::Fp {
                op,
                rd: fs(rd, index)?,
                rs1: fs(rs1, index)?,
                rs2: fs(rs2, index)?,
            },
        ]),
        Inst::FpSqrt { rd, rs1 } => plain(vec![
            inst,
            Inst::FpSqrt {
                rd: fs(rd, index)?,
                rs1: fs(rs1, index)?,
            },
        ]),
        Inst::Fma {
            op,
            rd,
            rs1,
            rs2,
            rs3,
        } => plain(vec![
            inst,
            Inst::Fma {
                op,
                rd: fs(rd, index)?,
                rs1: fs(rs1, index)?,
                rs2: fs(rs2, index)?,
                rs3: fs(rs3, index)?,
            },
        ]),
        Inst::FpCmp { op, rd, rs1, rs2 } => plain(vec![
            inst,
            Inst::FpCmp {
                op,
                rd: xs(rd, index)?,
                rs1: fs(rs1, index)?,
                rs2: fs(rs2, index)?,
            },
        ]),
        Inst::FpCvt { op, rd, rs1 } => {
            let (srd, srs1) = if op.writes_xreg() {
                (
                    u32::from(xs(XReg::of(rd), index)?.index()),
                    u32::from(fs(FReg::of(rs1), index)?.index()),
                )
            } else {
                (
                    u32::from(fs(FReg::of(rd), index)?.index()),
                    u32::from(xs(XReg::of(rs1), index)?.index()),
                )
            };
            plain(vec![
                inst,
                Inst::FpCvt {
                    op,
                    rd: srd,
                    rs1: srs1,
                },
            ])
        }
        Inst::FmvXD { rd, rs1 } => plain(vec![
            inst,
            Inst::FmvXD {
                rd: xs(rd, index)?,
                rs1: fs(rs1, index)?,
            },
        ]),
        Inst::FmvDX { rd, rs1 } => plain(vec![
            inst,
            Inst::FmvDX {
                rd: fs(rd, index)?,
                rs1: xs(rs1, index)?,
            },
        ]),

        // Loads: perform the access twice (nZDC duplicates load
        // instructions so the shadow stream has its own input).
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => plain(vec![
            inst,
            Inst::Load {
                op,
                rd: xs(rd, index)?,
                rs1: xs(rs1, index)?,
                offset,
            },
        ]),
        Inst::Fld { rd, rs1, offset } => plain(vec![
            inst,
            Inst::Fld {
                rd: fs(rd, index)?,
                rs1: xs(rs1, index)?,
                offset,
            },
        ]),

        // Stores: check address and data against shadows, then store once.
        Inst::Store {
            op: _,
            rs1,
            rs2,
            offset: _,
        } => {
            let mut v = Vec::new();
            let mut err = Vec::new();
            check_x(&mut v, &mut err, rs1, xs(rs1, index)?);
            check_x(&mut v, &mut err, rs2, xs(rs2, index)?);
            v.push(inst);
            Ok(Emitted::WithRelocs {
                insts: v,
                branch: None,
                err_slots: err,
            })
        }
        Inst::Fsd {
            rs1,
            rs2,
            offset: _,
        } => {
            let mut v = Vec::new();
            let mut err = Vec::new();
            check_x(&mut v, &mut err, rs1, xs(rs1, index)?);
            // FP data compared through the integer file.
            v.push(Inst::FmvXD {
                rd: SCRATCH0,
                rs1: rs2,
            });
            v.push(Inst::FmvXD {
                rd: SCRATCH1,
                rs1: fs(rs2, index)?,
            });
            err.push(v.len());
            v.push(Inst::Branch {
                op: BranchOp::Ne,
                rs1: SCRATCH0,
                rs2: SCRATCH1,
                offset: 0,
            });
            v.push(inst);
            Ok(Emitted::WithRelocs {
                insts: v,
                branch: None,
                err_slots: err,
            })
        }

        // Atomics: single execution (side effects must not double), with
        // operand checks before and a shadow copy of the result after.
        Inst::Lr { rd, rs1, .. } | Inst::Amo { rd, rs1, .. } => {
            let mut v = Vec::new();
            let mut err = Vec::new();
            check_x(&mut v, &mut err, rs1, xs(rs1, index)?);
            v.push(inst);
            if !rd.is_zero() {
                v.push(Inst::OpImm {
                    op: IntImmOp::Addi,
                    rd: xs(rd, index)?,
                    rs1: rd,
                    imm: 0,
                });
            }
            Ok(Emitted::WithRelocs {
                insts: v,
                branch: None,
                err_slots: err,
            })
        }
        Inst::Sc { rd, rs1, rs2, .. } => {
            let mut v = Vec::new();
            let mut err = Vec::new();
            check_x(&mut v, &mut err, rs1, xs(rs1, index)?);
            check_x(&mut v, &mut err, rs2, xs(rs2, index)?);
            v.push(inst);
            if !rd.is_zero() {
                v.push(Inst::OpImm {
                    op: IntImmOp::Addi,
                    rd: xs(rd, index)?,
                    rs1: rd,
                    imm: 0,
                });
            }
            Ok(Emitted::WithRelocs {
                insts: v,
                branch: None,
                err_slots: err,
            })
        }

        // Branches: check both operands, then branch (relocated).
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let target_addr = (program.text_base + (index as u64) * 4).wrapping_add(offset as u64);
            let target_index = (target_addr.wrapping_sub(program.text_base) / 4) as usize;
            if target_index > insts.len() {
                return Err(NzdcError::OffsetOverflow { index });
            }
            let mut v = Vec::new();
            let mut err = Vec::new();
            check_x(&mut v, &mut err, rs1, xs(rs1, index)?);
            check_x(&mut v, &mut err, rs2, xs(rs2, index)?);
            let slot = v.len();
            v.push(Inst::Branch {
                op,
                rs1,
                rs2,
                offset: 0,
            });
            Ok(Emitted::WithRelocs {
                insts: v,
                branch: Some((slot, target_index)),
                err_slots: err,
            })
        }
        Inst::Jal { rd, offset } => {
            if !rd.is_zero() {
                return Err(NzdcError::IndirectControlFlow { index });
            }
            let target_addr = (program.text_base + (index as u64) * 4).wrapping_add(offset as u64);
            let target_index = (target_addr.wrapping_sub(program.text_base) / 4) as usize;
            if target_index > insts.len() {
                return Err(NzdcError::OffsetOverflow { index });
            }
            Ok(Emitted::WithRelocs {
                insts: vec![Inst::Jal { rd, offset: 0 }],
                branch: Some((0, target_index)),
                err_slots: vec![],
            })
        }
        Inst::Jalr { .. } => Err(NzdcError::IndirectControlFlow { index }),

        // System instructions pass through unprotected.
        Inst::Ecall | Inst::Ebreak | Inst::Fence | Inst::Wfi | Inst::Mret => plain(vec![inst]),
        Inst::Csr { .. } | Inst::Flex { .. } => plain(vec![inst]),
        Inst::Auipc { .. } => Err(NzdcError::IndirectControlFlow { index }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::suites;
    use flexstep_sim::{Soc, SocConfig};

    #[test]
    fn transform_roughly_doubles_code() {
        let p = builder::stream_kernel("sm", 64, 2);
        let t = transform(&p).unwrap();
        let ratio = t.text.len() as f64 / p.text.len() as f64;
        assert!(
            (1.4..=2.6).contains(&ratio),
            "nZDC should roughly double static code: {ratio}"
        );
    }

    #[test]
    fn transformed_program_computes_same_results() {
        let p = builder::hash_chunk_kernel("hc", 256, 1, 32);
        let t = transform(&p).unwrap();
        let mut a = Soc::new(SocConfig::paper(1)).unwrap();
        a.run_to_ecall(&p, 10_000_000);
        let mut b = Soc::new(SocConfig::paper(1)).unwrap();
        b.run_to_ecall(&t, 20_000_000);
        // The hash table (data segment) must match exactly.
        let base = p.symbol("table").unwrap();
        for slot in 0..32 {
            assert_eq!(
                a.mem.phys().read_u64(base + slot * 8),
                b.mem.phys().read_u64(base + slot * 8),
                "slot {slot} diverged"
            );
        }
    }

    #[test]
    fn transformed_program_is_slower() {
        let p = builder::dp_band_kernel("dp", 64, 10);
        let t = transform(&p).unwrap();
        let mut a = Soc::new(SocConfig::paper(1)).unwrap();
        a.run_to_ecall(&p, 10_000_000);
        let mut b = Soc::new(SocConfig::paper(1)).unwrap();
        b.run_to_ecall(&t, 20_000_000);
        let slowdown = b.now() as f64 / a.now() as f64;
        assert!(
            (1.3..=2.6).contains(&slowdown),
            "nZDC slowdown should be 1.5-2x-ish: {slowdown}"
        );
    }

    #[test]
    fn all_workloads_are_transformable() {
        for w in suites::parsec().into_iter().chain(suites::spec()) {
            let p = w.program(builder::Scale::Test);
            let t = transform(&p);
            assert!(
                t.is_ok(),
                "{} must be nZDC-compatible: {:?}",
                w.name,
                t.err()
            );
        }
    }

    #[test]
    fn transformed_workloads_terminate() {
        // Spot-check two transformed workloads end to end.
        for name in ["x264", "hmmer"] {
            let p = suites::by_name(name).unwrap().program(builder::Scale::Test);
            let t = transform(&p).unwrap();
            let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
            let retired = soc.run_to_ecall(&t, 50_000_000);
            assert!(retired > 1000, "{name} nzdc run too short");
        }
    }

    #[test]
    fn rejects_calls() {
        let mut asm = flexstep_isa::asm::Assembler::new("call");
        asm.call("f");
        asm.label("f").unwrap();
        asm.ecall();
        let p = asm.finish().unwrap();
        assert!(matches!(
            transform(&p),
            Err(NzdcError::IndirectControlFlow { .. })
        ));
    }

    #[test]
    fn rejects_out_of_palette_registers() {
        let mut asm = flexstep_isa::asm::Assembler::new("bad");
        // s11 = x27 is outside the protected palette.
        asm.addi(XReg::S11, XReg::ZERO, 1);
        asm.ecall();
        let p = asm.finish().unwrap();
        assert!(matches!(
            transform(&p),
            Err(NzdcError::RegisterOutOfPalette { .. })
        ));
    }
}
