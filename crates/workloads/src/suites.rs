//! The named benchmark suites: Parsec 3.0 and SPECint 2006 equivalents.
//!
//! Each named workload instantiates a [`builder`]
//! template with parameters matching the benchmark's published character
//! (instruction mix, working-set shape). See `DESIGN.md` §2 for the
//! substitution rationale.

use crate::builder::{self, Scale};
use flexstep_isa::asm::Program;
use std::fmt;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Parsec 3.0 (Fig. 4(a), Fig. 6, Fig. 7).
    Parsec,
    /// SPECint CPU2006 (Fig. 4(b)).
    SpecInt,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Parsec => f.write_str("parsec"),
            Suite::SpecInt => f.write_str("specint"),
        }
    }
}

/// A named workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name as printed in the paper's figures.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    build: fn(Scale) -> Program,
}

impl Workload {
    /// Builds the workload's guest program at the given scale.
    pub fn program(&self, scale: Scale) -> Program {
        (self.build)(scale)
    }
}

macro_rules! workload {
    ($name:literal, $suite:expr, $builder:expr) => {
        Workload {
            name: $name,
            suite: $suite,
            build: $builder,
        }
    };
}

/// The eight Parsec workloads evaluated in Fig. 4(a)/6/7.
pub fn parsec() -> Vec<Workload> {
    vec![
        workload!("blackscholes", Suite::Parsec, |s| {
            builder::fp_pricing_kernel("blackscholes", 64, 6 * s.factor())
        }),
        workload!("bodytrack", Suite::Parsec, |s| builder::monte_carlo_kernel(
            "bodytrack",
            40 * s.factor(),
            160
        )),
        workload!("ferret", Suite::Parsec, |s| builder::feature_search_kernel(
            "ferret",
            48,
            32,
            3 * s.factor()
        )),
        workload!("dedup", Suite::Parsec, |s| builder::hash_chunk_kernel(
            "dedup",
            4096,
            2 * s.factor(),
            256
        )),
        workload!("fluidanimate", Suite::Parsec, |s| builder::stencil_kernel(
            "fluidanimate",
            64,
            24,
            3 * s.factor()
        )),
        workload!("swaptions", Suite::Parsec, |s| builder::monte_carlo_kernel(
            "swaptions",
            24 * s.factor(),
            400
        )),
        workload!("x264", Suite::Parsec, |s| builder::sad_kernel(
            "x264",
            96,
            64,
            2 * s.factor()
        )),
        workload!("streamcluster", Suite::Parsec, |s| {
            builder::feature_search_kernel("streamcluster", 96, 16, 3 * s.factor())
        }),
    ]
}

/// The eleven SPECint workloads evaluated in Fig. 4(b).
pub fn spec() -> Vec<Workload> {
    vec![
        workload!("bzip2", Suite::SpecInt, |s| builder::bitboard_kernel(
            "bzip2",
            512,
            4 * s.factor()
        )),
        workload!("gcc", Suite::SpecInt, |s| builder::pointer_chase_kernel(
            "gcc",
            2048,
            20_000 * s.factor()
        )),
        workload!("mcf", Suite::SpecInt, |s| builder::pointer_chase_kernel(
            "mcf",
            16384,
            20_000 * s.factor()
        )),
        workload!("gobmk", Suite::SpecInt, |s| builder::bitboard_kernel(
            "gobmk",
            256,
            8 * s.factor()
        )),
        workload!("hmmer", Suite::SpecInt, |s| builder::dp_band_kernel(
            "hmmer",
            256,
            60 * s.factor()
        )),
        workload!("sjeng", Suite::SpecInt, |s| builder::bitboard_kernel(
            "sjeng",
            384,
            5 * s.factor()
        )),
        workload!("libquantum", Suite::SpecInt, |s| builder::stream_kernel(
            "libquantum",
            8192,
            3 * s.factor()
        )),
        workload!("h264ref", Suite::SpecInt, |s| builder::sad_kernel(
            "h264ref",
            128,
            48,
            2 * s.factor()
        )),
        workload!("omnetpp", Suite::SpecInt, |s| builder::heap_kernel(
            "omnetpp",
            1024,
            6_000 * s.factor()
        )),
        workload!("astar", Suite::SpecInt, |s| builder::heap_kernel(
            "astar",
            4096,
            5_000 * s.factor()
        )),
        workload!("xalancbmk", Suite::SpecInt, |s| builder::hash_chunk_kernel(
            "xalancbmk",
            3072,
            3 * s.factor(),
            512
        )),
    ]
}

/// Looks a workload up by name across both suites.
pub fn by_name(name: &str) -> Option<Workload> {
    parsec().into_iter().chain(spec()).find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(parsec().len(), 8, "Fig. 4(a) has 8 workloads");
        assert_eq!(spec().len(), 11, "Fig. 4(b) has 11 workloads");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = parsec()
            .iter()
            .chain(spec().iter())
            .map(|w| w.name)
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("blackscholes").is_some());
        assert!(by_name("mcf").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn every_workload_builds_at_test_scale() {
        for w in parsec().into_iter().chain(spec()) {
            let p = w.program(Scale::Test);
            assert!(!p.is_empty(), "{} must have code", w.name);
            assert_eq!(p.name, w.name);
        }
    }
}
