//! # flexstep-workloads
//!
//! Guest workloads for the FlexStep experiments: synthetic equivalents of
//! the Parsec 3.0 and SPECint 2006 benchmarks (parameterised genuine
//! kernels matching each benchmark's instruction-mix character), static
//! instruction-mix statistics, and the nZDC software error-detection
//! baseline transform.
//!
//! ## Example
//!
//! ```
//! use flexstep_workloads::{by_name, Scale};
//! use flexstep_sim::{Soc, SocConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = by_name("blackscholes").unwrap().program(Scale::Test);
//! let mut soc = Soc::new(SocConfig::paper(1))?;
//! let retired = soc.run_to_ecall(&program, 10_000_000);
//! assert!(retired > 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod mix;
pub mod nzdc;
pub mod suites;

pub use builder::Scale;
pub use mix::InstMix;
pub use nzdc::{transform as nzdc_transform, NzdcError};
pub use suites::{by_name, parsec, spec, Suite, Workload};
