//! Parameterised guest-kernel templates.
//!
//! Each template is a genuine computation (not a random instruction
//! soup): prices, hashes, stencils, pointer chases. The named Parsec/SPEC
//! workloads instantiate these templates with parameters that match the
//! benchmark's published character (FP/branch/memory densities, working
//! set). All templates obey the nZDC register discipline — computation in
//! `x5..=x15` / `f0..=f15`, loop-only control flow — so the software
//! error-detection baseline can transform them (see
//! [`nzdc`](crate::nzdc)).

use flexstep_isa::asm::{materialize_const, Assembler, Program};
use flexstep_isa::inst::*;
use flexstep_isa::reg::{FReg, XReg};

/// Workload size. Detection-latency and slowdown experiments use
/// [`Scale::Small`] by default; tests use [`Scale::Test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tens of thousands of instructions (unit tests).
    Test,
    /// Hundreds of thousands of instructions (CI experiments).
    Small,
    /// Millions of instructions (full experiment runs).
    Medium,
}

impl Scale {
    /// Multiplier applied to base iteration counts.
    pub fn factor(self) -> i64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
            Scale::Medium => 40,
        }
    }
}

// nZDC-compatible register palette.
const I0: XReg = XReg::T0; // x5
const I1: XReg = XReg::T1; // x6
const I2: XReg = XReg::T2; // x7
const ACC: XReg = XReg::S0; // x8
const PTR: XReg = XReg::S1; // x9
const A0: XReg = XReg::A0; // x10
const A1: XReg = XReg::A1; // x11
const A2: XReg = XReg::A2; // x12
const A3: XReg = XReg::A3; // x13
const CNT: XReg = XReg::A4; // x14
const BASE: XReg = XReg::A5; // x15

fn f(i: u32) -> FReg {
    FReg::of(i)
}

fn fp(asm: &mut Assembler, op: FpOp, rd: u32, rs1: u32, rs2: u32) {
    asm.push(Inst::Fp {
        op,
        rd: f(rd),
        rs1: f(rs1),
        rs2: f(rs2),
    });
}

fn fma(asm: &mut Assembler, rd: u32, rs1: u32, rs2: u32, rs3: u32) {
    asm.push(Inst::Fma {
        op: FmaOp::Madd,
        rd: f(rd),
        rs1: f(rs1),
        rs2: f(rs2),
        rs3: f(rs3),
    });
}

/// Black-Scholes-style closed-form pricing over an option table:
/// overwhelmingly floating point with long dependent chains, one
/// `fsqrt`/`fdiv` pair per option and very few branches — the
/// `blackscholes` profile.
pub fn fp_pricing_kernel(name: &str, options: i64, rounds: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("table").unwrap();
    for i in 0..options {
        // (spot, strike, rate, volatility, maturity, out)
        asm.data_f64s(&[
            90.0 + (i % 40) as f64,
            95.0 + (i % 17) as f64,
            0.02 + (i % 5) as f64 * 0.002,
            0.2 + (i % 7) as f64 * 0.02,
            0.5 + (i % 4) as f64 * 0.5,
            0.0,
        ]);
    }
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(BASE, "table");
    asm.li(I0, options);
    asm.label("option").unwrap();
    // Load the option row.
    asm.fld(f(0), BASE, 0); // S
    asm.fld(f(1), BASE, 8); // K
    asm.fld(f(2), BASE, 16); // r
    asm.fld(f(3), BASE, 24); // v
    asm.fld(f(4), BASE, 32); // T
                             // d1 = (ln(S/K) + (r + v²/2)T) / (v√T), with ln approximated by a
                             // 3-term series around 1 (inputs are near the money).
    fp(&mut asm, FpOp::Div, 5, 0, 1); // x = S/K
    asm.li(I1, 1);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 6,
        rs1: I1.index() as u32,
    }); // 1.0
    fp(&mut asm, FpOp::Sub, 7, 5, 6); // t = x-1
    fp(&mut asm, FpOp::Mul, 8, 7, 7); // t²
    fp(&mut asm, FpOp::Mul, 9, 8, 7); // t³
    asm.li(I1, 2);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 10,
        rs1: I1.index() as u32,
    });
    fp(&mut asm, FpOp::Div, 8, 8, 10); // t²/2
    asm.li(I1, 3);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 11,
        rs1: I1.index() as u32,
    });
    fp(&mut asm, FpOp::Div, 9, 9, 11); // t³/3
    fp(&mut asm, FpOp::Sub, 7, 7, 8);
    fp(&mut asm, FpOp::Add, 7, 7, 9); // ln(x) ≈ t - t²/2 + t³/3
    fp(&mut asm, FpOp::Mul, 8, 3, 3); // v²
    fp(&mut asm, FpOp::Div, 8, 8, 10); // v²/2
    fp(&mut asm, FpOp::Add, 8, 8, 2); // r + v²/2
    fma(&mut asm, 7, 8, 4, 7); // + (r+v²/2)T
    asm.push(Inst::FpSqrt {
        rd: f(9),
        rs1: f(4),
    }); // √T
    fp(&mut asm, FpOp::Mul, 9, 9, 3); // v√T
    fp(&mut asm, FpOp::Div, 12, 7, 9); // d1
                                       // N(d1) via the logistic approximation 1/(1+e^-1.702d), with e^y
                                       // approximated by a 4-term series.
    fp(&mut asm, FpOp::Mul, 13, 12, 12); // d²
    fp(&mut asm, FpOp::Div, 13, 13, 10); // d²/2
    fp(&mut asm, FpOp::Add, 13, 13, 6); // 1 + d²/2
    fp(&mut asm, FpOp::Add, 13, 13, 12); // + d (≈ e^d)
    fp(&mut asm, FpOp::Div, 14, 6, 13); // e^-d ≈ 1/e^d
    fp(&mut asm, FpOp::Add, 14, 14, 6); // 1 + e^-d
    fp(&mut asm, FpOp::Div, 14, 6, 14); // N(d1)
                                        // price ≈ S·N(d1) − K·N(d1 − v√T) (second term approximated with the
                                        // same N evaluated at d1, scaled).
    fp(&mut asm, FpOp::Mul, 15, 0, 14);
    fp(&mut asm, FpOp::Mul, 13, 1, 14);
    fp(&mut asm, FpOp::Sub, 15, 15, 13);
    asm.fsd(BASE, f(15), 40);
    asm.addi(BASE, BASE, 48);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "option");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Rolling-hash deduplication: byte loads, multiply-accumulate hashing,
/// chunk-boundary branches, hash-table stores, and an atomic chunk
/// refcount (real dedup pipelines bump shared refcounts) — the `dedup` /
/// `xalancbmk` memory-and-branch profile, exercising the multi-µop AMO
/// path of the Memory Access Log (§III-B).
pub fn hash_chunk_kernel(name: &str, bytes: i64, rounds: i64, table_slots: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("input").unwrap();
    for i in 0..bytes {
        asm.data_bytes(&[(i.wrapping_mul(131).wrapping_add(i >> 3) % 251) as u8]);
    }
    asm.data_align(8);
    asm.data_label("refcount").unwrap();
    asm.data_zeros(8);
    asm.data_label("table").unwrap();
    asm.data_zeros((table_slots * 8) as usize);
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(PTR, "input");
    asm.la(BASE, "table");
    asm.li(I0, bytes);
    asm.li(ACC, 0);
    asm.label("byte").unwrap();
    asm.load(LoadOp::Lbu, A0, PTR, 0);
    // h = h*31 + b
    asm.li(A1, 31);
    asm.push(Inst::Op {
        op: IntOp::Mul,
        rd: ACC,
        rs1: ACC,
        rs2: A1,
    });
    asm.add(ACC, ACC, A0);
    // Chunk boundary when low 6 bits of the hash vanish.
    asm.push(Inst::OpImm {
        op: IntImmOp::Andi,
        rd: A2,
        rs1: ACC,
        imm: 0x3F,
    });
    asm.bnez(A2, "no_boundary");
    // Store the chunk hash into its table slot.
    asm.li(A3, (table_slots - 1) * 8);
    asm.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd: A2,
        rs1: ACC,
        imm: 3,
    });
    asm.push(Inst::Op {
        op: IntOp::And,
        rd: A2,
        rs1: A2,
        rs2: A3,
    });
    asm.add(A2, A2, BASE);
    asm.sd(A2, ACC, 0);
    // Atomically bump the shared chunk refcount.
    asm.la(A2, "refcount");
    asm.li(A1, 1);
    asm.push(Inst::Amo {
        op: AmoOp::Add,
        width: AmoWidth::D,
        rd: A0,
        rs1: A2,
        rs2: A1,
    });
    asm.li(ACC, 0);
    asm.label("no_boundary").unwrap();
    asm.addi(PTR, PTR, 1);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "byte");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Pointer chasing over a precomputed permutation ring with a payload
/// accumulation and a data-dependent branch — the `mcf` / `gcc` /
/// `omnetpp` profile (latency-bound loads, unpredictable branches).
pub fn pointer_chase_kernel(name: &str, nodes: i64, hops: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("nodes").unwrap();
    // node: [next_index, payload] — a maximal-stride permutation ring.
    let stride = (nodes / 2) | 1;
    for i in 0..nodes {
        let next = (i + stride) % nodes;
        asm.data_u64s(&[next as u64 * 16, (i * 2654435761) as u64 & 0xFFFF]);
    }
    asm.li(CNT, hops);
    asm.la(BASE, "nodes");
    asm.li(PTR, 0);
    asm.li(ACC, 0);
    asm.label("hop").unwrap();
    asm.add(A0, BASE, PTR);
    asm.ld(PTR, A0, 0); // next offset
    asm.ld(A1, A0, 8); // payload
                       // Data-dependent branch: accumulate only odd payloads.
    asm.push(Inst::OpImm {
        op: IntImmOp::Andi,
        rd: A2,
        rs1: A1,
        imm: 1,
    });
    asm.beqz(A2, "skip");
    asm.add(ACC, ACC, A1);
    asm.label("skip").unwrap();
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "hop");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Five-point stencil sweep over a 2-D grid of doubles — the
/// `fluidanimate` / `streamcluster` profile (FP with strided memory).
pub fn stencil_kernel(name: &str, width: i64, height: i64, sweeps: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("grid").unwrap();
    for i in 0..width * height {
        asm.data_f64s(&[(i % 19) as f64 * 0.25]);
    }
    asm.li(CNT, sweeps);
    asm.label("sweep").unwrap();
    asm.la(BASE, "grid");
    asm.addi(BASE, BASE, 8 * width); // second row
    asm.li(I0, (height - 2) * (width - 2));
    asm.li(I1, width - 2); // column countdown
    asm.addi(PTR, BASE, 8); // first interior cell
    asm.label("cell").unwrap();
    asm.fld(f(0), PTR, 0);
    asm.fld(f(1), PTR, -8);
    asm.fld(f(2), PTR, 8);
    let row = 8 * width;
    asm.fld(f(3), PTR, -row);
    asm.fld(f(4), PTR, row);
    fp(&mut asm, FpOp::Add, 1, 1, 2);
    fp(&mut asm, FpOp::Add, 3, 3, 4);
    fp(&mut asm, FpOp::Add, 1, 1, 3);
    // new = 0.5*old + 0.125*neighbours
    asm.li(A0, 2);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 5,
        rs1: A0.index() as u32,
    });
    fp(&mut asm, FpOp::Div, 0, 0, 5);
    asm.li(A0, 8);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 6,
        rs1: A0.index() as u32,
    });
    fp(&mut asm, FpOp::Div, 1, 1, 6);
    fp(&mut asm, FpOp::Add, 0, 0, 1);
    asm.fsd(PTR, f(0), 0);
    asm.addi(PTR, PTR, 8);
    asm.addi(I1, I1, -1);
    asm.bnez(I1, "no_wrap");
    asm.addi(PTR, PTR, 16); // skip the border pair
    asm.li(I1, width - 2);
    asm.label("no_wrap").unwrap();
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "cell");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "sweep");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Monte-Carlo accumulation with an in-guest LCG — the `swaptions` /
/// `bodytrack` profile (int/FP mix, multiply-heavy).
pub fn monte_carlo_kernel(name: &str, paths: i64, steps: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("out").unwrap();
    asm.data_zeros(16);
    asm.li(CNT, paths);
    asm.li(ACC, 0x243F_6A88);
    asm.la(BASE, "out");
    asm.label("path").unwrap();
    asm.li(I0, steps);
    asm.li(A0, 0);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 0,
        rs1: A0.index() as u32,
    }); // sum = 0
    asm.label("step").unwrap();
    // LCG: x = x * 6364136223846793005 + 1442695040888963407
    asm.li(A1, 0x5851_F42D_4C95_7F2Du64 as i64);
    asm.push(Inst::Op {
        op: IntOp::Mul,
        rd: ACC,
        rs1: ACC,
        rs2: A1,
    });
    asm.li(A2, 0x1405_7B7E_F767_814Fu64 as i64);
    asm.add(ACC, ACC, A2);
    // Normalise the top bits to [0,1) and accumulate exp-like weight.
    asm.push(Inst::OpImm {
        op: IntImmOp::Srli,
        rd: A3,
        rs1: ACC,
        imm: 40,
    });
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 1,
        rs1: A3.index() as u32,
    });
    asm.li(A0, 1 << 24);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 2,
        rs1: A0.index() as u32,
    });
    fp(&mut asm, FpOp::Div, 1, 1, 2); // u in [0,1)
    fma(&mut asm, 0, 1, 1, 0); // sum += u²
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "step");
    asm.fld(f(3), BASE, 0);
    fp(&mut asm, FpOp::Add, 3, 3, 0);
    asm.fsd(BASE, f(3), 0);
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "path");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Sum-of-absolute-differences over byte blocks with running-min
/// selection — the `x264` / `h264ref` profile (byte loads, branchy).
pub fn sad_kernel(name: &str, blocks: i64, block_bytes: i64, rounds: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("frame").unwrap();
    for i in 0..blocks * block_bytes {
        asm.data_bytes(&[((i * 73 + (i >> 5)) % 253) as u8]);
    }
    asm.data_label("refblk").unwrap();
    for i in 0..block_bytes {
        asm.data_bytes(&[((i * 31) % 251) as u8]);
    }
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(BASE, "frame");
    asm.li(I0, blocks);
    asm.li(A3, i64::MAX); // best SAD
    asm.label("block").unwrap();
    asm.la(PTR, "refblk");
    asm.li(I1, block_bytes);
    asm.li(ACC, 0);
    asm.label("byte").unwrap();
    asm.load(LoadOp::Lbu, A0, BASE, 0);
    asm.load(LoadOp::Lbu, A1, PTR, 0);
    asm.sub(A0, A0, A1);
    // |x| without a branch: (x ^ (x>>63)) - (x>>63)
    asm.push(Inst::OpImm {
        op: IntImmOp::Srai,
        rd: A2,
        rs1: A0,
        imm: 63,
    });
    asm.push(Inst::Op {
        op: IntOp::Xor,
        rd: A0,
        rs1: A0,
        rs2: A2,
    });
    asm.sub(A0, A0, A2);
    asm.add(ACC, ACC, A0);
    asm.addi(BASE, BASE, 1);
    asm.addi(PTR, PTR, 1);
    asm.addi(I1, I1, -1);
    asm.bnez(I1, "byte");
    // Running-min branch (data dependent).
    asm.bge(ACC, A3, "not_better");
    asm.mv(A3, ACC);
    asm.label("not_better").unwrap();
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "block");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Streaming XOR/rotate pass over a word array — the `libquantum`
/// profile (sequential bandwidth, minimal branching).
pub fn stream_kernel(name: &str, words: i64, rounds: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("state").unwrap();
    for i in 0..words {
        asm.data_u64s(&[(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)]);
    }
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(PTR, "state");
    asm.li(I0, words);
    asm.label("word").unwrap();
    asm.ld(A0, PTR, 0);
    asm.push(Inst::OpImm {
        op: IntImmOp::Xori,
        rd: A0,
        rs1: A0,
        imm: 0x2D5,
    });
    asm.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd: A1,
        rs1: A0,
        imm: 13,
    });
    asm.push(Inst::OpImm {
        op: IntImmOp::Srli,
        rd: A2,
        rs1: A0,
        imm: 51,
    });
    asm.push(Inst::Op {
        op: IntOp::Or,
        rd: A0,
        rs1: A1,
        rs2: A2,
    });
    asm.sd(PTR, A0, 0);
    asm.addi(PTR, PTR, 8);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "word");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Integer dynamic-programming band (Viterbi-style three-way max) — the
/// `hmmer` profile (int ALU + regular loads/stores, predictable
/// branches).
pub fn dp_band_kernel(name: &str, cols: i64, rows: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("prev").unwrap();
    for i in 0..cols {
        asm.data_u64s(&[(i % 37) as u64 * 3]);
    }
    asm.data_label("curr").unwrap();
    asm.data_zeros((cols * 8) as usize);
    asm.li(CNT, rows);
    asm.label("row").unwrap();
    asm.la(PTR, "prev");
    asm.la(BASE, "curr");
    asm.li(I0, cols - 2);
    asm.label("col").unwrap();
    asm.ld(A0, PTR, 0); // prev[j-1]
    asm.ld(A1, PTR, 8); // prev[j]
    asm.ld(A2, PTR, 16); // prev[j+1]
                         // max3 with slt-based selection (branch-free like optimised hmmer).
    asm.push(Inst::Op {
        op: IntOp::Slt,
        rd: A3,
        rs1: A0,
        rs2: A1,
    });
    asm.beqz(A3, "keep_a");
    asm.mv(A0, A1);
    asm.label("keep_a").unwrap();
    asm.push(Inst::Op {
        op: IntOp::Slt,
        rd: A3,
        rs1: A0,
        rs2: A2,
    });
    asm.beqz(A3, "keep_b");
    asm.mv(A0, A2);
    asm.label("keep_b").unwrap();
    asm.addi(A0, A0, 7); // transition score
    asm.sd(BASE, A0, 8);
    asm.addi(PTR, PTR, 8);
    asm.addi(BASE, BASE, 8);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "col");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "row");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Bit-board scanning with shifts, masks and dense branches — the
/// `sjeng` / `gobmk` / `bzip2` profile (branch-heavy integer work).
pub fn bitboard_kernel(name: &str, positions: i64, rounds: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("boards").unwrap();
    for i in 0..positions {
        asm.data_u64s(&[(i as u64).wrapping_mul(0xA24B_AED4_963E_E407) | 1]);
    }
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(PTR, "boards");
    asm.li(I0, positions);
    asm.li(ACC, 0);
    asm.label("pos").unwrap();
    asm.ld(A0, PTR, 0);
    asm.li(I1, 16); // scan 16 squares
    asm.label("square").unwrap();
    asm.push(Inst::OpImm {
        op: IntImmOp::Andi,
        rd: A1,
        rs1: A0,
        imm: 1,
    });
    asm.beqz(A1, "empty");
    asm.push(Inst::OpImm {
        op: IntImmOp::Andi,
        rd: A2,
        rs1: A0,
        imm: 6,
    });
    asm.beqz(A2, "lone");
    asm.addi(ACC, ACC, 3);
    asm.j("next_sq");
    asm.label("lone").unwrap();
    asm.addi(ACC, ACC, 1);
    asm.j("next_sq");
    asm.label("empty").unwrap();
    asm.addi(ACC, ACC, 0);
    asm.label("next_sq").unwrap();
    asm.push(Inst::OpImm {
        op: IntImmOp::Srli,
        rd: A0,
        rs1: A0,
        imm: 2,
    });
    asm.addi(I1, I1, -1);
    asm.bnez(I1, "square");
    asm.addi(PTR, PTR, 8);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "pos");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Binary-heap sift-down passes over an implicit array — the `omnetpp` /
/// `astar` priority-queue profile (indexed loads/stores, unpredictable
/// branches).
pub fn heap_kernel(name: &str, heap_slots: i64, operations: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("heap").unwrap();
    for i in 0..heap_slots {
        asm.data_u64s(&[((i * 2654435761) % 100_000) as u64]);
    }
    asm.li(CNT, operations);
    asm.li(ACC, 1); // rotating start index
    asm.label("op").unwrap();
    asm.la(BASE, "heap");
    asm.mv(A0, ACC); // i
    asm.label("sift").unwrap();
    asm.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd: A1,
        rs1: A0,
        imm: 1,
    }); // 2i
    asm.li(A3, heap_slots - 1);
    asm.bge(A1, A3, "done_sift");
    // load heap[i], heap[2i]
    asm.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd: A2,
        rs1: A0,
        imm: 3,
    });
    asm.add(A2, A2, BASE);
    asm.ld(I1, A2, 0);
    asm.push(Inst::OpImm {
        op: IntImmOp::Slli,
        rd: A3,
        rs1: A1,
        imm: 3,
    });
    asm.add(A3, A3, BASE);
    asm.ld(I2, A3, 0);
    asm.bge(I2, I1, "done_sift"); // child >= parent: heap ok
                                  // swap
    asm.sd(A2, I2, 0);
    asm.sd(A3, I1, 0);
    asm.mv(A0, A1);
    asm.j("sift");
    asm.label("done_sift").unwrap();
    asm.addi(ACC, ACC, 7);
    asm.li(A3, heap_slots / 2);
    asm.blt(ACC, A3, "no_wrap");
    asm.li(ACC, 1);
    asm.label("no_wrap").unwrap();
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "op");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// Feature-distance search mixing integer hashing with FP dot products —
/// the `ferret` profile.
pub fn feature_search_kernel(name: &str, vectors: i64, dims: i64, rounds: i64) -> Program {
    let mut asm = Assembler::new(name);
    asm.data_label("db").unwrap();
    for i in 0..vectors * dims {
        asm.data_f64s(&[((i % 23) as f64 - 11.0) * 0.125]);
    }
    asm.data_label("query").unwrap();
    for i in 0..dims {
        asm.data_f64s(&[((i % 7) as f64 - 3.0) * 0.25]);
    }
    asm.data_label("scanned").unwrap();
    asm.data_zeros(8);
    asm.li(CNT, rounds);
    asm.label("round").unwrap();
    asm.la(BASE, "db");
    asm.li(I0, vectors);
    asm.label("vector").unwrap();
    asm.la(PTR, "query");
    asm.li(I1, dims);
    asm.li(A0, 0);
    asm.push(Inst::FpCvt {
        op: FpCvtOp::LToD,
        rd: 0,
        rs1: A0.index() as u32,
    }); // dist = 0
    asm.label("dim").unwrap();
    asm.fld(f(1), BASE, 0);
    asm.fld(f(2), PTR, 0);
    fp(&mut asm, FpOp::Sub, 3, 1, 2);
    fma(&mut asm, 0, 3, 3, 0);
    asm.addi(BASE, BASE, 8);
    asm.addi(PTR, PTR, 8);
    asm.addi(I1, I1, -1);
    asm.bnez(I1, "dim");
    // Atomically bump the shared progress counter, as the parallel
    // similarity searches do per candidate (LR/SC + AMO keep the §III-B
    // multi-µop log path in the stream).
    asm.la(A2, "scanned");
    asm.li(A1, 1);
    asm.push(Inst::Amo {
        op: AmoOp::Add,
        width: AmoWidth::D,
        rd: A0,
        rs1: A2,
        rs2: A1,
    });
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "vector");
    asm.addi(CNT, CNT, -1);
    asm.bnez(CNT, "round");
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

/// A segment-aligned stateless control loop — the best case for the
/// segment-verdict memo (DESIGN.md §13) and the workload behind the
/// `memo/control_loop_ab` rows in `perf_report`.
///
/// The loop body re-derives every live register from immediates each
/// iteration, so the architectural state at checking-segment starts
/// repeats bit-for-bit across repetitions. The repetition count lives
/// in memory and is touched only by a four-instruction epilogue, so of
/// the `segments_per_rep` segments spanned by one repetition, all but
/// one hash identically every time: steady-state memo hit rate is
/// `(segments_per_rep - 1) / segments_per_rep`.
///
/// `segment_insts` must match the fabric's `segment_limit` (paper:
/// 5 000) — the loop body is padded to exactly
/// `segment_insts * segments_per_rep` instructions so segment
/// boundaries land at the same PCs in every repetition.
pub fn control_loop_kernel(
    name: &str,
    segment_insts: i64,
    segments_per_rep: i64,
    reps: i64,
) -> Program {
    control_loop_kernel_in(Assembler::new(name), segment_insts, segments_per_rep, reps)
}

/// [`control_loop_kernel`] placed in a per-slot text/data window, so
/// several instances can run side by side on multi-main topologies
/// (programs bound to a scenario must use disjoint address windows).
pub fn control_loop_kernel_at(
    name: &str,
    segment_insts: i64,
    segments_per_rep: i64,
    reps: i64,
    slot: u64,
) -> Program {
    let asm = Assembler::with_bases(
        name,
        0x1000_0000 + slot * 0x10_0000,
        0x2000_0000 + slot * 0x10_0000,
    );
    control_loop_kernel_in(asm, segment_insts, segments_per_rep, reps)
}

fn control_loop_kernel_in(
    mut asm: Assembler,
    segment_insts: i64,
    segments_per_rep: i64,
    reps: i64,
) -> Program {
    assert!(segment_insts >= 64, "segment too short to align against");
    assert!(
        segments_per_rep >= 2,
        "need at least one counter-free segment"
    );
    assert!(reps >= 1);
    let body = segment_insts * segments_per_rep;
    // Inner iterations are 5 instructions; the rest of the body is
    // 1 (kill counter) + li_len (inner trip count) + pads + 4 (epilogue).
    let inner = (body - 1 - 3 - 4) / 5;
    let li_len = materialize_const(I0, inner).len() as i64;
    let pads = body - 1 - li_len - 5 * inner - 4;
    assert!((0..10).contains(&pads), "pad computation off: {pads}");

    asm.data_label("cell").unwrap();
    asm.data_u64s(&[0, 0]); // [scratch store target, rep counter]
    asm.la(PTR, "cell");
    asm.li(CNT, reps);
    asm.sd(PTR, CNT, 8);
    // Keep the prologue at least 4 instructions: segment boundaries sit
    // at `segment_insts*k - prologue_len` into the body, and the
    // varying epilogue (last 4 instructions) must stay in one segment.
    while asm.text_len() < 4 {
        asm.nop();
    }
    assert!((asm.text_len() as i64) < segment_insts);

    let top = asm.text_len();
    asm.label("rep").unwrap();
    asm.li(CNT, 0); // kill the loaded rep counter: snapshots repeat
    asm.li(I0, inner);
    asm.label("inner").unwrap();
    asm.li(A0, 77);
    asm.add(A1, A0, A0);
    asm.sd(PTR, A1, 0);
    asm.addi(I0, I0, -1);
    asm.bnez(I0, "inner");
    for _ in 0..pads {
        asm.nop();
    }
    asm.ld(CNT, PTR, 8);
    asm.addi(CNT, CNT, -1);
    asm.sd(PTR, CNT, 8);
    asm.bnez(CNT, "rep");
    // The body retires `body` instructions per repetition; statically
    // the 5-instruction inner loop appears once.
    assert_eq!(
        (asm.text_len() - top) as i64,
        body - 5 * (inner - 1),
        "static body size must match the padded layout"
    );
    asm.ecall();
    asm.finish().expect("kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_sim::{Soc, SocConfig};

    fn runs_to_completion(p: &Program) -> u64 {
        let mut soc = Soc::new(SocConfig::paper(1)).expect("config");
        soc.run_to_ecall(p, 20_000_000)
    }

    #[test]
    fn all_templates_assemble_and_terminate() {
        let programs = [
            fp_pricing_kernel("bs", 16, 4),
            hash_chunk_kernel("hc", 512, 2, 64),
            pointer_chase_kernel("pc", 128, 2_000),
            stencil_kernel("st", 16, 10, 2),
            monte_carlo_kernel("mc", 20, 50),
            sad_kernel("sad", 16, 32, 2),
            stream_kernel("sm", 256, 4),
            dp_band_kernel("dp", 64, 20),
            bitboard_kernel("bb", 64, 3),
            heap_kernel("hp", 128, 500),
            feature_search_kernel("fs", 16, 16, 2),
        ];
        for p in &programs {
            let retired = runs_to_completion(p);
            assert!(retired > 1_000, "{} too short: {retired}", p.name);
        }
    }

    #[test]
    fn control_loop_kernel_retires_segment_aligned_counts() {
        let p = control_loop_kernel("ctrl", 5_000, 2, 3);
        let mut soc = Soc::new(SocConfig::paper(1)).expect("config");
        let retired = soc.run_to_ecall(&p, 10_000_000);
        // prologue + reps * (segment_insts * segments_per_rep) + ecall;
        // the prologue is < 64 instructions, so alignment shows up as a
        // small fixed remainder mod the body size.
        let body = 10_000u64;
        assert_eq!(retired / body, 3, "three repetitions");
        assert!(retired % body < 64, "prologue must stay short: {retired}");
    }

    #[test]
    fn scale_factors_increase_work() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Medium.factor());
    }

    #[test]
    fn pricing_kernel_writes_prices() {
        let p = fp_pricing_kernel("bs", 4, 1);
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(&p, 5_000_000);
        let table = p.symbol("table").unwrap();
        for i in 0..4 {
            let out = f64::from_bits(soc.mem.phys().read_u64(table + i * 48 + 40));
            assert!(out.is_finite(), "option {i} price must be finite: {out}");
            assert!(out != 0.0, "option {i} price must be written");
        }
    }

    #[test]
    fn pointer_chase_visits_ring() {
        let p = pointer_chase_kernel("pc", 64, 64);
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        soc.run_to_ecall(&p, 5_000_000);
        // After nodes hops on a full-cycle permutation we are back at 0.
        assert_eq!(soc.core(0).state.x(PTR), 0, "full-cycle ring must close");
    }

    #[test]
    fn stream_kernel_mutates_every_word() {
        let p = stream_kernel("sm", 32, 1);
        let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
        // Snapshot initial data, run, compare.
        let base = p.symbol("state").unwrap();
        let before: Vec<u64> = (0..32)
            .map(|i| u64::from_le_bytes(p.data[(i * 8)..(i * 8 + 8)].try_into().unwrap()))
            .collect();
        soc.run_to_ecall(&p, 5_000_000);
        for (i, b) in before.iter().enumerate() {
            let after = soc.mem.phys().read_u64(base + (i as u64) * 8);
            assert_ne!(after, *b, "word {i} must be transformed");
        }
    }
}
