//! Instruction-mix statistics.
//!
//! Static (per-program) and dynamic (per-run) classification of
//! instructions, used to sanity-check that each named workload exhibits
//! the instruction-mix character of the benchmark it stands in for.

use flexstep_isa::asm::Program;
use flexstep_isa::decode::decode;
use flexstep_isa::inst::InstClass;
use std::collections::BTreeMap;
use std::fmt;

/// Instruction counts by class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: BTreeMap<&'static str, u64>,
    total: u64,
}

impl InstMix {
    /// Empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one instruction of the given class.
    pub fn record(&mut self, class: InstClass) {
        *self.counts.entry(class_name(class)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total instructions classified.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of instructions in a class (0 when empty).
    pub fn fraction(&self, class: InstClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(class_name(class)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of memory instructions (loads + stores + atomics).
    pub fn memory_fraction(&self) -> f64 {
        self.fraction(InstClass::Load)
            + self.fraction(InstClass::Store)
            + self.fraction(InstClass::Atomic)
    }

    /// Fraction of control-flow instructions (branches + jumps).
    pub fn control_fraction(&self) -> f64 {
        self.fraction(InstClass::Branch) + self.fraction(InstClass::Jump)
    }

    /// Computes the *static* mix of a program image.
    ///
    /// # Panics
    ///
    /// Panics if the program contains undecodable words.
    pub fn of_program(program: &Program) -> Self {
        let mut mix = InstMix::new();
        for &word in &program.text {
            let inst = decode(word).expect("program text must decode");
            mix.record(inst.class());
        }
        mix
    }
}

fn class_name(class: InstClass) -> &'static str {
    match class {
        InstClass::Alu => "alu",
        InstClass::MulDiv => "muldiv",
        InstClass::Load => "load",
        InstClass::Store => "store",
        InstClass::Atomic => "atomic",
        InstClass::Branch => "branch",
        InstClass::Jump => "jump",
        InstClass::Fp => "fp",
        InstClass::System => "system",
        InstClass::Flex => "flex",
    }
}

impl fmt::Display for InstMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} insts:", self.total)?;
        for (name, count) in &self.counts {
            write!(
                f,
                " {name}={:.1}%",
                100.0 * *count as f64 / self.total.max(1) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::suites::by_name;

    #[test]
    fn blackscholes_is_fp_heavy() {
        let p = by_name("blackscholes")
            .unwrap()
            .program(builder::Scale::Test);
        let mix = InstMix::of_program(&p);
        assert!(
            mix.fraction(InstClass::Fp) > 0.35,
            "blackscholes must be FP-heavy: {mix}"
        );
    }

    #[test]
    fn dedup_is_memory_and_branch_heavy() {
        let p = by_name("dedup").unwrap().program(builder::Scale::Test);
        let mix = InstMix::of_program(&p);
        assert!(mix.memory_fraction() > 0.06, "dedup touches memory: {mix}");
        assert!(
            mix.control_fraction() > 0.10,
            "dedup branches per byte: {mix}"
        );
        assert!(
            mix.fraction(InstClass::Fp) < 0.05,
            "dedup is integer code: {mix}"
        );
    }

    #[test]
    fn libquantum_streams_memory() {
        let p = by_name("libquantum").unwrap().program(builder::Scale::Test);
        let mix = InstMix::of_program(&p);
        assert!(mix.memory_fraction() > 0.10, "libquantum streams: {mix}");
    }

    #[test]
    fn sjeng_is_branchy_integer() {
        let p = by_name("sjeng").unwrap().program(builder::Scale::Test);
        let mix = InstMix::of_program(&p);
        assert!(mix.control_fraction() > 0.2, "sjeng is branchy: {mix}");
        assert!(mix.fraction(InstClass::Fp) == 0.0, "sjeng has no FP: {mix}");
    }

    #[test]
    fn display_shows_percentages() {
        let p = by_name("mcf").unwrap().program(builder::Scale::Test);
        let s = InstMix::of_program(&p).to_string();
        assert!(s.contains("load"));
        assert!(s.contains('%'));
    }
}
