//! Dynamic instruction-mix fidelity: the substitution argument of
//! DESIGN.md §2 rests on each synthetic kernel *executing* the mix
//! character of the benchmark it stands in for (Fig. 4/6/7 depend on
//! retired-instruction class densities, not program semantics). These
//! tests measure the dynamic mix of every named workload and pin the
//! class signatures: FP-heavy pricing, branchy search, memory streaming,
//! atomic-using parallel kernels.

use flexstep_isa::inst::InstClass;
use flexstep_sim::{PrivMode, Soc, SocConfig, StepKind, TrapCause};
use flexstep_workloads::{by_name, parsec, spec, InstMix, Scale, Workload};

/// Runs a workload at test scale and returns its dynamic (retired) mix.
fn dynamic_mix(w: &Workload) -> InstMix {
    let program = w.program(Scale::Test);
    let mut soc = Soc::new(SocConfig::paper(1)).expect("config");
    soc.load_program(&program);
    soc.core_mut(0).state.pc = program.entry;
    soc.core_mut(0).state.prv = PrivMode::User;
    soc.core_mut(0).unpark();
    let mut mix = InstMix::new();
    for _ in 0..50_000_000u64 {
        match soc.step_core(0).kind {
            StepKind::Retired(r) => mix.record(r.inst.class()),
            StepKind::Trap {
                cause: TrapCause::EcallFromU,
                ..
            } => return mix,
            StepKind::Trap { cause, pc, .. } => {
                panic!("{} faulted: {cause:?} at {pc:#x}", w.name)
            }
            _ => {}
        }
    }
    panic!("{} did not finish at test scale", w.name);
}

#[test]
fn every_workload_retires_a_nontrivial_dynamic_mix() {
    for w in parsec().into_iter().chain(spec()) {
        let mix = dynamic_mix(&w);
        assert!(
            mix.total() > 5_000,
            "{}: test scale must retire real work, got {}",
            w.name,
            mix.total()
        );
        assert!(
            mix.control_fraction() > 0.01,
            "{}: every kernel loops: {mix}",
            w.name
        );
        assert!(
            mix.fraction(InstClass::Alu) > 0.05,
            "{}: every kernel computes: {mix}",
            w.name
        );
    }
}

#[test]
fn fp_workloads_execute_fp() {
    // The FP-character suites: Black-Scholes pricing, Monte-Carlo
    // swaptions, fluid stencil.
    for name in ["blackscholes", "swaptions", "fluidanimate"] {
        let mix = dynamic_mix(&by_name(name).unwrap());
        assert!(
            mix.fraction(InstClass::Fp) > 0.15,
            "{name} must execute FP work: {mix}"
        );
    }
}

#[test]
fn integer_workloads_execute_no_fp() {
    for name in [
        "bzip2",
        "gobmk",
        "sjeng",
        "mcf",
        "libquantum",
        "dedup",
        "xalancbmk",
    ] {
        let mix = dynamic_mix(&by_name(name).unwrap());
        assert_eq!(
            mix.fraction(InstClass::Fp),
            0.0,
            "{name} is an integer benchmark: {mix}"
        );
    }
}

#[test]
fn memory_streamers_are_memory_dense() {
    for name in ["libquantum", "streamcluster", "mcf"] {
        let mix = dynamic_mix(&by_name(name).unwrap());
        assert!(
            mix.memory_fraction() > 0.15,
            "{name} must be memory-dense: {mix}"
        );
    }
}

#[test]
fn branchy_search_kernels_branch() {
    for name in ["gobmk", "sjeng", "astar"] {
        let mix = dynamic_mix(&by_name(name).unwrap());
        assert!(
            mix.control_fraction() > 0.12,
            "{name} must be control-dense: {mix}"
        );
    }
}

#[test]
fn parallel_kernels_use_atomics() {
    // The Parsec-side kernels model shared-structure updates with real
    // LR/SC/AMO sequences — the multi-µop MAL packaging path (§III-B)
    // depends on these appearing in the stream.
    let mut with_atomics = 0;
    for w in parsec() {
        let mix = dynamic_mix(&w);
        if mix.fraction(InstClass::Atomic) > 0.0 {
            with_atomics += 1;
        }
    }
    assert!(
        with_atomics >= 2,
        "at least two Parsec kernels must exercise atomics, got {with_atomics}"
    );
}

#[test]
fn dynamic_and_static_mixes_agree_in_character() {
    // The loop bodies dominate execution, so the dynamic mix should not
    // wildly diverge from the static text mix in its headline classes.
    for name in ["dedup", "hmmer", "x264"] {
        let w = by_name(name).unwrap();
        let program = w.program(Scale::Test);
        let stat = InstMix::of_program(&program);
        let dyn_ = dynamic_mix(&w);
        let delta = (stat.memory_fraction() - dyn_.memory_fraction()).abs();
        assert!(
            delta < 0.25,
            "{name}: static {:.2} vs dynamic {:.2} memory fraction",
            stat.memory_fraction(),
            dyn_.memory_fraction()
        );
    }
}
