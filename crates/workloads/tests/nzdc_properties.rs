//! Property tests of the nZDC software-redundancy transform: for any
//! builder kernel at any scale-ish parameterisation, the transformed
//! program must compute the *same* memory results as the original — the
//! redundancy may only cost time, never change semantics — and must
//! actually cost time (the Fig. 4 Nzdc bars exist because of it).

use flexstep_isa::asm::Program;
use flexstep_sim::{Soc, SocConfig};
use flexstep_workloads::builder::{
    bitboard_kernel, dp_band_kernel, fp_pricing_kernel, hash_chunk_kernel, heap_kernel,
    pointer_chase_kernel, sad_kernel, stencil_kernel, stream_kernel,
};
use flexstep_workloads::{by_name, nzdc_transform, parsec, spec, Scale};
use proptest::prelude::*;

const MAX_INSTS: u64 = 30_000_000;

/// Runs a program to its final `ecall` on a plain single-core SoC and
/// returns (cycles, data-region words).
fn run_and_dump(program: &Program) -> (u64, Vec<u64>) {
    let mut soc = Soc::new(SocConfig::paper(1)).expect("config");
    soc.run_to_ecall(program, MAX_INSTS);
    let words = (0..program.data.len().div_ceil(8) as u64)
        .map(|i| soc.mem.phys().read_u64(program.data_base + i * 8))
        .collect();
    (soc.now(), words)
}

/// Asserts the nZDC contract on one program.
fn assert_nzdc_contract(program: &Program) -> Result<(), TestCaseError> {
    let transformed = nzdc_transform(program).expect("builder kernels transform");
    prop_assert!(
        transformed.text.len() > program.text.len(),
        "duplication must grow the text: {} -> {}",
        program.text.len(),
        transformed.text.len()
    );
    let (base_cycles, base_mem) = run_and_dump(program);
    let (nzdc_cycles, nzdc_mem) = run_and_dump(&transformed);
    prop_assert_eq!(
        base_mem,
        nzdc_mem,
        "nZDC changed results of {}",
        program.name
    );
    let slowdown = nzdc_cycles as f64 / base_cycles as f64;
    prop_assert!(
        slowdown > 1.15,
        "{}: redundant stream must cost real time, got {:.3}×",
        program.name,
        slowdown
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn nzdc_preserves_fp_pricing(options in 4i64..40, rounds in 1i64..4) {
        assert_nzdc_contract(&fp_pricing_kernel("p", options, rounds))?;
    }

    #[test]
    fn nzdc_preserves_hashing(bytes in 64i64..512, rounds in 1i64..3, slots in 8i64..64) {
        assert_nzdc_contract(&hash_chunk_kernel("h", bytes, rounds, slots))?;
    }

    #[test]
    fn nzdc_preserves_pointer_chase(nodes in 8i64..64, hops in 16i64..200) {
        assert_nzdc_contract(&pointer_chase_kernel("c", nodes, hops))?;
    }

    #[test]
    fn nzdc_preserves_stencil(w in 4i64..12, h in 4i64..12, sweeps in 1i64..3) {
        assert_nzdc_contract(&stencil_kernel("s", w, h, sweeps))?;
    }

    #[test]
    fn nzdc_preserves_sad(blocks in 2i64..8, bytes in 16i64..64, rounds in 1i64..3) {
        assert_nzdc_contract(&sad_kernel("v", blocks, bytes, rounds))?;
    }

    #[test]
    fn nzdc_preserves_stream(words in 16i64..128, rounds in 1i64..4) {
        assert_nzdc_contract(&stream_kernel("m", words, rounds))?;
    }

    #[test]
    fn nzdc_preserves_dp_band(cols in 4i64..24, rows in 2i64..12) {
        assert_nzdc_contract(&dp_band_kernel("d", cols, rows))?;
    }

    #[test]
    fn nzdc_preserves_bitboards(positions in 4i64..24, rounds in 1i64..4) {
        assert_nzdc_contract(&bitboard_kernel("b", positions, rounds))?;
    }

    #[test]
    fn nzdc_preserves_heap(slots in 8i64..48, operations in 8i64..80) {
        assert_nzdc_contract(&heap_kernel("q", slots, operations))?;
    }
}

#[test]
fn every_named_workload_transforms_and_matches() {
    // The real nZDC fails to compile some SPEC/Parsec programs; our
    // synthetic kernels all follow the register discipline, so all 19
    // must transform and agree with their originals at test scale.
    for w in parsec().into_iter().chain(spec()) {
        let program = w.program(Scale::Test);
        let transformed = nzdc_transform(&program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (_, base_mem) = run_and_dump(&program);
        let (_, nzdc_mem) = run_and_dump(&transformed);
        assert_eq!(base_mem, nzdc_mem, "{} diverged under nZDC", w.name);
    }
}

#[test]
fn transform_is_idempotent_in_behaviour() {
    // Transforming an already-transformed program is out of contract
    // (shadow registers collide with the palette), so it must be
    // *rejected*, not silently mangled.
    let p = by_name("libquantum").unwrap().program(Scale::Test);
    let once = nzdc_transform(&p).unwrap();
    assert!(
        nzdc_transform(&once).is_err(),
        "double transform must be rejected by the palette check"
    );
}
