//! # flexstep-soc
//!
//! Analytical area/power model of the Vanilla and FlexStep SoCs at TSMC
//! 28 nm (§VI-D scalability, §VI-E hardware overheads). The model is a
//! component tree — cores, L1/L2 SRAM arrays, uncore, and the FlexStep
//! additions (CPC, ASS, DBC storage plus comparator/counter logic and the
//! MUX/DEMUX interconnect) — with constants calibrated to the paper's
//! published anchors:
//!
//! - Tab. III (4 cores): Vanilla 2.71 mm² / 0.485 W; FlexStep 2.77 mm² /
//!   0.499 W (2.21 % area, 2.89 % power overhead);
//! - Fig. 8 scaling: ≈2.0→12 mm² and ≈0.3→3.3 W from 2 to 32 cores,
//!   near-linear;
//! - per-core FlexStep storage: CPC 8 B + ASS 518 B + DBC 1 088 B =
//!   1 614 B (§VI-E).
//!
//! The crate also houses the workspace-shared *core-model descriptors*
//! ([`CoreModelKind`], [`CheckerTier`]): the simulator instantiates the
//! timing model a descriptor names, the checking fabric routes
//! forwarding packets on it, and the bench sweeps tier sizings against
//! it — one definition instead of three.
//!
//! ## Example
//!
//! ```
//! use flexstep_soc::{flexstep_soc, vanilla_soc};
//!
//! let v = vanilla_soc(4);
//! let f = flexstep_soc(4);
//! let area_overhead = (f.area_mm2() - v.area_mm2()) / v.area_mm2();
//! assert!(area_overhead < 0.03, "FlexStep area overhead is small");
//! ```

#![warn(missing_docs)]

mod model_kind;
mod reliability;

pub use model_kind::{
    CheckerTier, CoreModelKind, CHECKER_TIERS, DEFAULT_OOO_ROB, DEFAULT_OOO_WIDTH,
};
pub use reliability::{
    PairingAction, PairingEvent, PairingSchedule, ReliabilityMode, CHECKPOINT_ONLY_SCALE,
    RELIABILITY_MODES,
};

use std::fmt;

/// Technology constants for the 28 nm node, calibrated to the paper's
/// anchors (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// SRAM density, mm² per byte (6T bit-cell plus array overheads).
    pub sram_mm2_per_byte: f64,
    /// SRAM leakage+dynamic power at nominal activity, W per byte.
    pub sram_w_per_byte: f64,
    /// Area of one Rocket core's logic (pipeline, FPU, predictor),
    /// excluding L1 arrays, mm².
    pub core_logic_mm2: f64,
    /// Power of one core's logic at 1.6 GHz nominal activity, W.
    pub core_logic_w: f64,
    /// Fixed uncore area (L2 control, bus, clocking, IO), mm².
    pub uncore_mm2: f64,
    /// Fixed uncore power, W.
    pub uncore_w: f64,
    /// FlexStep per-core *logic* area (CPC counters, MAL packagers,
    /// comparators), mm².
    pub flex_logic_mm2: f64,
    /// FlexStep per-core logic power, W.
    pub flex_logic_w: f64,
    /// Interconnect MUX/DEMUX area per channel endpoint pair, mm².
    /// Scales with the square of the core count over the crossbar but is
    /// tiny at these sizes (§III-C notes a NoC would replace it at
    /// scale).
    pub interconnect_mm2_per_link: f64,
    /// Interconnect power per link, W.
    pub interconnect_w_per_link: f64,
}

impl Tech {
    /// The calibrated 28 nm constants.
    ///
    /// Derivation: Fig. 8 is linear in core count with
    /// `area(n) ≈ 1.3 + 0.35·n` mm² and `power(n) ≈ 0.1 + 0.1·n` W
    /// (reproducing 2.0/2.7/4.1/7.0/12.0 mm² and 0.3/0.5/0.9/1.7/3.3 W
    /// at n = 2/4/8/16/32). The SRAM constant splits the per-core term
    /// into logic and L1 arrays, and the fixed term into the 512 KiB L2
    /// plus uncore.
    pub fn tsmc28() -> Self {
        let sram_mm2_per_byte = 1.9e-6; // 512 KiB L2 ≈ 1.0 mm²
        let sram_w_per_byte = 1.0e-7; // 512 KiB L2 ≈ 0.05 W
        Tech {
            sram_mm2_per_byte,
            sram_w_per_byte,
            // Core logic = 0.35 mm² minus its 32 KiB of L1 arrays.
            core_logic_mm2: 0.35 - 32.0 * 1024.0 * sram_mm2_per_byte,
            core_logic_w: 0.10 - 32.0 * 1024.0 * sram_w_per_byte,
            uncore_mm2: 1.3 - 512.0 * 1024.0 * sram_mm2_per_byte,
            uncore_w: 0.10 - 512.0 * 1024.0 * sram_w_per_byte,
            // Calibrated so a 4-core FlexStep SoC lands on the published
            // 2.21 % area / 2.89 % power overheads (Tab. III): the
            // 1 614 B of storage is a small part; most is comparator and
            // packaging logic plus the crossbar links.
            flex_logic_mm2: 0.0092,
            flex_logic_w: 0.0028,
            interconnect_mm2_per_link: 0.0012,
            interconnect_w_per_link: 0.0005,
        }
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::tsmc28()
    }
}

/// FlexStep per-core CPC storage (§VI-E), bytes.
pub const CPC_BYTES: usize = 8;
/// ASS storage per core, bytes.
pub const ASS_BYTES: usize = 518;
/// DBC FIFO SRAM per core, bytes.
pub const DBC_BYTES: usize = 1088;
/// Total FlexStep storage per core, bytes (1 614 in the paper).
pub const FLEX_BYTES_PER_CORE: usize = CPC_BYTES + ASS_BYTES + DBC_BYTES;

/// One named component with area and power.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Average power in W.
    pub power_w: f64,
    /// Sub-components.
    pub children: Vec<Component>,
}

impl Component {
    /// A leaf component.
    pub fn leaf(name: impl Into<String>, area_mm2: f64, power_w: f64) -> Self {
        Component {
            name: name.into(),
            area_mm2,
            power_w,
            children: Vec::new(),
        }
    }

    /// A group whose own area/power is the sum of its children.
    pub fn group(name: impl Into<String>, children: Vec<Component>) -> Self {
        let area = children.iter().map(|c| c.area_mm2).sum();
        let power = children.iter().map(|c| c.power_w).sum();
        Component {
            name: name.into(),
            area_mm2: area,
            power_w: power,
            children,
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        writeln!(
            f,
            "{:indent$}{:<28} {:>9.4} mm²  {:>8.4} W",
            "",
            self.name,
            self.area_mm2,
            self.power_w,
            indent = depth * 2
        )?;
        for c in &self.children {
            c.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// A complete SoC model.
#[derive(Debug, Clone, PartialEq)]
pub struct SocModel {
    /// Model name.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// The component tree.
    pub top: Component,
}

impl SocModel {
    /// Total area, mm².
    pub fn area_mm2(&self) -> f64 {
        self.top.area_mm2
    }

    /// Total average power, W.
    pub fn power_w(&self) -> f64 {
        self.top.power_w
    }
}

impl fmt::Display for SocModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ({} cores) ===", self.name, self.cores)?;
        self.top.render(f, 0)
    }
}

fn core_component(tech: &Tech, flexstep: bool) -> Component {
    let l1 = Component::leaf(
        "L1 I+D (32 KiB)",
        32.0 * 1024.0 * tech.sram_mm2_per_byte,
        32.0 * 1024.0 * tech.sram_w_per_byte,
    );
    let logic = Component::leaf("rocket logic", tech.core_logic_mm2, tech.core_logic_w);
    let mut children = vec![logic, l1];
    if flexstep {
        children.push(Component::group(
            "flexstep units",
            vec![
                Component::leaf(
                    "cpc+ass+dbc sram (1614 B)",
                    FLEX_BYTES_PER_CORE as f64 * tech.sram_mm2_per_byte,
                    FLEX_BYTES_PER_CORE as f64 * tech.sram_w_per_byte,
                ),
                Component::leaf("checking logic", tech.flex_logic_mm2, tech.flex_logic_w),
            ],
        ));
    }
    Component::group("core", children)
}

/// Builds the Vanilla (unmodified Rocket) SoC model with explicit
/// technology constants.
pub fn vanilla_soc_with(tech: &Tech, cores: usize) -> SocModel {
    let mut children: Vec<Component> = (0..cores).map(|_| core_component(tech, false)).collect();
    children.push(Component::leaf(
        "L2 (512 KiB)",
        512.0 * 1024.0 * tech.sram_mm2_per_byte,
        512.0 * 1024.0 * tech.sram_w_per_byte,
    ));
    children.push(Component::leaf("uncore", tech.uncore_mm2, tech.uncore_w));
    SocModel {
        name: "Vanilla".into(),
        cores,
        top: Component::group("soc", children),
    }
}

/// Builds the FlexStep SoC model with explicit technology constants.
pub fn flexstep_soc_with(tech: &Tech, cores: usize) -> SocModel {
    let mut children: Vec<Component> = (0..cores).map(|_| core_component(tech, true)).collect();
    children.push(Component::leaf(
        "L2 (512 KiB)",
        512.0 * 1024.0 * tech.sram_mm2_per_byte,
        512.0 * 1024.0 * tech.sram_w_per_byte,
    ));
    children.push(Component::leaf("uncore", tech.uncore_mm2, tech.uncore_w));
    // Fully-connected MUX/DEMUX interconnect: one link per core at small
    // scale (the paper replaces it with a bus/NoC beyond that, keeping
    // growth near-linear — modelled with a mild superlinear term).
    let links = cores as f64 * (1.0 + 0.02 * cores as f64);
    children.push(Component::leaf(
        "dbc interconnect",
        links * tech.interconnect_mm2_per_link,
        links * tech.interconnect_w_per_link,
    ));
    SocModel {
        name: "FlexStep".into(),
        cores,
        top: Component::group("soc", children),
    }
}

/// Vanilla SoC at the calibrated 28 nm node.
pub fn vanilla_soc(cores: usize) -> SocModel {
    vanilla_soc_with(&Tech::tsmc28(), cores)
}

/// FlexStep SoC at the calibrated 28 nm node.
pub fn flexstep_soc(cores: usize) -> SocModel {
    flexstep_soc_with(&Tech::tsmc28(), cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_budget_matches_paper() {
        assert_eq!(FLEX_BYTES_PER_CORE, 1614);
    }

    #[test]
    fn tab3_anchors_reproduced() {
        let v = vanilla_soc(4);
        let f = flexstep_soc(4);
        assert!(
            (v.area_mm2() - 2.71).abs() < 0.05,
            "vanilla area: {}",
            v.area_mm2()
        );
        assert!(
            (v.power_w() - 0.485).abs() < 0.02,
            "vanilla power: {}",
            v.power_w()
        );
        let area_oh = (f.area_mm2() - v.area_mm2()) / v.area_mm2();
        let power_oh = (f.power_w() - v.power_w()) / v.power_w();
        assert!((area_oh - 0.0221).abs() < 0.006, "area overhead {area_oh}");
        assert!(
            (power_oh - 0.0289).abs() < 0.008,
            "power overhead {power_oh}"
        );
    }

    #[test]
    fn fig8_scaling_matches_published_points() {
        // (cores, area mm², power W) read off Fig. 8.
        let anchors = [
            (2usize, 2.0, 0.3),
            (4, 2.7, 0.5),
            (8, 4.1, 0.9),
            (16, 7.0, 1.7),
            (32, 12.0, 3.3),
        ];
        for (n, area, power) in anchors {
            let v = vanilla_soc(n);
            assert!(
                (v.area_mm2() - area).abs() / area < 0.06,
                "{n}-core area {} vs {area}",
                v.area_mm2()
            );
            assert!(
                (v.power_w() - power).abs() / power < 0.08,
                "{n}-core power {} vs {power}",
                v.power_w()
            );
        }
    }

    #[test]
    fn flexstep_overhead_stays_near_linear() {
        // §VI-D: the FlexStep increment grows near-linearly, not
        // exponentially, from 2 to 32 cores.
        let overhead = |n: usize| {
            let v = vanilla_soc(n);
            let f = flexstep_soc(n);
            (f.area_mm2() - v.area_mm2()) / n as f64
        };
        let per_core_2 = overhead(2);
        let per_core_32 = overhead(32);
        assert!(
            per_core_32 / per_core_2 < 2.0,
            "per-core increment must stay near-constant: {per_core_2} -> {per_core_32}"
        );
    }

    #[test]
    fn component_tree_sums() {
        let c = Component::group(
            "g",
            vec![
                Component::leaf("a", 1.0, 0.1),
                Component::leaf("b", 2.0, 0.2),
            ],
        );
        assert!((c.area_mm2 - 3.0).abs() < 1e-12);
        assert!((c.power_w - 0.3).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_components() {
        let f = flexstep_soc(2);
        let s = f.to_string();
        assert!(s.contains("flexstep units"));
        assert!(s.contains("dbc interconnect"));
        assert!(s.contains("L2"));
        assert!(s.contains("mm²"));
    }

    #[test]
    fn flexstep_always_costs_more_than_vanilla() {
        for n in [2usize, 4, 8, 16, 32] {
            let v = vanilla_soc(n);
            let f = flexstep_soc(n);
            assert!(f.area_mm2() > v.area_mm2());
            assert!(f.power_w() > v.power_w());
        }
    }
}
