//! Per-slot reliability-mode descriptors and dynamic pairing schedules.
//!
//! FlexStep's core claim (§III) is that checking is *flexible*: a main
//! core opts in and out of verification at runtime, and the scheduler —
//! not a failure — decides when a shared checker is worth holding. This
//! module names that policy space. [`ReliabilityMode`] fixes the
//! checkpoint granularity a main slot runs at (from per-instruction
//! lockstep down to no checking at all), and [`PairingSchedule`] is the
//! criticality-driven acquire/release timeline the run harness executes
//! against the checker arbiter, always on segment boundaries.
//!
//! The descriptors live here — next to [`CoreModelKind`](crate::CoreModelKind)
//! — so the simulator, the checking fabric, the scheduler and the bench
//! sweeps all share one definition.

use std::fmt;

/// Segment-limit multiplier of [`ReliabilityMode::CheckpointOnly`]
/// relative to the configured base limit: checkpoints are taken 4×
/// less often, trading detection latency for checkpoint overhead.
pub const CHECKPOINT_ONLY_SCALE: u64 = 4;

/// How strictly a main slot's execution is verified.
///
/// Modes differ only in *checkpoint granularity* — how many retired
/// user instructions a verified segment spans — and whether a checker
/// channel exists at all. Architectural semantics are identical; the
/// trade is detection latency against checkpoint/replay overhead
/// (Prabakaran et al.'s mode-vs-overhead sweep, PAPERS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReliabilityMode {
    /// A checkpoint per retired user instruction: the classical
    /// lockstep bound — minimal detection latency, maximal checkpoint
    /// overhead.
    FullLockstep,
    /// The paper's evaluated configuration: segments of the fabric's
    /// configured limit (5 000 instructions for
    /// `FabricConfig::paper()`).
    #[default]
    SegmentCheck,
    /// Coarse checkpoints only ([`CHECKPOINT_ONLY_SCALE`]× the base
    /// segment limit): cheapest checked mode, longest detection
    /// latency.
    CheckpointOnly,
    /// No checker channel at all — the slot runs as a plain core.
    /// Faults targeting it are *never* detected; the harness reports
    /// them as expired with a typed warning.
    Unchecked,
}

/// All four modes, in decreasing checking strictness — the sweep order
/// of the `fig9_modes` table.
pub const RELIABILITY_MODES: &[ReliabilityMode] = &[
    ReliabilityMode::FullLockstep,
    ReliabilityMode::SegmentCheck,
    ReliabilityMode::CheckpointOnly,
    ReliabilityMode::Unchecked,
];

impl ReliabilityMode {
    /// Whether a checker channel is associated and verifying at all.
    pub fn is_checked(&self) -> bool {
        !matches!(self, ReliabilityMode::Unchecked)
    }

    /// The per-slot segment limit this mode runs at, given the fabric's
    /// configured base limit. `None` means the base limit is kept
    /// as-is (also for [`ReliabilityMode::Unchecked`], where no
    /// segment ever opens).
    pub fn segment_limit(&self, base: u64) -> Option<u64> {
        match self {
            ReliabilityMode::FullLockstep => Some(1),
            ReliabilityMode::SegmentCheck => None,
            ReliabilityMode::CheckpointOnly => Some(base.saturating_mul(CHECKPOINT_ONLY_SCALE)),
            ReliabilityMode::Unchecked => None,
        }
    }

    /// Short stable label for artifact rows, JSON reports and trace
    /// lanes.
    pub fn label(&self) -> &'static str {
        match self {
            ReliabilityMode::FullLockstep => "full_lockstep",
            ReliabilityMode::SegmentCheck => "segment_check",
            ReliabilityMode::CheckpointOnly => "checkpoint_only",
            ReliabilityMode::Unchecked => "unchecked",
        }
    }

    /// Parses a [`label`](Self::label) back into a mode (spec files and
    /// CLI flags).
    pub fn from_label(label: &str) -> Option<Self> {
        RELIABILITY_MODES
            .iter()
            .copied()
            .find(|m| m.label() == label)
    }
}

impl fmt::Display for ReliabilityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One side of a pairing transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairingAction {
    /// (Re-)enable checking on the slot; shared slots re-enter
    /// arbitration for their checker.
    Acquire,
    /// Disable checking at the next segment boundary and hand a shared
    /// checker back to the arbiter.
    Release,
}

impl PairingAction {
    /// Stable label for events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PairingAction::Acquire => "acquire",
            PairingAction::Release => "release",
        }
    }
}

/// One scheduled pairing transition: at `at_cycle`, main slot `slot`
/// should acquire or release its checker.
///
/// Releases are *requests*: the harness applies them at the next
/// segment boundary (a mid-segment release would strand the checker
/// waiting for an end checkpoint that never arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairingEvent {
    /// Cycle at which the transition becomes due.
    pub at_cycle: u64,
    /// Main slot index (scenario slot order, not physical core id).
    pub slot: usize,
    /// Acquire or release.
    pub action: PairingAction,
}

/// A criticality-driven acquire/release timeline for main slots.
///
/// Built either directly (`release_at`/`acquire_at`) or from a
/// task-set's criticality windows by `flexstep-sched`. Events are kept
/// sorted by cycle (ties keep insertion order); a later event for the
/// same slot overrides an earlier one still pending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairingSchedule {
    events: Vec<PairingEvent>,
}

impl PairingSchedule {
    /// An empty schedule (no transitions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a checker release for `slot` at `at_cycle`.
    pub fn release_at(mut self, at_cycle: u64, slot: usize) -> Self {
        self.push(PairingEvent {
            at_cycle,
            slot,
            action: PairingAction::Release,
        });
        self
    }

    /// Schedules a checker (re-)acquire for `slot` at `at_cycle`.
    pub fn acquire_at(mut self, at_cycle: u64, slot: usize) -> Self {
        self.push(PairingEvent {
            at_cycle,
            slot,
            action: PairingAction::Acquire,
        });
        self
    }

    /// Schedules an unchecked window `[release, reacquire)` for `slot`.
    pub fn window(self, slot: usize, release: u64, reacquire: u64) -> Self {
        assert!(release < reacquire, "window must have positive length");
        self.release_at(release, slot).acquire_at(reacquire, slot)
    }

    /// Adds one event, keeping the list sorted by cycle with stable
    /// insertion order on ties.
    pub fn push(&mut self, event: PairingEvent) {
        let at = self
            .events
            .partition_point(|e| e.at_cycle <= event.at_cycle);
        self.events.insert(at, event);
    }

    /// The transitions, sorted by cycle.
    pub fn events(&self) -> &[PairingEvent] {
        &self.events
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest slot index any event references, if any.
    pub fn max_slot(&self) -> Option<usize> {
        self.events.iter().map(|e| e.slot).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_descriptors_are_stable() {
        assert_eq!(ReliabilityMode::default(), ReliabilityMode::SegmentCheck);
        assert_eq!(ReliabilityMode::FullLockstep.segment_limit(5000), Some(1));
        assert_eq!(ReliabilityMode::SegmentCheck.segment_limit(5000), None);
        assert_eq!(
            ReliabilityMode::CheckpointOnly.segment_limit(5000),
            Some(20_000)
        );
        assert_eq!(ReliabilityMode::Unchecked.segment_limit(5000), None);
        assert!(!ReliabilityMode::Unchecked.is_checked());
        assert!(RELIABILITY_MODES.iter().take(3).all(|m| m.is_checked()));
        let labels: Vec<_> = RELIABILITY_MODES.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            [
                "full_lockstep",
                "segment_check",
                "checkpoint_only",
                "unchecked"
            ]
        );
        assert_eq!(ReliabilityMode::FullLockstep.to_string(), "full_lockstep");
        for m in RELIABILITY_MODES {
            assert_eq!(ReliabilityMode::from_label(m.label()), Some(*m));
        }
        assert_eq!(ReliabilityMode::from_label("lockstep"), None);
    }

    #[test]
    fn schedule_stays_sorted_and_stable() {
        let s = PairingSchedule::new()
            .release_at(500, 1)
            .acquire_at(100, 0)
            .release_at(100, 2)
            .window(0, 900, 1200);
        let cycles: Vec<u64> = s.events().iter().map(|e| e.at_cycle).collect();
        assert_eq!(cycles, [100, 100, 500, 900, 1200]);
        // Ties keep insertion order: slot 0's acquire precedes slot 2's
        // release at cycle 100.
        assert_eq!(s.events()[0].slot, 0);
        assert_eq!(s.events()[1].slot, 2);
        assert_eq!(s.max_slot(), Some(2));
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(PairingSchedule::new().is_empty());
        assert_eq!(PairingAction::Acquire.label(), "acquire");
        assert_eq!(PairingAction::Release.label(), "release");
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_rejected() {
        let _ = PairingSchedule::new().window(0, 100, 100);
    }
}
