//! Core-model and checker-tier descriptors shared across the workspace.
//!
//! `flexstep-sim` instantiates the timing model a [`CoreModelKind`]
//! names, `flexstep-core` routes forwarding packets based on it, and
//! `flexstep-bench` sweeps tiers of [`CheckerTier`] sizings against it —
//! one definition here so the layers stop redeclaring the descriptors.

use std::fmt;

/// Default issue/retire width of the out-of-order main-core model
/// (MEEK-class 4-wide superscalar).
pub const DEFAULT_OOO_WIDTH: u8 = 4;

/// Default reorder-buffer window of the out-of-order main-core model.
pub const DEFAULT_OOO_ROB: u16 = 32;

/// Which microarchitectural timing model a core slot runs.
///
/// The architectural ISA semantics are identical across kinds — only
/// timing (and, for out-of-order mains, the forwarding packets packed
/// into the DBC stream) differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CoreModelKind {
    /// The Rocket-like single-issue in-order pipeline (the paper's
    /// evaluated configuration, Tab. II).
    #[default]
    InOrder,
    /// A wide out-of-order superscalar: `width`-wide fetch/issue/retire
    /// over a `rob`-entry reorder window, with MEEK-style branch-outcome
    /// forwarding into the DBC stream so in-order checkers replay
    /// without re-speculating.
    OooSuperscalar {
        /// Fetch/issue/retire width (instructions per cycle).
        width: u8,
        /// Reorder-buffer entries bounding the in-flight window.
        rob: u16,
    },
}

impl CoreModelKind {
    /// The default out-of-order configuration
    /// ([`DEFAULT_OOO_WIDTH`]-wide, [`DEFAULT_OOO_ROB`]-entry ROB).
    pub fn ooo() -> Self {
        CoreModelKind::OooSuperscalar {
            width: DEFAULT_OOO_WIDTH,
            rob: DEFAULT_OOO_ROB,
        }
    }

    /// Whether mains running this model pack branch-outcome forwarding
    /// packets into their DBC stream (checkers then replay control flow
    /// without re-predicting it).
    pub fn forwards_branch_outcomes(&self) -> bool {
        matches!(self, CoreModelKind::OooSuperscalar { .. })
    }

    /// Short stable label for artifact rows and trace lanes.
    pub fn label(&self) -> &'static str {
        match self {
            CoreModelKind::InOrder => "inorder",
            CoreModelKind::OooSuperscalar { .. } => "ooo",
        }
    }
}

impl fmt::Display for CoreModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreModelKind::InOrder => write!(f, "in-order"),
            CoreModelKind::OooSuperscalar { width, rob } => {
                write!(f, "ooo {width}-wide/rob{rob}")
            }
        }
    }
}

/// One checker-pool sizing tier for Fig. 8-style sweeps: how many SoC
/// cores each shared in-order checker serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerTier {
    /// Stable tier name for artifact rows (e.g. `"1:3"`).
    pub name: &'static str,
    /// Cores per shared checker (the §III-C consolidation ratio).
    pub cores_per_checker: usize,
}

/// The checker-sizing tiers the heterogeneous Fig. 8 sweep compares:
/// from one checker per three cores down to one per eight.
pub const CHECKER_TIERS: &[CheckerTier] = &[
    CheckerTier {
        name: "1:4",
        cores_per_checker: 4,
    },
    CheckerTier {
        name: "1:8",
        cores_per_checker: 8,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_stable() {
        assert_eq!(CoreModelKind::default(), CoreModelKind::InOrder);
        assert!(!CoreModelKind::InOrder.forwards_branch_outcomes());
        let ooo = CoreModelKind::ooo();
        assert!(ooo.forwards_branch_outcomes());
        assert_eq!(ooo.label(), "ooo");
        assert_eq!(ooo.to_string(), "ooo 4-wide/rob32");
        assert!(CHECKER_TIERS
            .windows(2)
            .all(|w| w[0].cores_per_checker < w[1].cores_per_checker));
    }
}
