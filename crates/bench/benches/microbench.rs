//! Criterion micro-benchmarks of the FlexStep hot paths: instruction
//! codec, simulator throughput, the verified-execution pipeline, and the
//! schedulability machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use flexstep_core::Scenario;
use flexstep_isa::{decode, encode};
use flexstep_sched::{generate, FlexStepPartitioner, GenParams, Partitioner};
use flexstep_sim::{Soc, SocConfig};
use flexstep_workloads::{by_name, nzdc_transform, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_codec(c: &mut Criterion) {
    let program = by_name("dedup").unwrap().program(Scale::Test);
    let words = program.text.clone();
    let insts: Vec<_> = words.iter().map(|&w| decode::decode(w).unwrap()).collect();

    let mut g = c.benchmark_group("isa_codec");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("decode", |b| {
        b.iter(|| {
            for &w in &words {
                black_box(decode::decode(black_box(w)).unwrap());
            }
        });
    });
    g.bench_function("encode", |b| {
        b.iter(|| {
            for i in &insts {
                black_box(encode::encode(black_box(i)).unwrap());
            }
        });
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let program = by_name("hmmer").unwrap().program(Scale::Test);
    let mut g = c.benchmark_group("simulator");
    g.bench_function("unverified_run", |b| {
        b.iter(|| {
            let mut soc = Soc::new(SocConfig::paper(1)).unwrap();
            black_box(soc.run_to_ecall(&program, 50_000_000))
        });
    });
    g.finish();
}

fn bench_verified_pipeline(c: &mut Criterion) {
    let program = by_name("libquantum").unwrap().program(Scale::Test);
    let mut g = c.benchmark_group("flexstep_pipeline");
    g.bench_function("dual_core_verified_run", |b| {
        b.iter(|| {
            let mut run = Scenario::new(&program).cores(2).build().unwrap();
            let r = run.run_to_completion(200_000_000);
            assert_eq!(r.segments_failed, 0);
            black_box(r.segments_checked)
        });
    });
    g.bench_function("nzdc_transform", |b| {
        b.iter(|| black_box(nzdc_transform(black_box(&program)).unwrap()));
    });
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    g.bench_function("uunifast_160", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let params = GenParams::paper(160, 4.0, 0.125, 0.125);
        b.iter(|| black_box(generate(&mut rng, &params)));
    });
    g.bench_function("flexstep_partition_160x8", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let params = GenParams::paper(160, 4.0, 0.125, 0.125);
        let ts = generate(&mut rng, &params);
        b.iter(|| black_box(FlexStepPartitioner.partition(black_box(&ts), 8)));
    });
    g.finish();
}

fn bench_dbc_fifo(c: &mut Criterion) {
    use flexstep_core::{BufferFifo, LogEntry, LogKind, Packet};
    let entry = |i: u64| {
        Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0x1000 + i * 8,
            size: 8,
            data: i,
        })
    };
    let mut g = c.benchmark_group("dbc_fifo");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("push_pop_1_consumer", |b| {
        b.iter(|| {
            let mut f = BufferFifo::new(1088, 4);
            f.set_spill(true);
            for i in 0..4096u64 {
                f.push(entry(i)).unwrap();
                if i % 2 == 1 {
                    black_box(f.pop(0));
                    black_box(f.pop(0));
                }
            }
            black_box(f.total_pushed())
        });
    });
    g.bench_function("push_burst_drain_segment", |b| {
        use flexstep_core::Checkpoint;
        let snap = flexstep_sim::ArchState::new(0).snapshot();
        b.iter(|| {
            let mut f = BufferFifo::new(1088, 4);
            f.set_spill(true);
            // 128 segments of 30 entries each, produced as bursts and
            // consumed segment-at-a-time.
            let mut out = Vec::new();
            for seg in 0..128u64 {
                f.push(Packet::scp(Checkpoint {
                    snapshot: snap,
                    seq: seg,
                    tag: 0,
                }))
                .unwrap();
                let burst: Vec<Packet> = (0..30).map(|i| entry(seg * 30 + i)).collect();
                f.push_burst(&burst).unwrap();
                f.push_burst(&[
                    Packet::InstCount(30),
                    Packet::ecp(Checkpoint {
                        snapshot: snap,
                        seq: seg,
                        tag: 0,
                    }),
                ])
                .unwrap();
                out.clear();
                black_box(f.drain_segment_into(0, &mut out));
            }
            black_box(f.total_pushed())
        });
    });
    g.bench_function("push_pop_2_consumers", |b| {
        b.iter(|| {
            let mut f = BufferFifo::new(1088, 4);
            f.set_spill(true);
            f.set_consumers(2);
            for i in 0..4096u64 {
                f.push(entry(i)).unwrap();
                if i % 2 == 1 {
                    for c in 0..2 {
                        black_box(f.pop(c));
                        black_box(f.pop(c));
                    }
                }
            }
            black_box(f.total_pushed())
        });
    });
    g.finish();
}

fn bench_fault_campaign(c: &mut Criterion) {
    use flexstep_bench::fig7_campaign;
    let w = by_name("libquantum").unwrap();
    let mut g = c.benchmark_group("fault_injection");
    g.sample_size(10);
    g.bench_function("fig7_campaign_5_injections", |b| {
        b.iter(|| black_box(fig7_campaign(&w, Scale::Test, 5, 42)));
    });
    g.finish();
}

fn bench_motivating_des(c: &mut Criterion) {
    use flexstep_sched::motivating::{simulate, Arch, Scenario};
    let mut g = c.benchmark_group("fig1_des");
    g.bench_function("three_architectures", |b| {
        let s = Scenario::paper();
        b.iter(|| {
            for arch in [Arch::LockStep, Arch::Hmr, Arch::FlexStep] {
                black_box(simulate(&s, arch));
            }
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec, bench_simulator, bench_verified_pipeline, bench_scheduling,
        bench_dbc_fifo, bench_fault_campaign, bench_motivating_des
}
criterion_main!(benches);
