//! Fig. 9: the reliability-mode sweep — mode × slowdown × checkpoint
//! overhead × detection latency over a paired-lockstep SoC, plus a
//! dynamic-pairing probe exercising the mid-run acquire/release
//! protocol on the shared-checker topology.
//!
//! Each [`ReliabilityMode`] row runs the same workloads twice: once
//! fault-free with [`Scenario::track_reliability`] on (the per-mode
//! accounting — coverage cycles, checkpoint stalls, slowdown against
//! the `Unchecked` baseline), then under a seeded fault campaign (the
//! detection-latency and coverage columns). The table pins the central
//! FlexStep trade: stricter modes detect faster but stall the main
//! core on more checkpoints.
//!
//! Hard invariants the `fig9_modes` artifact enforces:
//!
//! - checked modes cover ≥ 99 % of landed shots;
//! - `FullLockstep` runs have zero unchecked cycles;
//! - mean detection latency orders `FullLockstep` ≤ `SegmentCheck` ≤
//!   `CheckpointOnly`;
//! - every `Unchecked` shot expires with a typed warning, never
//!   silently.

use crate::manycore::{checker_split, many_core_job};
use crate::{
    derive_stream, FabricConfig, FaultPlan, LatencyStats, PairingSchedule, ReliabilityMode,
    Scenario, Topology, RELIABILITY_MODES,
};
use flexstep_core::json::{array, numbers, JsonObject};
use flexstep_core::{FaultTarget, RunReport, RunWarning, ScenarioError};
use flexstep_isa::asm::Program;
use flexstep_sim::Clock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One mode-sweep configuration.
///
/// Mode rows run the *paired* topology (`cores / 2` mains, each with a
/// dedicated checker): lockstep is a 1:1 discipline — a shared checker
/// replaying three mains' single-instruction segments falls a whole
/// run behind, which measures the arbiter, not the mode. The
/// dynamic-pairing probe keeps the shared-checker topology, where the
/// arbiter interplay *is* the subject.
#[derive(Debug, Clone, Copy)]
pub struct ModeSweepConfig {
    /// Total cores in the SoC.
    pub cores: usize,
    /// Cores per shared checker (pairing probe only).
    pub cores_per_checker: usize,
    /// Loop iterations per main-core workload.
    pub iters_per_main: i64,
    /// Independent fault runs per mode.
    pub runs: usize,
    /// Shots armed per fault run. Capped at the main count per run by
    /// the deck draw — at most one shot per main per run, so one
    /// segment never has to absorb two shots (a segment's single
    /// failure verdict can consume only one).
    pub shots_per_run: usize,
    /// Sweep seed; mode `m`, run `k` draws from
    /// `derive_stream(seed, "mode-{m}-run-{k}")`.
    pub seed: u64,
}

impl ModeSweepConfig {
    /// The full sweep: an 8-core SoC (4 paired mains), 240 shots per
    /// mode. Jobs span several base segments (~20 000 user
    /// instructions against the 5 000-instruction limit), so the modes
    /// genuinely differ in checkpoint granularity.
    pub fn full() -> Self {
        ModeSweepConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 4_000,
            runs: 60,
            shots_per_run: 4,
            seed: 0xF169,
        }
    }

    /// Reduced sweep for CI (60 shots per mode, ~12 500-instruction
    /// jobs — still multiple base segments).
    pub fn quick() -> Self {
        ModeSweepConfig {
            iters_per_main: 2_500,
            runs: 15,
            ..Self::full()
        }
    }

    /// Shots each mode arms.
    pub fn armed(&self) -> usize {
        self.runs * self.shots_per_run.min(self.cores / 2)
    }
}

/// One row of the Fig. 9 table: one reliability mode, accounted and
/// fault-injected.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// The mode this row ran under.
    pub mode: ReliabilityMode,
    /// Whether every run (fault-free and campaign) completed.
    pub completed: bool,
    /// Fault-free finish cycle of the slowest main.
    pub finish_cycle: u64,
    /// `finish_cycle` relative to the `Unchecked` row (≥ 1.0; the
    /// checkpoint-overhead column).
    pub slowdown: f64,
    /// Cycles spent under an associated checker, summed over slots
    /// (fault-free run).
    pub checked_cycles: u64,
    /// Cycles spent unchecked, summed over slots (fault-free run).
    pub unchecked_cycles: u64,
    /// Main-core stall cycles charged to checkpoint emission
    /// (fault-free run).
    pub cp_stall_cycles: u64,
    /// Segments verified in the fault-free run.
    pub segments_checked: u64,
    /// Shots armed across the campaign.
    pub armed: usize,
    /// Shots that landed in a stream.
    pub landed: usize,
    /// Armed shots that expired without landing.
    pub expired: usize,
    /// Detections attributed one-to-one to landed shots.
    pub detected: usize,
    /// `ShotInUncheckedWindow` warnings across the campaign (every
    /// expired `Unchecked` shot must raise one).
    pub unchecked_warnings: usize,
    /// Detection-latency distribution over matched pairs, µs.
    pub stats: Option<LatencyStats>,
    /// Raw matched-pair latencies, µs.
    pub latencies_us: Vec<f64>,
}

impl ModeRow {
    /// Detection coverage over landed shots (1.0 when nothing landed
    /// in a checked mode's stream, 0.0 for `Unchecked`).
    pub fn coverage_landed(&self) -> f64 {
        if self.landed == 0 {
            if self.mode.is_checked() {
                1.0
            } else {
                0.0
            }
        } else {
            self.detected as f64 / self.landed as f64
        }
    }

    /// Fraction of executed cycles under checking (fault-free run).
    pub fn checked_fraction(&self) -> f64 {
        let total = self.checked_cycles + self.unchecked_cycles;
        if total == 0 {
            0.0
        } else {
            self.checked_cycles as f64 / total as f64
        }
    }

    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("mode", self.mode.label())
            .field_bool("completed", self.completed)
            .field_u64("finish_cycle", self.finish_cycle)
            .field_f64("slowdown", self.slowdown)
            .field_u64("checked_cycles", self.checked_cycles)
            .field_u64("unchecked_cycles", self.unchecked_cycles)
            .field_u64("cp_stall_cycles", self.cp_stall_cycles)
            .field_u64("segments_checked", self.segments_checked)
            .field_f64("checked_fraction", self.checked_fraction())
            .field_u64("armed", self.armed as u64)
            .field_u64("landed", self.landed as u64)
            .field_u64("expired", self.expired as u64)
            .field_u64("detected", self.detected as u64)
            .field_u64("unchecked_warnings", self.unchecked_warnings as u64)
            .field_f64("coverage_landed", self.coverage_landed());
        match &self.stats {
            Some(s) => {
                o.field_f64("mean_us", s.mean_us)
                    .field_f64("p99_us", s.p99_us)
                    .field_f64("max_us", s.max_us);
            }
            None => {
                o.field_raw("mean_us", "null")
                    .field_raw("p99_us", "null")
                    .field_raw("max_us", "null");
            }
        }
        o.field_raw("latencies_us", &numbers(self.latencies_us.iter().copied()));
        o.finish()
    }
}

/// Outcome of the dynamic-pairing probe: one run with a release-only
/// schedule on slot 0 and a mid-run release/re-acquire window on every
/// other slot, plus a shot run aimed into the released windows.
#[derive(Debug, Clone)]
pub struct PairingProbe {
    /// Whether both probe runs completed.
    pub completed: bool,
    /// Checker releases executed (segment-boundary deferred).
    pub releases: u64,
    /// Checker re-acquires executed.
    pub acquires: u64,
    /// Cycles under checking, summed over slots.
    pub checked_cycles: u64,
    /// Cycles released, summed over slots.
    pub unchecked_cycles: u64,
    /// Shots that expired inside the released window, raising a typed
    /// warning.
    pub window_warnings: usize,
    /// Segments verified despite the windows.
    pub segments_checked: u64,
}

impl PairingProbe {
    /// Renders the probe as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_bool("completed", self.completed)
            .field_u64("releases", self.releases)
            .field_u64("acquires", self.acquires)
            .field_u64("checked_cycles", self.checked_cycles)
            .field_u64("unchecked_cycles", self.unchecked_cycles)
            .field_u64("window_warnings", self.window_warnings as u64)
            .field_u64("segments_checked", self.segments_checked);
        o.finish()
    }
}

fn sweep_programs(cfg: &ModeSweepConfig, mains: usize) -> Vec<Program> {
    (0..mains)
        .map(|i| many_core_job(i as u64, cfg.iters_per_main))
        .collect()
}

fn mode_scenario(cfg: &ModeSweepConfig, programs: &[Program], mode: ReliabilityMode) -> Scenario {
    let mut scenario = Scenario::new(&programs[0])
        .cores(cfg.cores)
        .topology(Topology::PairedLockstep)
        .fabric(FabricConfig::paper())
        .main_reliability_mode(mode)
        .track_reliability();
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    scenario
}

fn unchecked_warning_count(report: &RunReport) -> usize {
    report
        .warnings
        .iter()
        .filter(|w| matches!(w, RunWarning::ShotInUncheckedWindow { .. }))
        .count()
}

/// Runs the Fig. 9 sweep: one [`ModeRow`] per [`RELIABILITY_MODES`]
/// entry, in decreasing strictness.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid.
pub fn mode_sweep(cfg: &ModeSweepConfig) -> Result<Vec<ModeRow>, ScenarioError> {
    let mains = (cfg.cores / 2).max(1);
    let shots_per_run = cfg.shots_per_run.min(mains);
    let programs = sweep_programs(cfg, mains);
    let clock = Clock::paper();

    let mut rows = Vec::with_capacity(RELIABILITY_MODES.len());
    for &mode in RELIABILITY_MODES {
        // Fault-free accounted run: overhead and coverage cycles.
        let mut probe = mode_scenario(cfg, &programs, mode).build()?;
        let free = probe.run_to_completion(u64::MAX);
        let mut completed = free.completed;
        let checked_cycles: u64 = free.mode_stats.iter().map(|m| m.checked_cycles).sum();
        let unchecked_cycles: u64 = free.mode_stats.iter().map(|m| m.unchecked_cycles).sum();
        let cp_stall_cycles: u64 = free
            .mode_stats
            .iter()
            .map(|m| m.checkpoint_stall_cycles)
            .sum();
        let horizon = free.main_finish_cycle.max(1_000);

        // Seeded fault campaign: latency and coverage columns.
        let mut landed = 0usize;
        let mut expired = 0usize;
        let mut unchecked_warnings = 0usize;
        let mut cycles: Vec<u64> = Vec::new();
        for run in 0..cfg.runs {
            let run_seed = derive_stream(cfg.seed, &format!("mode-{}-run-{run}", mode.label()));
            let mut rng = StdRng::seed_from_u64(run_seed);
            let mut plan = FaultPlan::none().with_seed(rng.gen());
            let mut deck: Vec<usize> = Vec::new();
            for _ in 0..shots_per_run {
                if deck.is_empty() {
                    deck = (0..mains).collect();
                    deck.shuffle(&mut rng);
                }
                let at = rng.gen_range(horizon / 20..horizon);
                let channel = deck.pop().expect("deck refilled above");
                // EntryData flips corrupt forwarded values the checker
                // always compares — a landed shot is detectable by
                // construction, which is what lets the artifact demand
                // ≥99 % coverage in checked modes (random targets
                // include benign flips, e.g. in unread address bits).
                plan = plan
                    .then_bit_flip_at(at, FaultTarget::EntryData)
                    .on_channel(channel);
            }
            let mut sim = mode_scenario(cfg, &programs, mode)
                .fault_plan(plan)
                .build()?;
            let report = sim.run_to_completion(u64::MAX);
            completed &= report.completed;
            landed += report.injections.len();
            expired += report.shots_expired as usize;
            unchecked_warnings += unchecked_warning_count(&report);
            cycles.extend(
                report
                    .matched_detections()
                    .iter()
                    .map(|p| p.latency_cycles()),
            );
        }

        let latencies_us: Vec<f64> = cycles.iter().map(|&c| clock.cycles_to_us(c)).collect();
        rows.push(ModeRow {
            mode,
            completed,
            finish_cycle: free.main_finish_cycle,
            slowdown: 1.0, // filled against the Unchecked baseline below
            checked_cycles,
            unchecked_cycles,
            cp_stall_cycles,
            segments_checked: free.segments_checked,
            armed: cfg.armed(),
            landed,
            expired,
            detected: cycles.len(),
            unchecked_warnings,
            stats: LatencyStats::from_cycles(&cycles, clock),
            latencies_us,
        });
    }

    let baseline = rows
        .iter()
        .find(|r| r.mode == ReliabilityMode::Unchecked)
        .map_or(1, |r| r.finish_cycle.max(1));
    for row in &mut rows {
        row.slowdown = row.finish_cycle as f64 / baseline as f64;
    }
    Ok(rows)
}

/// Runs the dynamic-pairing probe on the shared-checker topology (the
/// arbiter interplay is the point): slot 0 releases its checker a
/// quarter of the way into the span and never re-acquires; every other
/// slot gets a `[span/4, span/2)` released window. A second run then
/// aims one shot per re-acquiring slot at the middle of the window
/// (those land on still-buffered packets — release stops production,
/// not verification of data already logged — and are detected) and one
/// shot at slot 0 far beyond the horizon: slot 0 stops producing at its
/// release and never resumes, so that shot has nothing left to corrupt
/// and must expire at drain with the typed
/// [`RunWarning::ShotInUncheckedWindow`] warning rather than silently.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid.
pub fn pairing_probe(cfg: &ModeSweepConfig) -> Result<PairingProbe, ScenarioError> {
    let (mains, checkers) = checker_split(cfg.cores, cfg.cores_per_checker)?;
    let programs = sweep_programs(cfg, mains);

    let shared = |programs: &[Program]| {
        let mut scenario = Scenario::new(&programs[0])
            .cores(cfg.cores)
            .topology(Topology::SharedChecker { checkers })
            .fabric(FabricConfig::paper());
        for p in &programs[1..] {
            scenario = scenario.program(p);
        }
        scenario
    };

    // Span probe (plain SegmentCheck) to place the windows.
    let span = shared(&programs)
        .build()?
        .run_to_completion(u64::MAX)
        .main_finish_cycle
        .max(1_000);
    let (release, reacquire) = (span / 4, span / 2);
    let mut schedule = PairingSchedule::new().release_at(release, 0);
    for slot in 1..mains {
        schedule = schedule.window(slot, release, reacquire);
    }

    let free = shared(&programs)
        .pairing_schedule(schedule.clone())
        .build()?
        .run_to_completion(u64::MAX);
    let releases: u64 = free.mode_stats.iter().map(|m| m.releases).sum();
    let acquires: u64 = free.mode_stats.iter().map(|m| m.acquires).sum();

    // Second run: one shot per re-acquiring slot in mid-window, plus a
    // beyond-horizon shot at the never-re-acquiring slot 0. The shared
    // checker drains released buffers deep into the run, so any earlier
    // cycle risks landing on leftover packets; a never-due shot instead
    // expires at drain, while slot 0 still sits released. It goes last:
    // shots fire in plan order and an unlandable shot holds back those
    // behind it.
    let mut plan = FaultPlan::none().with_seed(derive_stream(cfg.seed, "pairing-shots"));
    let mid = release + (reacquire - release) / 2;
    for slot in 1..mains {
        plan = plan
            .then_bit_flip_at(mid, FaultTarget::EntryData)
            .on_channel(slot);
    }
    plan = plan
        .then_bit_flip_at(span.saturating_mul(1_000), FaultTarget::EntryData)
        .on_channel(0);
    let shot = shared(&programs)
        .pairing_schedule(schedule)
        .fault_plan(plan)
        .build()?
        .run_to_completion(u64::MAX);

    Ok(PairingProbe {
        completed: free.completed && shot.completed,
        releases,
        acquires,
        checked_cycles: free.mode_stats.iter().map(|m| m.checked_cycles).sum(),
        unchecked_cycles: free.mode_stats.iter().map(|m| m.unchecked_cycles).sum(),
        window_warnings: unchecked_warning_count(&shot),
        segments_checked: free.segments_checked,
    })
}

/// Renders the full Fig. 9 artifact (meta + rows + pairing probe).
pub fn fig9_json(cfg: &ModeSweepConfig, rows: &[ModeRow], pairing: &PairingProbe) -> String {
    let mut o = JsonObject::new();
    {
        let mut meta = JsonObject::new();
        meta.field_str("tool", "fig9_modes")
            .field_u64("cores", cfg.cores as u64)
            .field_u64("cores_per_checker", cfg.cores_per_checker as u64)
            .field_i64("iters_per_main", cfg.iters_per_main)
            .field_u64("runs", cfg.runs as u64)
            .field_u64("shots_per_run", cfg.shots_per_run as u64)
            .field_u64("seed", cfg.seed);
        o.field_raw("meta", &meta.finish());
    }
    o.field_raw("rows", &array(rows.iter().map(ModeRow::to_json)))
        .field_raw("pairing", &pairing.to_json());
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModeSweepConfig {
        // Multi-segment jobs (~12 500 instructions against the 5 000
        // base limit): segment boundaries must exist for releases and
        // for the modes to differ at all.
        ModeSweepConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 2_500,
            runs: 2,
            shots_per_run: 6,
            seed: 41,
        }
    }

    #[test]
    fn sweep_rows_satisfy_the_fig9_invariants() {
        let cfg = tiny();
        let rows = mode_sweep(&cfg).expect("valid configuration");
        assert_eq!(rows.len(), RELIABILITY_MODES.len());
        let by_mode = |m: ReliabilityMode| rows.iter().find(|r| r.mode == m).unwrap();
        for row in &rows {
            assert!(row.completed, "{} must complete", row.mode);
            assert_eq!(row.armed, cfg.armed());
            assert_eq!(row.landed + row.expired, row.armed);
            assert!(row.detected <= row.landed);
            if row.mode.is_checked() {
                assert!(
                    row.coverage_landed() >= 0.99,
                    "{}: coverage {}",
                    row.mode,
                    row.coverage_landed()
                );
            }
        }
        let lockstep = by_mode(ReliabilityMode::FullLockstep);
        assert_eq!(lockstep.unchecked_cycles, 0);
        assert!(lockstep.slowdown > by_mode(ReliabilityMode::SegmentCheck).slowdown);
        let unchecked = by_mode(ReliabilityMode::Unchecked);
        assert_eq!(unchecked.detected, 0);
        assert_eq!(unchecked.expired, unchecked.armed);
        assert_eq!(unchecked.unchecked_warnings, unchecked.armed);
        assert!((unchecked.slowdown - 1.0).abs() < 1e-9);
        // Latency ordering: stricter modes detect sooner.
        let mean = |r: &ModeRow| r.stats.as_ref().expect("detections").mean_us;
        assert!(mean(lockstep) <= mean(by_mode(ReliabilityMode::SegmentCheck)));
        assert!(
            mean(by_mode(ReliabilityMode::SegmentCheck))
                <= mean(by_mode(ReliabilityMode::CheckpointOnly))
        );
    }

    #[test]
    fn pairing_probe_releases_and_reacquires() {
        let cfg = tiny();
        let probe = pairing_probe(&cfg).expect("valid configuration");
        assert!(probe.completed);
        assert!(probe.releases >= 1, "{probe:?}");
        assert!(probe.acquires >= 1, "{probe:?}");
        assert!(probe.unchecked_cycles > 0);
        assert!(probe.checked_cycles > 0);
        assert!(probe.window_warnings >= 1, "{probe:?}");
        assert!(probe.segments_checked > 0);
        let json = probe.to_json();
        assert!(json.contains("\"releases\": "));
    }
}
