//! Many-core (Fig. 8-style) shared-checker experiments.
//!
//! The paper's Fig. 8 scales the FlexStep SoC model to 32 cores; the
//! ROADMAP asks for experiments that actually *simulate* 16–64 core
//! SoCs. This module runs them through the [`Scenario`] front door: `n`
//! cores split into main cores and a pool of §III-C arbitrated shared
//! checkers, every main running its own workload in a private address
//! window, with a declarative fault plan spraying bit flips across the
//! streams. Each row reports detection latency and the wall-clock
//! scheduler throughput (the event-queue scheduler was built for
//! exactly this scale).

use crate::{FabricConfig, FaultPlan, Scenario, Topology};
use flexstep_core::json::JsonObject;
use flexstep_core::{RunReport, ScenarioError};
use flexstep_isa::asm::{Assembler, Program};
use flexstep_isa::XReg;
use flexstep_sim::{Clock, CoreModelKind};
use flexstep_soc::{CheckerTier, CHECKER_TIERS};
use std::time::Instant;

/// One many-core experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ManyCoreConfig {
    /// Total cores in the SoC.
    pub cores: usize,
    /// Cores per shared checker (4 → a 16-core SoC gets 4 checkers
    /// serving 12 mains).
    pub cores_per_checker: usize,
    /// Loop iterations per main-core workload.
    pub iters_per_main: i64,
    /// Random bit flips sprayed across the streams.
    pub injections: usize,
    /// RNG seed for the fault plan.
    pub seed: u64,
}

impl ManyCoreConfig {
    /// The default sweep configuration at `cores` cores.
    pub fn at(cores: usize) -> Self {
        ManyCoreConfig {
            cores,
            cores_per_checker: 4,
            iters_per_main: 2_000,
            injections: 4,
            seed: 0xF168 ^ cores as u64,
        }
    }

    /// Reduced workload for CI keep-alive runs.
    pub fn quick(cores: usize) -> Self {
        ManyCoreConfig {
            iters_per_main: 600,
            injections: 2,
            ..Self::at(cores)
        }
    }
}

/// One row of the many-core sweep.
#[derive(Debug, Clone)]
pub struct ManyCoreRow {
    /// Total cores simulated.
    pub cores: usize,
    /// Main cores.
    pub mains: usize,
    /// Shared checker cores.
    pub checkers: usize,
    /// Whether every main finished.
    pub completed: bool,
    /// Engine steps executed.
    pub engine_steps: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Engine steps per wall-clock second (scheduler scaling).
    pub steps_per_sec: f64,
    /// Segments verified across the checker pool.
    pub segments_checked: u64,
    /// Shots the fault plan scheduled.
    pub armed: usize,
    /// Faults that landed.
    pub injected: usize,
    /// Armed shots that expired without landing.
    pub expired: usize,
    /// Detections attributed one-to-one to a landed fault (never more
    /// than `injected`).
    pub detected: usize,
    /// Mean detection latency over matched (injection, detection)
    /// pairs, µs.
    pub mean_detection_latency_us: Option<f64>,
    /// Arbitration conflicts across the checker pool.
    pub arbiter_conflicts: u64,
    /// Channel hand-overs across the checker pool.
    pub arbiter_switches: u64,
    /// Main-core backpressure stalls.
    pub backpressure_stalls: u64,
    /// Cycle at which the last stream drained.
    pub drain_cycle: u64,
}

impl ManyCoreRow {
    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cores", self.cores as u64)
            .field_u64("mains", self.mains as u64)
            .field_u64("checkers", self.checkers as u64)
            .field_bool("completed", self.completed)
            .field_u64("engine_steps", self.engine_steps)
            .field_f64("wall_s", self.wall_s)
            .field_f64("steps_per_sec", self.steps_per_sec)
            .field_u64("segments_checked", self.segments_checked)
            .field_u64("armed", self.armed as u64)
            .field_u64("injected", self.injected as u64)
            .field_u64("expired", self.expired as u64)
            .field_u64("detected", self.detected as u64);
        match self.mean_detection_latency_us {
            Some(v) => o.field_f64("mean_detection_latency_us", v),
            None => o.field_raw("mean_detection_latency_us", "null"),
        };
        o.field_u64("arbiter_conflicts", self.arbiter_conflicts)
            .field_u64("arbiter_switches", self.arbiter_switches)
            .field_u64("backpressure_stalls", self.backpressure_stalls)
            .field_u64("drain_cycle", self.drain_cycle);
        o.finish()
    }
}

/// A store/load checksum loop in a private text/data window per main
/// core, so any number of mains coexist in the shared physical memory.
pub fn many_core_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("job{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.label("l").unwrap();
    asm.sd(XReg::A2, XReg::A0, 0);
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

/// Latency of each one-to-one (injection, detection) pair, in cycles.
///
/// Delegates to [`RunReport::matched_detections`]: each detection is
/// attributed to the *earliest unconsumed* preceding injection on the
/// same main core, and each injection is consumed by at most one
/// detection — so `detection_latencies(r).len() <= r.injections.len()`
/// always holds. (The previous latest-preceding rule double-counted in
/// dense campaigns and collapsed latencies toward the newest shot.)
pub fn detection_latencies(report: &RunReport) -> Vec<u64> {
    report
        .matched_detections()
        .iter()
        .map(|m| m.latency_cycles())
        .collect()
}

/// Splits `cores` into `(mains, checkers)` for a shared-checker SoC at
/// the given consolidation ratio.
///
/// # Errors
///
/// Returns [`ScenarioError::BadCheckerCount`] when the ratio leaves no
/// main core (`cores_per_checker <= 1`, or zero cores), mirroring the
/// validation [`Scenario::build`] performs.
pub fn checker_split(
    cores: usize,
    cores_per_checker: usize,
) -> Result<(usize, usize), ScenarioError> {
    let checkers = match cores_per_checker {
        0 => cores,
        r => (cores / r).max(1),
    };
    if checkers >= cores {
        return Err(ScenarioError::BadCheckerCount { checkers, cores });
    }
    Ok((cores - checkers, checkers))
}

/// Runs one many-core shared-checker experiment.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the configuration is invalid (e.g.
/// `cores_per_checker: 1` leaves no main core) instead of panicking
/// mid-run.
pub fn many_core_row(cfg: &ManyCoreConfig) -> Result<ManyCoreRow, ScenarioError> {
    many_core_row_traced(cfg, None)
}

/// [`many_core_row`] with an optional Chrome-trace export: when `trace`
/// is given, the run records a size-bounded schedule trace
/// ([`flexstep_core::trace`], ring of
/// [`DEFAULT_RING_CAPACITY`](flexstep_core::DEFAULT_RING_CAPACITY)
/// events) and writes it there — load it in `chrome://tracing` or
/// Perfetto.
///
/// # Errors
///
/// As [`many_core_row`].
///
/// # Panics
///
/// Panics if the trace file cannot be written.
pub fn many_core_row_traced(
    cfg: &ManyCoreConfig,
    trace: Option<&std::path::Path>,
) -> Result<ManyCoreRow, ScenarioError> {
    let (mains, checkers) = checker_split(cfg.cores, cfg.cores_per_checker)?;
    let programs: Vec<Program> = (0..mains)
        .map(|i| many_core_job(i as u64, cfg.iters_per_main))
        .collect();

    // Spray the injections across channels, staggered in time so the
    // streams carry data when each shot arms; later channels wait
    // longest for their shared checker and buffer the longest.
    let mut plan = FaultPlan::none().with_seed(cfg.seed);
    for k in 0..cfg.injections {
        let cycle = 4_000 + 5_000 * k as u64;
        plan = plan
            .then_random_at(cycle)
            .on_channel(mains - 1 - (k % mains));
    }

    let mut scenario = Scenario::new(&programs[0])
        .cores(cfg.cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .fault_plan(plan);
    if let Some(path) = trace {
        scenario = scenario.trace_to_bounded(path, flexstep_core::DEFAULT_RING_CAPACITY);
    }
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build()?;

    let start = Instant::now();
    let report = run.run_to_completion(u64::MAX);
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    run.write_trace().expect("write schedule trace");

    let clock = Clock::paper();
    let latencies = detection_latencies(&report);
    let mean_us = if latencies.is_empty() {
        None
    } else {
        Some(
            latencies
                .iter()
                .map(|&c| clock.cycles_to_us(c))
                .sum::<f64>()
                / latencies.len() as f64,
        )
    };
    Ok(ManyCoreRow {
        cores: cfg.cores,
        mains,
        checkers,
        completed: report.completed,
        engine_steps: report.engine_steps,
        wall_s,
        steps_per_sec: report.engine_steps as f64 / wall_s,
        segments_checked: report.segments_checked,
        armed: report.shots_armed as usize,
        injected: report.injections.len(),
        expired: report.shots_expired as usize,
        detected: latencies.len(),
        mean_detection_latency_us: mean_us,
        arbiter_conflicts: report.arbiters.iter().map(|a| a.conflicts).sum(),
        arbiter_switches: report.arbiters.iter().map(|a| a.switches).sum(),
        backpressure_stalls: report.backpressure_stalls,
        drain_cycle: report.drain_cycle,
    })
}

/// Runs the Fig. 8-style sweep over the given core counts.
///
/// # Panics
///
/// Panics if a sweep configuration fails to validate (the built-in
/// [`ManyCoreConfig::at`]/[`ManyCoreConfig::quick`] configurations
/// always do).
pub fn fig8_sweep(cores: &[usize], quick: bool) -> Vec<ManyCoreRow> {
    fig8_sweep_traced(cores, quick, None)
}

/// [`fig8_sweep`] with an optional Chrome-trace export for the *first*
/// sweep row (one schedule timeline is what the visualisation needs;
/// tracing all rows would multiply the artifact size for no insight).
///
/// # Panics
///
/// As [`fig8_sweep`], plus if the trace file cannot be written.
pub fn fig8_sweep_traced(
    cores: &[usize],
    quick: bool,
    trace: Option<&std::path::Path>,
) -> Vec<ManyCoreRow> {
    cores
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let cfg = if quick {
                ManyCoreConfig::quick(n)
            } else {
                ManyCoreConfig::at(n)
            };
            let trace = if i == 0 { trace } else { None };
            many_core_row_traced(&cfg, trace).expect("sweep configurations are valid")
        })
        .collect()
}

// ----- heterogeneous core-model sweep (fig8 --ooo) ----------------------

/// One row of the heterogeneous sweep: a (core count, checker tier,
/// main model) cell with the IPC balance the §IV sizing argument rests
/// on — the shared in-order checkers' replay IPC must not fall below
/// the mains' sustained IPC, or verification lag grows without bound.
#[derive(Debug, Clone)]
pub struct HeteroRow {
    /// Total cores simulated.
    pub cores: usize,
    /// Main cores.
    pub mains: usize,
    /// Shared checker cores.
    pub checkers: usize,
    /// Checker-tier name (e.g. `"1:4"`).
    pub tier: &'static str,
    /// Main-core timing model.
    pub model: CoreModelKind,
    /// Whether every main finished.
    pub completed: bool,
    /// Mean sustained IPC across the main cores.
    pub main_ipc: f64,
    /// Mean replay IPC across the checker pool.
    pub checker_ipc: f64,
    /// Segments verified across the checker pool.
    pub segments_checked: u64,
    /// Shots the fault plan scheduled.
    pub armed: usize,
    /// Faults that landed.
    pub injected: usize,
    /// Detections matched one-to-one to landed faults.
    pub detected: usize,
    /// Cycle at which the last stream drained.
    pub drain_cycle: u64,
}

impl HeteroRow {
    /// Campaign coverage: detections over landed faults, percent (100
    /// when nothing landed — an empty campaign misses nothing).
    pub fn coverage_pct(&self) -> f64 {
        if self.injected == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.injected as f64
        }
    }

    /// Renders the row as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cores", self.cores as u64)
            .field_u64("mains", self.mains as u64)
            .field_u64("checkers", self.checkers as u64)
            .field_str("tier", self.tier)
            .field_str("model", self.model.label())
            .field_bool("completed", self.completed)
            .field_f64("main_ipc", self.main_ipc)
            .field_f64("checker_ipc", self.checker_ipc)
            .field_u64("segments_checked", self.segments_checked)
            .field_u64("armed", self.armed as u64)
            .field_u64("injected", self.injected as u64)
            .field_u64("detected", self.detected as u64)
            .field_f64("coverage_pct", self.coverage_pct())
            .field_u64("drain_cycle", self.drain_cycle);
        o.finish()
    }
}

/// The heterogeneous-sweep workload: strided loads walking a buffer
/// much larger than the L1 plus a data-dependent branch per element.
/// Mains — in-order or OoO — pay the miss latency; checkers replay the
/// same instructions against the log (no memory latency) with
/// forwarded outcomes, which is what lets one scalar checker keep up
/// with several wide mains. An L1-resident ALU loop would invert the
/// balance and say nothing about the paper's sizing claim.
pub fn hetero_job(slot: u64, iters: i64) -> Program {
    let text = 0x1000_0000 + slot * 0x10_0000;
    let data = 0x2000_0000 + slot * 0x10_0000;
    let mut asm = Assembler::with_bases(format!("het{slot}"), text, data);
    asm.la(XReg::A2, "buf");
    asm.data_label("buf").unwrap();
    asm.data_zeros(64 * 1024);
    asm.li(XReg::A0, iters);
    asm.li(XReg::A4, 0);
    asm.label("l").unwrap();
    // One cache line per iteration; 64 KiB of buffer bounds the walk.
    asm.ld(XReg::A3, XReg::A2, 0);
    asm.sd(XReg::A2, XReg::A4, 8);
    asm.addi(XReg::A2, XReg::A2, 64);
    asm.add(XReg::A4, XReg::A4, XReg::A3);
    // Data-dependent branch on the loaded value.
    asm.bnez(XReg::A3, "s");
    asm.addi(XReg::A4, XReg::A4, 1);
    asm.label("s").unwrap();
    asm.addi(XReg::A0, XReg::A0, -1);
    asm.bnez(XReg::A0, "l");
    asm.ecall();
    asm.finish().unwrap()
}

/// Runs one heterogeneous cell: `cores` total, checkers sized by
/// `tier`, every main running `model`.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the tier leaves no main core at
/// this count.
pub fn hetero_row(
    cores: usize,
    tier: CheckerTier,
    model: CoreModelKind,
    quick: bool,
) -> Result<HeteroRow, ScenarioError> {
    let (mains, checkers) = checker_split(cores, tier.cores_per_checker)?;
    let iters: i64 = if quick { 300 } else { 800 };
    let shots = if quick { 2 } else { 4 };
    let programs: Vec<Program> = (0..mains).map(|i| hetero_job(i as u64, iters)).collect();
    let mut plan =
        FaultPlan::none().with_seed(0x0880 ^ cores as u64 ^ ((tier.cores_per_checker as u64) << 8));
    for k in 0..shots {
        plan = plan
            .then_random_at(3_000 + 4_000 * k as u64)
            .on_channel(k % mains);
    }
    let mut scenario = Scenario::new(&programs[0])
        .cores(cores)
        .topology(Topology::SharedChecker { checkers })
        .fabric(FabricConfig::paper())
        .main_core_model(model)
        .fault_plan(plan);
    for p in &programs[1..] {
        scenario = scenario.program(p);
    }
    let mut run = scenario.build()?;
    let report = run.run_to_completion(u64::MAX);
    // SharedChecker topology binds mains to 0..mains and checkers to
    // the tail ids, so the IPC means read straight off the SoC.
    let mean_ipc = |ids: std::ops::Range<usize>| {
        let n = ids.len().max(1) as f64;
        ids.map(|i| run.soc().core(i).ipc()).sum::<f64>() / n
    };
    Ok(HeteroRow {
        cores,
        mains,
        checkers,
        tier: tier.name,
        model,
        completed: report.completed,
        main_ipc: mean_ipc(0..mains),
        checker_ipc: mean_ipc(mains..cores),
        segments_checked: report.segments_checked,
        armed: report.shots_armed as usize,
        injected: report.injections.len(),
        detected: detection_latencies(&report).len(),
        drain_cycle: report.drain_cycle,
    })
}

/// The full heterogeneous sweep: every checker tier × {in-order, OoO}
/// mains at each core count. Rows come out grouped by count, then
/// tier, then model, so in-order and OoO cells of the same SoC sit
/// adjacent for comparison.
///
/// # Panics
///
/// Panics if a sweep configuration fails to validate (the built-in
/// tiers at 16+ cores always do).
pub fn hetero_sweep(cores: &[usize], quick: bool) -> Vec<HeteroRow> {
    let mut rows = Vec::new();
    for &n in cores {
        for tier in CHECKER_TIERS {
            for model in [CoreModelKind::InOrder, CoreModelKind::ooo()] {
                rows.push(hetero_row(n, *tier, model, quick).expect("sweep tiers are valid"));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_core_shared_pool_completes_and_detects() {
        let cfg = ManyCoreConfig {
            cores: 8,
            cores_per_checker: 4,
            iters_per_main: 400,
            injections: 2,
            seed: 11,
        };
        let row = many_core_row(&cfg).expect("valid configuration");
        assert_eq!(row.mains, 6);
        assert_eq!(row.checkers, 2);
        assert!(row.completed, "{row:?}");
        assert!(row.segments_checked >= row.mains as u64);
        assert!(
            row.arbiter_switches >= 1,
            "shared checkers must hand over: {row:?}"
        );
        assert!(row.injected >= 1, "shots must land: {row:?}");
        assert!(
            row.detected <= row.injected && row.injected <= row.armed,
            "detected <= landed <= armed must hold: {row:?}"
        );
        assert_eq!(row.armed, row.injected + row.expired);
        assert!(row.steps_per_sec > 0.0);
        let json = row.to_json();
        assert!(json.contains("\"cores\": 8"));
        assert!(json.contains("\"armed\": "));
    }

    #[test]
    fn hetero_ooo_cell_keeps_checker_ipc_ahead_at_full_coverage() {
        let tier = CHECKER_TIERS[0];
        let row = hetero_row(8, tier, CoreModelKind::ooo(), true).expect("valid cell");
        assert!(row.completed, "{row:?}");
        assert_eq!(row.model, CoreModelKind::ooo());
        assert!(row.injected >= 1, "shots must land: {row:?}");
        assert!(
            row.coverage_pct() >= 99.0,
            "OoO-main campaign coverage: {row:?}"
        );
        assert!(
            row.checker_ipc >= row.main_ipc,
            "checker replay must keep up with OoO mains: {row:?}"
        );
        let json = row.to_json();
        assert!(json.contains("\"model\": \"ooo\""));
        assert!(json.contains("\"tier\": \"1:4\""));
    }

    #[test]
    fn bad_cores_per_checker_is_a_typed_error_not_a_panic() {
        // cores_per_checker: 1 makes every core a checker — previously
        // an assert! panic mid-run, now a ScenarioError before building.
        let cfg = ManyCoreConfig {
            cores_per_checker: 1,
            ..ManyCoreConfig::quick(8)
        };
        assert_eq!(
            many_core_row(&cfg).unwrap_err(),
            ScenarioError::BadCheckerCount {
                checkers: 8,
                cores: 8
            }
        );
        let zero = ManyCoreConfig {
            cores_per_checker: 0,
            ..ManyCoreConfig::quick(8)
        };
        assert!(matches!(
            many_core_row(&zero).unwrap_err(),
            ScenarioError::BadCheckerCount { .. }
        ));
        assert_eq!(checker_split(16, 4), Ok((12, 4)));
        assert_eq!(checker_split(8, 100), Ok((7, 1)));
    }

    fn test_report(
        detections: Vec<flexstep_core::DetectionEvent>,
        injections: Vec<flexstep_core::Injection>,
    ) -> RunReport {
        RunReport {
            completed: true,
            main_finish_cycle: 0,
            drain_cycle: 0,
            retired: 0,
            segments_checked: 0,
            segments_failed: 0,
            detections,
            backpressure_stalls: 0,
            engine_steps: 0,
            per_main: vec![],
            arbiters: vec![],
            shots_armed: injections.len() as u64,
            shots_expired: 0,
            checkers_lost: 0,
            repair_latency_cycles: vec![],
            warnings: vec![],
            mode_stats: vec![],
            injections,
        }
    }

    fn det(main: usize, checker: usize, at: u64) -> flexstep_core::DetectionEvent {
        flexstep_core::DetectionEvent {
            main_core: main,
            checker_core: checker,
            segment_seq: 0,
            tag: 0,
            kind: flexstep_core::MismatchKind::LogUnderrun,
            detected_at: at,
        }
    }

    fn inj(main: usize, at: u64) -> flexstep_core::Injection {
        flexstep_core::Injection {
            main_core: main,
            target: flexstep_core::FaultTarget::EntryData,
            bits: vec![3],
            at_cycle: at,
        }
    }

    #[test]
    fn latency_matching_pairs_same_main() {
        let mut report = test_report(vec![det(1, 6, 5_000)], vec![inj(1, 1_000), inj(2, 4_900)]);
        assert_eq!(detection_latencies(&report), vec![4_000]);
        report.detections[0].main_core = 3;
        assert!(
            detection_latencies(&report).is_empty(),
            "no injection on main 3"
        );
    }

    #[test]
    fn double_detection_cannot_double_count_one_injection() {
        // Regression: two detections follow one injection on the same
        // main. The latest-preceding rule matched both (detected >
        // injected); one-to-one consumption matches exactly one.
        let report = test_report(
            vec![det(1, 6, 5_000), det(1, 6, 7_500)],
            vec![inj(1, 1_000)],
        );
        let latencies = detection_latencies(&report);
        assert_eq!(latencies, vec![4_000]);
        assert!(
            latencies.len() <= report.injections.len(),
            "detected must never exceed injected"
        );
    }

    #[test]
    fn dense_same_main_shots_match_fifo_not_latest() {
        // Two shots, two detections: the old rule matched BOTH
        // detections to the newest shot (latencies 100 and 1_100);
        // FIFO consumption attributes one pair each.
        let report = test_report(
            vec![det(0, 4, 5_000), det(0, 4, 6_000)],
            vec![inj(0, 1_000), inj(0, 4_900)],
        );
        assert_eq!(detection_latencies(&report), vec![4_000, 1_100]);
    }
}
