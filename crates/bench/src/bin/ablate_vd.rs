//! Virtual-deadline ablation: §V fixes `D' = D/2` (double-check) and
//! `(√2 − 1)·D ≈ 0.414·D` (triple-check) as the density-minimising
//! split. Sweeping a uniform fraction θ shows schedulability peaking
//! around those values.
//!
//! Usage: `ablate_vd [--sets N]`

use flexstep_bench::ablate::vd_sweep;
use flexstep_sched::Fig5Config;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sets = args
        .iter()
        .position(|a| a == "--sets")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    let thetas = [0.20, 0.30, 0.40, 0.414, 0.50, 0.60, 0.70, 0.80];
    let utils = [0.45, 0.55, 0.65];

    println!("Virtual-deadline ablation — acceptance % per θ (uniform for V2+V3)");
    println!();
    println!("config A: m=8, n=160, α=25%, β=0% (V2 only; paper optimum θ=0.5)");
    print_table(
        &thetas,
        &utils,
        &vd_sweep(
            &Fig5Config {
                m: 8,
                n: 160,
                alpha: 0.25,
                beta: 0.0,
            },
            &thetas,
            &utils,
            sets,
            21,
        ),
    );
    println!();
    println!("config B: m=8, n=160, α=0%, β=25% (V3 only; paper optimum θ≈0.414)");
    print_table(
        &thetas,
        &utils,
        &vd_sweep(
            &Fig5Config {
                m: 8,
                n: 160,
                alpha: 0.0,
                beta: 0.25,
            },
            &thetas,
            &utils,
            sets,
            22,
        ),
    );
}

fn print_table(thetas: &[f64], utils: &[f64], rows: &[flexstep_bench::ablate::VdSweepRow]) {
    print!("{:>7}", "θ");
    for u in utils {
        print!(" {:>9}", format!("U={u:.2}"));
    }
    println!();
    for (t, r) in thetas.iter().zip(rows) {
        print!("{t:>7.3}");
        for a in &r.acceptance {
            print!(" {a:>9.1}");
        }
        println!();
    }
}
