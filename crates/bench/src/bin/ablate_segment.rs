//! Segment-length ablation: the §III-A 5 000-instruction limit trades
//! checkpoint overhead (slowdown) against detection latency.
//!
//! Usage: `ablate_segment [--scale test|small|medium] [--injections N]`

use flexstep_bench::ablate::segment_sweep;
use flexstep_workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) if s == "small" => Scale::Small,
        Some(s) if s == "medium" => Scale::Medium,
        _ => Scale::Test,
    };
    let injections = args
        .iter()
        .position(|a| a == "--injections")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let limits = [500, 1_000, 2_500, 5_000, 10_000, 20_000];
    println!("Segment-length ablation (paper default: 5000 instructions)");
    for name in ["blackscholes", "libquantum"] {
        let w = by_name(name).expect("known workload");
        let rows = segment_sweep(&w, scale, &limits, injections, 0xF1E0 + name.len() as u64);
        println!();
        println!("workload: {name}");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "limit", "slowdown", "segments", "mean lat µs", "p99 lat µs", "max lat µs"
        );
        for r in &rows {
            let (mean, p99, max) = r.latency.map_or((f64::NAN, f64::NAN, f64::NAN), |s| {
                (s.mean_us, s.p99_us, s.max_us)
            });
            println!(
                "{:>8} {:>10.4} {:>10} {:>12.2} {:>12.2} {:>12.2}",
                r.limit, r.slowdown, r.segments, mean, p99, max
            );
        }
    }
}
