//! Tab. III: average power and area of Vanilla and FlexStep 4-core SoCs,
//! with the full synthesis-report-style component breakdown.

use flexstep_soc::{flexstep_soc, vanilla_soc};

fn main() {
    let v = vanilla_soc(4);
    let f = flexstep_soc(4);
    println!("Tab. III — 4-core SoC, TSMC 28 nm");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "", "Vanilla", "FlexStep", "overhead"
    );
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>9.2}%",
        "power (W)",
        v.power_w(),
        f.power_w(),
        100.0 * (f.power_w() - v.power_w()) / v.power_w()
    );
    println!(
        "{:<12} {:>10.2} {:>10.2} {:>9.2}%",
        "area (mm²)",
        v.area_mm2(),
        f.area_mm2(),
        100.0 * (f.area_mm2() - v.area_mm2()) / v.area_mm2()
    );
    println!();
    println!("{v}");
    println!("{f}");
}
