//! FIFO-capacity ablation: the §III-C buffering decides how far a
//! checker may lag; without DMA spill a small SRAM hard-backpressures
//! the main core.
//!
//! Usage: `ablate_fifo [--scale test|small|medium]`

use flexstep_bench::ablate::fifo_sweep;
use flexstep_workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) if s == "small" => Scale::Small,
        Some(s) if s == "medium" => Scale::Medium,
        _ => Scale::Test,
    };

    let sizes = [272, 544, 1_088, 2_176, 4_352, 17_408];
    println!("DBC SRAM capacity ablation (paper default: 1088 B + DMA spill)");
    for name in ["dedup", "swaptions"] {
        let w = by_name(name).expect("known workload");
        let rows = fifo_sweep(&w, scale, &sizes);
        println!();
        println!("workload: {name}");
        println!(
            "{:>9} {:>6} {:>10} {:>14} {:>10} {:>10}",
            "SRAM B", "spill", "slowdown", "backpressure", "spilled", "peak B"
        );
        for r in &rows {
            println!(
                "{:>9} {:>6} {:>10.4} {:>14} {:>10} {:>10}",
                r.entry_bytes,
                r.dma_spill,
                r.slowdown,
                r.backpressure_stalls,
                r.spilled_packets,
                r.peak_used_bytes
            );
        }
    }
}
