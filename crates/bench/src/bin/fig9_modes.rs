//! Fig. 9: the reliability-mode sweep — per-mode slowdown, checkpoint
//! overhead, coverage and detection latency, plus the dynamic-pairing
//! probe (mid-run checker release/re-acquire on the shared-checker
//! topology), emitted as a JSON artifact.
//!
//! Usage: `fig9_modes [--quick] [--out PATH]`
//!
//! - `--quick`: reduced sweep for CI (60 shots per mode).
//! - `--out PATH`: JSON artifact path (default `FIG9_MODES.json`).
//!
//! The artifact is gated on the Fig. 9 hard invariants: checked modes
//! cover ≥ 99 % of landed shots, `FullLockstep` runs have zero
//! unchecked cycles, mean detection latency is monotone in strictness
//! (`FullLockstep` ≤ `SegmentCheck` ≤ `CheckpointOnly`), every
//! `Unchecked` shot expires with a typed warning, and the pairing
//! probe must release, re-acquire, and warn at least once.

use flexstep_bench::modes::{fig9_json, mode_sweep, pairing_probe, ModeRow, ModeSweepConfig};
use flexstep_bench::{arg_value, run_bin, write_artifact, BenchError};
use flexstep_bench::{LatencyStats, ReliabilityMode};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin(run)
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "FIG9_MODES.json".into());
    let cfg = if quick {
        ModeSweepConfig::quick()
    } else {
        ModeSweepConfig::full()
    };

    println!("Fig. 9 — reliability modes: overhead vs. detection latency");
    println!(
        "{:>16} {:>9} {:>9} {:>10} {:>8} {:>6} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "mode",
        "slowdown",
        "checked%",
        "cp stalls",
        "segs",
        "armed",
        "landed",
        "det",
        "expired",
        "cov/land",
        "mean µs",
        "p99 µs",
        "max µs"
    );
    let rows = mode_sweep(&cfg)?;
    for row in &rows {
        print_row(row);
    }
    check_rows(&cfg, &rows)?;

    let probe = pairing_probe(&cfg)?;
    println!();
    println!(
        "pairing probe: {} releases, {} re-acquires, {} checked / {} released cycles, \
         {} window warnings, {} segments verified",
        probe.releases,
        probe.acquires,
        probe.checked_cycles,
        probe.unchecked_cycles,
        probe.window_warnings,
        probe.segments_checked,
    );
    if !probe.completed {
        return Err(BenchError::Invariant(
            "pairing probe runs did not finish".into(),
        ));
    }
    if probe.releases == 0 || probe.acquires == 0 {
        return Err(BenchError::Invariant(format!(
            "pairing probe must release and re-acquire mid-run, got {} releases / {} acquires",
            probe.releases, probe.acquires
        )));
    }
    if probe.window_warnings == 0 {
        return Err(BenchError::Invariant(
            "a shot expiring in a released window must raise a typed warning".into(),
        ));
    }

    let json = fig9_json(&cfg, &rows, &probe);
    write_artifact(&out_path, &json)?;
    println!();
    println!("wrote {out_path}");
    Ok(())
}

fn fmt_stats(stats: &Option<LatencyStats>) -> (String, String, String) {
    stats.map_or(("n/a".into(), "n/a".into(), "n/a".into()), |s| {
        (
            format!("{:.2}", s.mean_us),
            format!("{:.2}", s.p99_us),
            format!("{:.2}", s.max_us),
        )
    })
}

fn print_row(row: &ModeRow) {
    let (mean, p99, max) = fmt_stats(&row.stats);
    println!(
        "{:>16} {:>8.2}x {:>8.1}% {:>10} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7.1}% {:>8} {:>8} {:>8}",
        row.mode.label(),
        row.slowdown,
        100.0 * row.checked_fraction(),
        row.cp_stall_cycles,
        row.segments_checked,
        row.armed,
        row.landed,
        row.detected,
        row.expired,
        100.0 * row.coverage_landed(),
        mean,
        p99,
        max,
    );
}

fn check_rows(cfg: &ModeSweepConfig, rows: &[ModeRow]) -> Result<(), BenchError> {
    let by_mode = |m: ReliabilityMode| -> Result<&ModeRow, BenchError> {
        rows.iter()
            .find(|r| r.mode == m)
            .ok_or_else(|| BenchError::Invariant(format!("sweep produced no {m} row")))
    };
    for row in rows {
        if !row.completed {
            return Err(BenchError::Invariant(format!(
                "{} runs did not finish",
                row.mode
            )));
        }
        if row.armed != cfg.armed() || row.landed + row.expired != row.armed {
            return Err(BenchError::Invariant(format!(
                "{}: every armed shot must land or expire, got {} armed / {} landed / {} expired",
                row.mode, row.armed, row.landed, row.expired
            )));
        }
        if row.detected > row.landed {
            return Err(BenchError::Invariant(format!(
                "{}: attribution must hold detected <= landed, got {}/{}",
                row.mode, row.detected, row.landed
            )));
        }
        if row.mode.is_checked() && row.coverage_landed() < 0.99 {
            return Err(BenchError::Invariant(format!(
                "{}: checked modes must cover >= 99% of landed shots, got {:.1}%",
                row.mode,
                100.0 * row.coverage_landed()
            )));
        }
    }
    let lockstep = by_mode(ReliabilityMode::FullLockstep)?;
    if lockstep.unchecked_cycles != 0 {
        return Err(BenchError::Invariant(format!(
            "FullLockstep must leave no cycle unchecked, got {}",
            lockstep.unchecked_cycles
        )));
    }
    let unchecked = by_mode(ReliabilityMode::Unchecked)?;
    if unchecked.detected != 0
        || unchecked.expired != unchecked.armed
        || unchecked.unchecked_warnings != unchecked.armed
    {
        return Err(BenchError::Invariant(format!(
            "Unchecked shots must all expire with typed warnings, got \
             {} detected / {} expired / {} warnings of {} armed",
            unchecked.detected, unchecked.expired, unchecked.unchecked_warnings, unchecked.armed
        )));
    }
    let mean = |r: &ModeRow| -> Result<f64, BenchError> {
        r.stats
            .as_ref()
            .map(|s| s.mean_us)
            .ok_or_else(|| BenchError::Invariant(format!("{} detected nothing", r.mode)))
    };
    let (l, s, c) = (
        mean(lockstep)?,
        mean(by_mode(ReliabilityMode::SegmentCheck)?)?,
        mean(by_mode(ReliabilityMode::CheckpointOnly)?)?,
    );
    if !(l <= s && s <= c) {
        return Err(BenchError::Invariant(format!(
            "mean detection latency must be monotone in strictness, got \
             lockstep {l:.2} µs / segment_check {s:.2} µs / checkpoint_only {c:.2} µs"
        )));
    }
    Ok(())
}
