//! Fig. 1: the motivating dual-core scenario scheduled under LockStep,
//! HMR and FlexStep — reproduces the paper's qualitative outcomes
//! (LockStep and HMR each lose a τ1 deadline; FlexStep meets everything).
//!
//! Usage: `fig1 [--horizon T]`

use flexstep_sched::motivating::{gantt, simulate, Arch, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scenario = Scenario::paper();
    if let Some(h) = arg_value(&args, "--horizon").and_then(|v| v.parse().ok()) {
        scenario.horizon = h;
    }

    println!("Fig. 1 — scheduling on dual-core architectures");
    println!(
        "tasks: τ1 (C=15, T=20, non-verification), τ2 (C=10, T=50, emergency: first job checked), τ3 (C=8, T=15, non-verification)"
    );
    println!("legend: digit = original execution, v = verification, . = idle\n");

    for (arch, caption) in [
        (
            Arch::LockStep,
            "(a) LockStep: fixed main core 0 & checker core 1",
        ),
        (
            Arch::Hmr,
            "(b) HMR: limited flexibility and synchronous checking",
        ),
        (
            Arch::FlexStep,
            "(c) FlexStep: asynchronous, selective, preemptive checking",
        ),
    ] {
        let outcome = simulate(&scenario, arch);
        println!("{caption}");
        println!("{}", gantt(&scenario, &outcome));
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
