//! Wall-clock performance report for the checker-replay hot path.
//!
//! Re-runs the `flexstep_pipeline` and `dbc_fifo` microbenches plus a
//! `run_to_completion` macro-bench under a plain `Instant`-based
//! harness, A/B's the event-queue scheduler against the naive linear
//! scan, A/B's the segment-verdict memo on its best-case control-loop
//! workload (DESIGN.md §13), A/B's the in-order pipeline against the
//! OoO superscalar main model (ISSUE 9), and writes everything as JSON
//! (default `BENCH_pr10.json`) via the shared [`flexstep_core::json`]
//! writer.
//!
//! Usage: `perf_report [--quick] [--naive] [--guard] [--baseline PATH] [--out PATH]`
//!
//! - `--quick`: reduced repetitions (CI keep-alive — proves the binary
//!   and the measurement path work, not a stable measurement).
//! - `--naive`: force the naive linear-scan scheduler on every run (the
//!   macro A/B runs both regardless; this flips the default used by the
//!   pipeline/macro sections for external A/B driving).
//! - `--guard`: exit non-zero if the memo-on control-loop run regresses
//!   below PR 2's dual-core pipeline figure (2.2251e7 steps/s) — the CI
//!   floor for the PR 6 datapath — or if the Detect-policy pipeline's
//!   ns/step drifts more than 1.5x above the figure recorded in the
//!   baseline artifact (recovery bookkeeping must stay free on the
//!   Detect path; the slack absorbs container wall-clock jitter). Also
//!   re-validates `SchedMode::SCAN_CROSSOVER` against the scheduler
//!   scaling microbench: at every measured core count, `Adaptive` must
//!   not have picked an engine measuring >1.25x slower than the other.
//! - `--baseline PATH`: baseline artifact the guard diffs against
//!   (default `BENCH_pr9.json`; skipped with a warning if absent).
//! - `--out PATH`: output file (default `BENCH_pr10.json`).
//!
//! The embedded `seed_baseline` block records the same microbenches
//! measured at the pre-optimisation commit (`cargo bench`, same
//! container class) so the report always carries its before/after table.

use flexstep_bench::{run_bin, write_artifact, BenchError, FabricConfig, Scenario, VerifiedRun};
use flexstep_core::json::JsonObject;
use flexstep_core::{BufferFifo, LogEntry, LogKind, Packet};
use flexstep_isa::asm::Program;
use flexstep_sim::{SchedMode, Soc, SocConfig};
use flexstep_workloads::builder::control_loop_kernel;
use flexstep_workloads::{by_name, Scale};
use std::process::ExitCode;
use std::time::Instant;

/// Microbench numbers measured at the seed commit (db8f81f) with
/// `cargo bench --bench microbench` on the same container, before the
/// event-queue scheduler, zero-copy DBC datapath, L0 fetch buffer and
/// page-map changes landed. Seconds per iteration (min/mean over 10
/// samples).
const SEED_BASELINE: &[(&str, f64, f64)] = &[
    (
        "flexstep_pipeline/dual_core_verified_run",
        38.365e-3,
        40.422e-3,
    ),
    ("simulator/unverified_run", 11.121e-3, 13.447e-3),
    ("dbc_fifo/push_pop_1_consumer", 229.816e-6, 238.194e-6),
    ("dbc_fifo/push_pop_2_consumers", 386.476e-6, 397.305e-6),
];

/// PR 2's dual-core pipeline throughput (BENCH_pr2.json,
/// `flexstep_pipeline/dual_core_verified_run.steps_per_sec`): the floor
/// `--guard` enforces on the memo-on control-loop run.
const PR2_DUAL_CORE_STEPS_PER_SEC: f64 = 2.2251e7;

/// Wall-clock slack the `--guard` ns/step diff allows over the PR 6
/// baseline before calling it a regression.
const GUARD_NS_PER_STEP_SLACK: f64 = 1.5;

struct Args {
    quick: bool,
    naive: bool,
    guard: bool,
    baseline: String,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag = |k: &str| argv.iter().any(|a| a == k);
    Args {
        quick: flag("--quick"),
        naive: flag("--naive"),
        guard: flag("--guard"),
        baseline: flexstep_bench::arg_value(&argv, "--baseline")
            .unwrap_or_else(|| "BENCH_pr9.json".into()),
        out: flexstep_bench::arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_pr10.json".into()),
    }
}

/// Times `f` `reps` times after one untimed warm-up; returns
/// (min, mean) seconds. The first error aborts the measurement.
fn time_reps<T>(
    reps: usize,
    mut f: impl FnMut() -> Result<T, BenchError>,
) -> Result<(f64, f64), BenchError> {
    std::hint::black_box(f()?);
    let mut min = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f()?);
        let s = t.elapsed().as_secs_f64();
        min = min.min(s);
        sum += s;
    }
    Ok((min, sum / reps as f64))
}

/// Fails with [`BenchError::Invariant`] unless `cond` holds.
fn ensure(cond: bool, msg: &str) -> Result<(), BenchError> {
    if cond {
        Ok(())
    } else {
        Err(BenchError::Invariant(msg.into()))
    }
}

/// A measurement object: min/mean seconds plus caller-added fields.
fn bench_obj(min_s: f64, mean_s: f64) -> JsonObject {
    let mut o = JsonObject::new();
    o.field_raw("min_s", &format!("{min_s:.6e}"))
        .field_raw("mean_s", &format!("{mean_s:.6e}"));
    o
}

/// The dual-core pipeline scenario every section runs.
fn dual_core(program: &Program) -> Result<VerifiedRun, BenchError> {
    Ok(Scenario::new(program)
        .cores(2)
        .fabric(FabricConfig::paper())
        .build()?)
}

/// Pulls `"key": <number>` out of the flat object following
/// `"section": {` in a report written by [`flexstep_core::json`] — just
/// enough parsing to diff one scalar against a baseline artifact.
fn extract_f64(json: &str, section: &str, key: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"{section}\": {{"))?..];
    let obj = &obj[..obj.find('}')?];
    let v = &obj[obj.find(&format!("\"{key}\": "))? + key.len() + 4..];
    let end = v.find([',', '}']).unwrap_or(v.len());
    v[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    run_bin(run)
}

fn run() -> Result<(), BenchError> {
    let args = parse_args();
    // `--naive` forces the reference linear scan; otherwise runs keep the
    // SoC's adaptive default (linear scan below SCAN_CROSSOVER cores, so
    // at dual-core scale the two coincide — the pipeline speedup vs the
    // seed comes from the datapath, and the scheduler section below
    // shows where the event queue pays).
    let forced = args.naive.then_some(SchedMode::LinearScan);
    let reps = if args.quick { 2 } else { 8 };
    let mut out = JsonObject::new();
    {
        let mut meta = JsonObject::new();
        meta.field_str("tool", "perf_report")
            .field_bool("quick", args.quick)
            .field_bool("forced_naive", args.naive)
            .field_u64("reps", reps as u64);
        out.field_raw("meta", &meta.finish());
    }

    // --- flexstep_pipeline/dual_core_verified_run -----------------------
    let program = by_name("libquantum")
        .ok_or_else(|| BenchError::UnknownWorkload("libquantum".into()))?
        .program(Scale::Test);
    let mut steps = 0u64;
    let mut retired = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let (pipe_min, pipe_mean) = time_reps(reps, || {
        let mut run = dual_core(&program)?;
        if let Some(m) = forced {
            run.set_sched_mode(m);
        }
        let r = run.run_to_completion(200_000_000);
        ensure(
            r.completed && r.segments_failed == 0,
            "dual-core pipeline run must complete clean",
        )?;
        steps = r.engine_steps;
        retired = r.retired;
        hits = run.fabric().stats.memo_hits;
        misses = run.fabric().stats.memo_misses;
        Ok(r.segments_checked)
    })?;
    let pipeline_ns_per_step = pipe_min * 1e9 / steps as f64;
    {
        let mut o = bench_obj(pipe_min, pipe_mean);
        o.field_u64("engine_steps", steps)
            .field_u64("retired", retired)
            .field_raw("steps_per_sec", &format!("{:.4e}", steps as f64 / pipe_min))
            .field_f64("ns_per_step", pipeline_ns_per_step)
            .field_u64("memo_hits", hits)
            .field_u64("memo_misses", misses);
        out.field_raw("flexstep_pipeline/dual_core_verified_run", &o.finish());
    }

    // --- guard: Detect-path ns/step vs the baseline artifact ------------
    // The default scenario carries `RecoveryPolicy::Detect`, so this run
    // IS the Detect path: its ns/step must not drift from what the
    // previous PR recorded — rollback bookkeeping has to stay free when
    // disabled.
    if args.guard {
        match std::fs::read_to_string(&args.baseline) {
            Ok(base) => {
                let base_ns = extract_f64(
                    &base,
                    "flexstep_pipeline/dual_core_verified_run",
                    "ns_per_step",
                )
                .ok_or_else(|| {
                    BenchError::Invariant(format!(
                        "baseline {} has no pipeline ns_per_step field",
                        args.baseline
                    ))
                })?;
                if pipeline_ns_per_step > base_ns * GUARD_NS_PER_STEP_SLACK {
                    return Err(BenchError::Invariant(format!(
                        "Detect-path regression: pipeline ran at {pipeline_ns_per_step:.2} \
                         ns/step, more than {GUARD_NS_PER_STEP_SLACK}x the {base_ns:.2} ns/step \
                         recorded in {}",
                        args.baseline
                    )));
                }
                println!(
                    "guard: Detect ns/step {pipeline_ns_per_step:.2} vs baseline {base_ns:.2} — ok"
                );
            }
            Err(e) => eprintln!(
                "warning: --guard skipping ns/step diff, cannot read {}: {e}",
                args.baseline
            ),
        }
    }

    // --- memo A/B: segment-verdict cache on its best-case workload ------
    // A segment-aligned stateless control loop (DESIGN.md §13): with the
    // memo on, all but one segment per repetition replays from the cache.
    // Reports are bit-identical either way; only wall-clock moves.
    {
        let seg = FabricConfig::paper().segment_limit as i64;
        let ctrl = control_loop_kernel("control_loop", seg, 50, if args.quick { 4 } else { 12 });
        let mut memo_obj = JsonObject::new();
        let mut mins = Vec::new();
        for (label, enabled) in [("memo_off", false), ("memo_on", true)] {
            let mut ctrl_steps = 0u64;
            let mut h = 0u64;
            let mut m = 0u64;
            let (mn, me) = time_reps(reps, || {
                let mut run = Scenario::new(&ctrl)
                    .cores(2)
                    .fabric(FabricConfig::paper())
                    .memo(enabled)
                    .build()?;
                if let Some(fm) = forced {
                    run.set_sched_mode(fm);
                }
                let r = run.run_to_completion(400_000_000);
                ensure(
                    r.completed && r.segments_failed == 0,
                    "control-loop run must complete clean",
                )?;
                ctrl_steps = r.engine_steps;
                h = run.fabric().stats.memo_hits;
                m = run.fabric().stats.memo_misses;
                Ok(r.drain_cycle)
            })?;
            let mut o = bench_obj(mn, me);
            o.field_u64("engine_steps", ctrl_steps)
                .field_raw("steps_per_sec", &format!("{:.4e}", ctrl_steps as f64 / mn))
                .field_f64("ns_per_step", mn * 1e9 / ctrl_steps as f64);
            if enabled {
                o.field_u64("memo_hits", h).field_u64("memo_misses", m);
                if h + m > 0 {
                    o.field_f64("hit_rate", h as f64 / (h + m) as f64);
                }
            }
            memo_obj.field_raw(label, &o.finish());
            mins.push((mn, ctrl_steps));
        }
        memo_obj.field_f64("memo_speedup", mins[0].0 / mins[1].0);
        let memo_on_sps = mins[1].1 as f64 / mins[1].0;
        memo_obj.field_f64(
            "memo_on_vs_pr2_dual_core",
            memo_on_sps / PR2_DUAL_CORE_STEPS_PER_SEC,
        );
        out.field_raw("memo/control_loop_ab", &memo_obj.finish());
        if args.guard && memo_on_sps < PR2_DUAL_CORE_STEPS_PER_SEC {
            return Err(BenchError::Invariant(format!(
                "memo-on control loop ran at {memo_on_sps:.4e} steps/s, \
                 below the PR 2 dual-core floor of {PR2_DUAL_CORE_STEPS_PER_SEC:.4e}"
            )));
        }
    }

    // --- core-model A/B: in-order vs OoO superscalar mains --------------
    // Same dual-core verified pipeline, main model swapped. The OoO main
    // packs branch-outcome packets into its stream, so this also times
    // the forwarding datapath end to end. Simulation throughput
    // (steps/s) is the cost axis; simulated main IPC is the fidelity
    // axis the model exists for.
    {
        let mut models_obj = JsonObject::new();
        let mut sps = Vec::new();
        for (label, kind) in [
            ("inorder", flexstep_core::CoreModelKind::InOrder),
            ("ooo", flexstep_core::CoreModelKind::ooo()),
        ] {
            let mut msteps = 0u64;
            let mut ipc = 0.0;
            let (mn, me) = time_reps(reps, || {
                let mut run = Scenario::new(&program)
                    .cores(2)
                    .fabric(FabricConfig::paper())
                    .main_core_model(kind)
                    .build()?;
                if let Some(fm) = forced {
                    run.set_sched_mode(fm);
                }
                let r = run.run_to_completion(200_000_000);
                ensure(
                    r.completed && r.segments_failed == 0,
                    "core-model A/B run must complete clean",
                )?;
                msteps = r.engine_steps;
                ipc = run.soc().core(0).ipc();
                Ok(r.drain_cycle)
            })?;
            let mut o = bench_obj(mn, me);
            o.field_u64("engine_steps", msteps)
                .field_raw("steps_per_sec", &format!("{:.4e}", msteps as f64 / mn))
                .field_f64("ns_per_step", mn * 1e9 / msteps as f64)
                .field_f64("main_ipc", ipc);
            models_obj.field_raw(label, &o.finish());
            sps.push(msteps as f64 / mn);
        }
        models_obj.field_f64("ooo_vs_inorder_steps_per_sec", sps[1] / sps[0]);
        out.field_raw("core_models/inorder_vs_ooo", &models_obj.finish());
    }

    // --- macro-bench: run_to_completion, both schedulers ----------------
    {
        let mut macro_obj = JsonObject::new();
        let mut per_mode = Vec::new();
        for (label, m) in [
            ("event_queue", SchedMode::EventQueue),
            ("linear_scan", SchedMode::LinearScan),
        ] {
            let (mn, me) = time_reps(reps, || {
                let mut run = dual_core(&program)?;
                run.set_sched_mode(m);
                let r = run.run_to_completion(200_000_000);
                ensure(r.completed, "macro-bench run must complete")?;
                Ok(r.drain_cycle)
            })?;
            let mut o = bench_obj(mn, me);
            o.field_f64("ns_per_step", mn * 1e9 / steps as f64);
            macro_obj.field_raw(label, &o.finish());
            per_mode.push(mn);
        }
        macro_obj.field_f64("event_vs_naive_speedup", per_mode[1] / per_mode[0]);
        out.field_raw("macro/run_to_completion_sched_ab", &macro_obj.finish());
    }

    // --- unverified simulator throughput --------------------------------
    let (mn, me) = time_reps(reps, || {
        let mut soc =
            Soc::new(SocConfig::paper(1)).map_err(|e| BenchError::Config(e.to_string()))?;
        Ok(soc.run_to_ecall(&program, 50_000_000))
    })?;
    out.field_raw("simulator/unverified_run", &bench_obj(mn, me).finish());

    // --- dbc_fifo microbenches ------------------------------------------
    let entry = |i: u64| {
        Packet::Mem(LogEntry {
            kind: LogKind::Load,
            addr: 0x1000 + i * 8,
            size: 8,
            data: i,
        })
    };
    let push_err = |_| BenchError::Invariant("dbc microbench fifo overflowed".into());
    let fifo_reps = reps * 16;
    let (mn, me) = time_reps(fifo_reps, || {
        let mut f = BufferFifo::new(1088, 4);
        f.set_spill(true);
        for i in 0..4096u64 {
            f.push(entry(i)).map_err(push_err)?;
            if i % 2 == 1 {
                std::hint::black_box(f.pop(0));
                std::hint::black_box(f.pop(0));
            }
        }
        Ok(f.total_pushed())
    })?;
    out.field_raw("dbc_fifo/push_pop_1_consumer", &bench_obj(mn, me).finish());
    let (mn, me) = time_reps(fifo_reps, || {
        let mut f = BufferFifo::new(1088, 4);
        f.set_spill(true);
        let burst: Vec<Packet> = (0..8).map(entry).collect();
        for _ in 0..512 {
            f.push_burst(&burst).map_err(push_err)?;
            for _ in 0..8 {
                std::hint::black_box(f.pop(0));
            }
        }
        Ok(f.total_pushed())
    })?;
    out.field_raw(
        "dbc_fifo/push_burst_pop_1_consumer",
        &bench_obj(mn, me).finish(),
    );

    // --- scheduler scaling microbench -----------------------------------
    // Pure next_ready+stall loops at growing core counts: the event
    // queue's O(log n) against the naive O(n) scan. This is the
    // measurement behind `SchedMode::SCAN_CROSSOVER`.
    {
        let mut sched_obj = JsonObject::new();
        let iters = if args.quick { 20_000 } else { 200_000 };
        for n in [2usize, 8, 16, 32, 64] {
            let mut per_mode = Vec::new();
            for m in [SchedMode::EventQueue, SchedMode::LinearScan] {
                let (mn, _) = time_reps(3, || {
                    let mut soc = Soc::new(SocConfig::paper(n))
                        .map_err(|e| BenchError::Config(e.to_string()))?;
                    soc.set_sched_mode(m);
                    let mut x = 0x9e3779b97f4a7c15u64;
                    for i in 0..n {
                        soc.core_mut(i).unpark();
                    }
                    for _ in 0..iters {
                        let id = soc
                            .next_ready()
                            .ok_or_else(|| BenchError::Invariant("no core ready".into()))?;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        soc.stall_core(id, 1 + (x % 64));
                    }
                    Ok(soc.now())
                })?;
                per_mode.push(mn * 1e9 / iters as f64);
            }
            let mut o = JsonObject::new();
            o.field_f64("event_queue_ns_per_step", per_mode[0])
                .field_f64("linear_scan_ns_per_step", per_mode[1]);
            sched_obj.field_raw(&format!("cores_{n}"), &o.finish());
            // Crossover guard: `Adaptive` must resolve to whichever
            // engine this very table measured faster, at every core
            // count. A 1.25x slack keeps container jitter from tripping
            // it near the crossing (16 cores sits ~8% apart); a
            // mis-set `SCAN_CROSSOVER` picks the wrong engine where
            // the gap is wide (1.6x at 8 cores, 2.6x at 64) and fails
            // regardless of jitter.
            if args.guard {
                let (event_ns, linear_ns) = (per_mode[0], per_mode[1]);
                let (chosen, chosen_ns, other_ns) = match SchedMode::Adaptive.resolve(n) {
                    SchedMode::EventQueue => ("event_queue", event_ns, linear_ns),
                    _ => ("linear_scan", linear_ns, event_ns),
                };
                if chosen_ns > other_ns * 1.25 {
                    return Err(BenchError::Invariant(format!(
                        "SCAN_CROSSOVER={} mis-set: Adaptive picks {chosen} at {n} cores, \
                         but it measured {chosen_ns:.1} ns/step vs {other_ns:.1} for the \
                         other engine",
                        SchedMode::SCAN_CROSSOVER
                    )));
                }
                println!(
                    "guard: scheduler @{n} cores — Adaptive -> {chosen} \
                     ({chosen_ns:.1} ns/step vs {other_ns:.1}) — ok"
                );
            }
        }
        sched_obj.field_u64("iters", iters as u64);
        out.field_raw("scheduler/next_ready_scaling", &sched_obj.finish());
    }

    // --- embedded seed baseline -----------------------------------------
    {
        let mut base_obj = JsonObject::new();
        base_obj
            .field_str("commit", "db8f81f")
            .field_str("harness", "cargo bench --bench microbench");
        for (name, mn, me) in SEED_BASELINE {
            let mut o = JsonObject::new();
            o.field_raw("min_s", &format!("{mn:.6e}"))
                .field_raw("mean_s", &format!("{me:.6e}"));
            base_obj.field_raw(name, &o.finish());
        }
        base_obj.field_str(
            "note",
            "measured before the PR 2 scheduler/DBC/fetch-path changes",
        );
        out.field_raw("seed_baseline", &base_obj.finish());
    }
    {
        let mut o = JsonObject::new();
        o.field_f64("min", SEED_BASELINE[0].1 / pipe_min)
            .field_f64("mean", SEED_BASELINE[0].2 / pipe_mean);
        out.field_raw("pipeline_speedup_vs_seed", &o.finish());
    }

    let json = out.finish();
    write_artifact(&args.out, &json)?;
    println!("{json}");
    println!("wrote {}", args.out);
    Ok(())
}
