//! Fault-coverage sweep: detection coverage per corrupted packet class
//! and burst width, with the detection point (log / ECP / count / replay
//! fault) tabulated — backs the paper's ">99.9% of hardware faults"
//! coverage claim with a per-class breakdown.
//!
//! Usage: `fault_coverage [--workload NAME] [--per-cell N] [--seed S] [--scale test|small|medium]`

use flexstep_bench::coverage::{coverage_campaign, DetectionPoint};
use flexstep_workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = arg_value(&args, "--workload").unwrap_or_else(|| "dedup".into());
    let per_cell: usize = arg_value(&args, "--per-cell")
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(13);
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Test,
    };
    let workload = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(2);
    });

    println!("Fault-coverage sweep — {name}, {per_cell} injections/cell");
    println!(
        "{:<12} {:>4} {:>5} {:>5} {:>9}  {:>5} {:>5} {:>5} {:>5}",
        "target", "bits", "inj", "det", "coverage", "log", "ecp", "count", "fault"
    );
    let points = [
        DetectionPoint::LogCompare,
        DetectionPoint::EcpCompare,
        DetectionPoint::CountCheck,
        DetectionPoint::ReplayFault,
    ];
    for row in coverage_campaign(&workload, scale, per_cell, seed) {
        print!(
            "{:<12} {:>4} {:>5} {:>5} {:>8.1}%",
            row.target.to_string(),
            row.bits,
            row.injected,
            row.detected,
            row.coverage_pct()
        );
        for p in points {
            print!("  {:>4}", row.by_point.get(&p).copied().unwrap_or(0));
        }
        println!();
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
