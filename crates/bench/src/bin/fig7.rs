//! Fig. 7: probability distribution of error-detection latency per
//! Parsec workload under random fault injection into forwarded data.
//!
//! Usage: `fig7 [--injections N] [--seed S] [--scale test|small|medium]`

use flexstep_bench::{fig7_parallel, latency_histogram};
use flexstep_workloads::{parsec, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let injections: usize = arg_value(&args, "--injections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Test,
    };

    println!("Fig. 7 — error-detection latency (µs), {injections} injections/workload");
    println!(
        "{:<16} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8}  histogram 0..120µs",
        "workload", "inj", "det", "mean", "p50", "p99", "max"
    );
    for row in fig7_parallel(&parsec(), scale, injections, seed) {
        match &row.stats {
            Some(s) => println!(
                "{:<16} {:>5} {:>5} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  |{}|",
                row.name,
                row.injected,
                row.detected,
                s.mean_us,
                s.p50_us,
                s.p99_us,
                s.max_us,
                latency_histogram(&row.latencies_us),
            ),
            None => println!(
                "{:<16} {:>5} {:>5}  (no detections)",
                row.name, row.injected, 0
            ),
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
