//! Fig. 4: performance slowdown of LockStep, FlexStep and Nzdc on the
//! Parsec and SPECint suites.
//!
//! Usage: `fig4 [--suite parsec|spec|all] [--scale test|small|medium]`

use flexstep_bench::{fig4_parallel, geomean};
use flexstep_workloads::{parsec, spec, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suite = arg_value(&args, "--suite").unwrap_or_else(|| "all".into());
    let scale = parse_scale(&args);

    if suite == "parsec" || suite == "all" {
        print_suite(
            "Fig. 4(a) — Parsec (v3.0)",
            &fig4_parallel(&parsec(), scale),
        );
    }
    if suite == "spec" || suite == "all" {
        print_suite(
            "Fig. 4(b) — Full SPECint CPU2006",
            &fig4_parallel(&spec(), scale),
        );
    }
}

fn print_suite(title: &str, rows: &[flexstep_bench::Fig4Row]) {
    println!("{title}");
    println!(
        "{:<16} {:>9} {:>9} {:>9}",
        "workload", "LockStep", "FlexStep", "Nzdc"
    );
    for r in rows {
        let nzdc = r.nzdc.map_or("n/a".into(), |v| format!("{v:.3}"));
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9}",
            r.name, r.lockstep, r.flexstep, nzdc
        );
    }
    println!(
        "{:<16} {:>9.3} {:>9.3} {:>9.3}",
        "geomean",
        geomean(rows.iter().map(|r| r.lockstep)),
        geomean(rows.iter().map(|r| r.flexstep)),
        geomean(rows.iter().filter_map(|r| r.nzdc)),
    );
    println!();
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_scale(args: &[String]) -> Scale {
    match arg_value(args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        _ => Scale::Test,
    }
}
