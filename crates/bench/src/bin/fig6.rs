//! Fig. 6: Parsec slowdown in dual-core vs triple-core verification mode.
//!
//! Usage: `fig6 [--scale test|small|medium]`

use flexstep_bench::{fig6_parallel, geomean};
use flexstep_workloads::{parsec, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) if s == "small" => Scale::Small,
        Some(s) if s == "medium" => Scale::Medium,
        _ => Scale::Test,
    };
    let rows = fig6_parallel(&parsec(), scale);
    println!("Fig. 6 — verification-mode slowdown (Parsec)");
    println!(
        "{:<16} {:>12} {:>12}",
        "workload", "dual-core", "triple-core"
    );
    for r in &rows {
        println!("{:<16} {:>12.4} {:>12.4}", r.name, r.dual, r.triple);
    }
    println!(
        "{:<16} {:>12.4} {:>12.4}",
        "geomean",
        geomean(rows.iter().map(|r| r.dual)),
        geomean(rows.iter().map(|r| r.triple)),
    );
}
