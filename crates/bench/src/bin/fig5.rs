//! Fig. 5: percentage of schedulable task sets under LockStep, HMR and
//! FlexStep across utilisations and system configurations (a)–(f).
//!
//! Usage: `fig5 [--sets N] [--seed S] [--plot a|b|c|d|e|f]`

use flexstep_sched::{paper_utilization_axis, sweep_parallel, Fig5Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sets: usize = arg_value(&args, "--sets")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2025);
    let only = arg_value(&args, "--plot");
    let axis = paper_utilization_axis();

    for (label, cfg) in Fig5Config::paper_all() {
        if let Some(want) = &only {
            if want != &label.to_string() {
                continue;
            }
        }
        println!(
            "Fig. 5({label}): m={}, n={}, α={:.2}%, β={:.2}%   ({sets} sets/point)",
            cfg.m,
            cfg.n,
            cfg.alpha * 100.0,
            cfg.beta * 100.0
        );
        println!(
            "{:>6} {:>10} {:>8} {:>10}",
            "util", "LockStep", "HMR", "FlexStep"
        );
        for p in sweep_parallel(&cfg, &axis, sets, seed) {
            println!(
                "{:>6.2} {:>9.1}% {:>7.1}% {:>9.1}%",
                p.utilization, p.lockstep, p.hmr, p.flexstep
            );
        }
        println!();
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}
