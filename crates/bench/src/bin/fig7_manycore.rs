//! Fig. 7 × Fig. 8: the many-core fault-injection campaign — thousands
//! of `FaultPlan` shots across 16/32/64-core shared-checker SoCs, with
//! per-main and per-checker-pool detection-latency distributions and
//! coverage (detected/landed and detected/armed), emitted as a JSON
//! artifact.
//!
//! Usage: `fig7_manycore [--quick] [--recovery] [--cores N] [--out PATH] [--trace PATH]`
//!
//! - `--quick`: one 64-core campaign with 240 armed shots (CI).
//! - `--recovery`: run under `RecoveryPolicy::Rollback { max_retries: 3 }`
//!   — rows additionally report recovered/unrecovered counts and the
//!   detect → verified-again latency distribution.
//! - `--cores N`: override the core counts with a single count.
//! - `--out PATH`: JSON artifact path (default `FIG7_MANYCORE.json`).
//! - `--trace PATH`: additionally record the first row's chunk-0
//!   schedule as size-bounded Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or Perfetto).

use flexstep_bench::campaign::{fig7_manycore_sweep_recovery, CampaignRow};
use flexstep_bench::{arg_value, latency_histogram, run_bin, write_artifact, BenchError};
use flexstep_bench::{LatencyStats, RecoveryPolicy};
use flexstep_core::json::{array, JsonObject};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin(run)
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let recover = args.iter().any(|a| a == "--recovery");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "FIG7_MANYCORE.json".into());
    let trace_path = arg_value(&args, "--trace");
    let cores: Vec<usize> = match arg_value(&args, "--cores") {
        Some(v) => {
            let n = v
                .parse()
                .map_err(|_| BenchError::Config(format!("--cores expects a number, got {v:?}")))?;
            vec![n]
        }
        // Quick keeps the 64-core row: the artifact's floor is a
        // >=64-core campaign with >=200 armed shots.
        None if quick => vec![64],
        None => vec![16, 32, 64],
    };
    let policy = if recover {
        RecoveryPolicy::Rollback { max_retries: 3 }
    } else {
        RecoveryPolicy::Detect
    };

    println!("Fig. 7 (many-core) — error-detection latency under a shared-checker campaign");
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}  histogram 0..120µs",
        "cores", "mains", "pools", "armed", "landed", "det", "expired", "cov/land", "cov/armed",
        "mean µs", "p99 µs", "max µs"
    );
    let trace = trace_path.as_ref().map(std::path::Path::new);
    let rows = fig7_manycore_sweep_recovery(&cores, quick, trace, policy)?;
    let mut rows_json = Vec::new();
    for row in &rows {
        if !row.completed {
            return Err(BenchError::Invariant(format!(
                "campaign chunks did not finish at {} cores",
                row.cores
            )));
        }
        if !(row.detected <= row.landed && row.landed <= row.armed) {
            return Err(BenchError::Invariant(format!(
                "attribution must hold detected <= landed <= armed, got {}/{}/{} at {} cores",
                row.detected, row.landed, row.armed, row.cores
            )));
        }
        print_row(row, recover);
        rows_json.push(row.to_json());
    }

    let mut out = JsonObject::new();
    {
        let mut meta = JsonObject::new();
        meta.field_str("tool", "fig7_manycore")
            .field_bool("quick", quick)
            .field_bool("recovery", recover);
        if recover {
            meta.field_u64("max_retries", 3);
        }
        out.field_raw("meta", &meta.finish());
    }
    out.field_raw("rows", &array(&rows_json));
    let json = out.finish();
    write_artifact(&out_path, &json)?;
    println!();
    println!("wrote {out_path}");
    if let Some(path) = &trace_path {
        println!("wrote schedule trace {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn fmt_stats(stats: &Option<LatencyStats>) -> (String, String, String) {
    stats.map_or(("n/a".into(), "n/a".into(), "n/a".into()), |s| {
        (
            format!("{:.1}", s.mean_us),
            format!("{:.1}", s.p99_us),
            format!("{:.1}", s.max_us),
        )
    })
}

fn print_row(row: &CampaignRow, recover: bool) {
    let (mean, p99, max) = fmt_stats(&row.stats);
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7.1}% {:>7.1}% {:>8} {:>8} {:>8}  |{}|",
        row.cores,
        row.mains,
        row.checkers,
        row.armed,
        row.landed,
        row.detected,
        row.expired,
        100.0 * row.coverage_landed(),
        100.0 * row.coverage_armed(),
        mean,
        p99,
        max,
        latency_histogram(&row.latencies_us),
    );
    if recover {
        let (mean, p99, max) = fmt_stats(&row.recovery_stats);
        println!(
            "       recovery: {:>4} recovered {:>4} unrecovered  rate {:>6.1}%  \
             latency mean {mean} µs p99 {p99} µs max {max} µs",
            row.recovered,
            row.unrecovered,
            100.0 * row.recovery_rate(),
        );
    }
    for pool in &row.per_pool {
        let mean = pool
            .stats
            .map_or("n/a".into(), |s| format!("{:.1}", s.mean_us));
        println!(
            "       pool @core {:>3}: {:>4} armed {:>4} landed {:>4} detected  mean {:>7} µs",
            pool.core, pool.armed, pool.landed, pool.detected, mean
        );
    }
}
