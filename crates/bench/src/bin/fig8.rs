//! Fig. 8: average power and area of Vanilla vs FlexStep SoCs from 2 to
//! 32 cores (analytical 28 nm model calibrated to the paper's anchors).

use flexstep_soc::{flexstep_soc, vanilla_soc};

fn main() {
    println!("Fig. 8(a) — average power (W)");
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "cores", "Vanilla", "FlexStep", "overhead"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let v = vanilla_soc(n);
        let f = flexstep_soc(n);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>8.2}%",
            n,
            v.power_w(),
            f.power_w(),
            100.0 * (f.power_w() - v.power_w()) / v.power_w()
        );
    }
    println!();
    println!("Fig. 8(b) — area (mm²)");
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "cores", "Vanilla", "FlexStep", "overhead"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let v = vanilla_soc(n);
        let f = flexstep_soc(n);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>8.2}%",
            n,
            v.area_mm2(),
            f.area_mm2(),
            100.0 * (f.area_mm2() - v.area_mm2()) / v.area_mm2()
        );
    }
}
