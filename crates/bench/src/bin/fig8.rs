//! Fig. 8: many-core scaling — the analytical 28 nm area/power model
//! (2–32 cores, calibrated to the paper's anchors) **plus** actual
//! many-core simulations: 16/32/64-core SoCs with §III-C shared-checker
//! pools built through the `Scenario` front door, reporting detection
//! latency and scheduler scaling, and emitting a JSON artifact.
//!
//! Usage: `fig8 [--quick] [--no-sim] [--ooo] [--out PATH] [--trace PATH]`
//!
//! - `--quick`: 16-core simulation only, reduced workloads (CI).
//! - `--no-sim`: analytical model tables only.
//! - `--ooo`: additionally run the heterogeneous core-model sweep —
//!   every checker tier × {in-order, OoO} mains on a memory-bound
//!   workload, reporting the checker-vs-main IPC balance and campaign
//!   coverage per cell (ISSUE 9).
//! - `--out PATH`: JSON artifact path (default `FIG8.json`).
//! - `--trace PATH`: additionally record the first simulated row's
//!   schedule as size-bounded Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or Perfetto).

use flexstep_bench::manycore::{fig8_sweep_traced, hetero_sweep};
use flexstep_bench::{arg_value, run_bin, write_artifact, BenchError};
use flexstep_core::json::{array, JsonObject};
use flexstep_soc::{flexstep_soc, vanilla_soc};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin(run)
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().collect();
    let flag = |k: &str| args.iter().any(|a| a == k);
    let quick = flag("--quick");
    let no_sim = flag("--no-sim");
    let ooo = flag("--ooo");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "FIG8.json".into());
    let trace_path = arg_value(&args, "--trace");
    if no_sim && trace_path.is_some() {
        eprintln!("warning: --trace ignored with --no-sim (the trace records a simulated run)");
    }

    // --- analytical model (the paper's actual Fig. 8) -------------------
    println!("Fig. 8(a) — average power (W)");
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "cores", "Vanilla", "FlexStep", "overhead"
    );
    let mut model_rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let v = vanilla_soc(n);
        let f = flexstep_soc(n);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>8.2}%",
            n,
            v.power_w(),
            f.power_w(),
            100.0 * (f.power_w() - v.power_w()) / v.power_w()
        );
        let mut o = JsonObject::new();
        o.field_u64("cores", n as u64)
            .field_f64("vanilla_power_w", v.power_w())
            .field_f64("flexstep_power_w", f.power_w())
            .field_f64("vanilla_area_mm2", v.area_mm2())
            .field_f64("flexstep_area_mm2", f.area_mm2());
        model_rows.push(o.finish());
    }
    println!();
    println!("Fig. 8(b) — area (mm²)");
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "cores", "Vanilla", "FlexStep", "overhead"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let v = vanilla_soc(n);
        let f = flexstep_soc(n);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>8.2}%",
            n,
            v.area_mm2(),
            f.area_mm2(),
            100.0 * (f.area_mm2() - v.area_mm2()) / v.area_mm2()
        );
    }

    // --- many-core shared-checker simulations ---------------------------
    let mut sim_rows_json = Vec::new();
    if !no_sim {
        let cores: &[usize] = if quick { &[16] } else { &[16, 32, 64] };
        println!();
        println!("Fig. 8(c) — simulated many-core SoCs with shared-checker pools");
        println!(
            "{:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>5} {:>5} {:>12} {:>9}",
            "cores",
            "mains",
            "chk",
            "steps",
            "steps/s",
            "segments",
            "inj",
            "det",
            "latency µs",
            "switches"
        );
        let trace = trace_path.as_ref().map(std::path::Path::new);
        for row in fig8_sweep_traced(cores, quick, trace) {
            if !row.completed {
                return Err(BenchError::Invariant(format!(
                    "many-core run did not finish within budget at {} cores",
                    row.cores
                )));
            }
            println!(
                "{:>6} {:>6} {:>6} {:>12} {:>12.3e} {:>9} {:>5} {:>5} {:>12} {:>9}",
                row.cores,
                row.mains,
                row.checkers,
                row.engine_steps,
                row.steps_per_sec,
                row.segments_checked,
                row.injected,
                row.detected,
                row.mean_detection_latency_us
                    .map_or("n/a".into(), |v| format!("{v:.2}")),
                row.arbiter_switches,
            );
            sim_rows_json.push(row.to_json());
        }
        if let Some(path) = &trace_path {
            println!();
            println!("wrote schedule trace {path} (open in chrome://tracing or Perfetto)");
        }
    }

    // --- heterogeneous core-model sweep (--ooo) --------------------------
    let mut ooo_rows_json = Vec::new();
    if ooo {
        let cores: &[usize] = if quick { &[16] } else { &[16, 32] };
        println!();
        println!("Fig. 8(d) — heterogeneous mains: checker tiers x core models");
        println!(
            "{:>6} {:>6} {:>6} {:>6} {:>8} {:>9} {:>11} {:>5} {:>5} {:>9}",
            "cores",
            "mains",
            "chk",
            "tier",
            "model",
            "main IPC",
            "checker IPC",
            "inj",
            "det",
            "coverage"
        );
        for row in hetero_sweep(cores, quick) {
            if !row.completed {
                return Err(BenchError::Invariant(format!(
                    "heterogeneous run did not finish at {} cores ({} mains, tier {})",
                    row.cores, row.model, row.tier
                )));
            }
            println!(
                "{:>6} {:>6} {:>6} {:>6} {:>8} {:>9.3} {:>11.3} {:>5} {:>5} {:>8.1}%",
                row.cores,
                row.mains,
                row.checkers,
                row.tier,
                row.model.label(),
                row.main_ipc,
                row.checker_ipc,
                row.injected,
                row.detected,
                row.coverage_pct(),
            );
            // The §IV sizing argument this sweep exists to demonstrate:
            // log-backed replay with forwarded outcomes keeps every
            // checker tier's IPC at or above its mains' — even OoO
            // mains — while the campaign stays covered.
            if row.checker_ipc < row.main_ipc {
                return Err(BenchError::Invariant(format!(
                    "checker IPC {:.3} fell below main IPC {:.3} at {} cores tier {} ({})",
                    row.checker_ipc, row.main_ipc, row.cores, row.tier, row.model
                )));
            }
            if row.coverage_pct() < 99.0 {
                return Err(BenchError::Invariant(format!(
                    "campaign coverage {:.1}% below 99% at {} cores tier {} ({})",
                    row.coverage_pct(),
                    row.cores,
                    row.tier,
                    row.model
                )));
            }
            ooo_rows_json.push(row.to_json());
        }
    }

    // --- JSON artifact ---------------------------------------------------
    let mut out = JsonObject::new();
    {
        let mut meta = JsonObject::new();
        meta.field_str("tool", "fig8")
            .field_bool("quick", quick)
            .field_bool("simulated", !no_sim)
            .field_bool("ooo", ooo);
        out.field_raw("meta", &meta.finish());
    }
    out.field_raw("model", &array(&model_rows));
    out.field_raw("simulation", &array(&sim_rows_json));
    if ooo {
        out.field_raw("ooo", &array(&ooo_rows_json));
    }
    let json = out.finish();
    write_artifact(&out_path, &json)?;
    println!();
    println!("wrote {out_path}");
    Ok(())
}
