//! Ablation studies over FlexStep's design knobs (DESIGN.md §7).
//!
//! Three sweeps, each isolating one design choice the paper fixes:
//!
//! - **Segment length** (`ablate_segment`): the §III-A 5 000-instruction
//!   limit trades checkpoint-extraction overhead (slowdown) against
//!   detection latency — shorter segments detect faster but checkpoint
//!   more often.
//! - **FIFO capacity / DMA spill** (`ablate_fifo`): the §III-C buffering
//!   decides how far a checker may lag; without spill, a small SRAM hard-
//!   backpressures the main core.
//! - **Virtual deadline** (`ablate_vd`): §V fixes `D' = D/2` (V2) and
//!   `(√2 − 1)·D` (V3) as the density-minimising split; the sweep shows
//!   schedulability peaking there.

use crate::{dual_core_run, fig7_campaign_with, MAX_INSTRUCTIONS, MAX_STEPS};
use flexstep_core::harness::baseline_cycles;
use flexstep_core::{FabricConfig, LatencyStats};
use flexstep_sched::model::VdPolicy;
use flexstep_sched::partition::{Partitioner, VdFlexStepPartitioner};
use flexstep_sched::uunifast::{generate, GenParams};
use flexstep_sched::Fig5Config;
use flexstep_workloads::{Scale, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the segment-length ablation.
#[derive(Debug, Clone)]
pub struct SegmentSweepRow {
    /// The checking-segment instruction limit.
    pub limit: u64,
    /// Main-core slowdown vs unprotected execution.
    pub slowdown: f64,
    /// Segments produced over the run.
    pub segments: u64,
    /// Detection-latency statistics from an injection campaign.
    pub latency: Option<LatencyStats>,
}

/// Sweeps the checking-segment instruction limit on one workload,
/// measuring slowdown and detection latency at each point.
///
/// # Panics
///
/// Panics if the workload fails to run to completion.
pub fn segment_sweep(
    workload: &Workload,
    scale: Scale,
    limits: &[u64],
    injections: usize,
    seed: u64,
) -> Vec<SegmentSweepRow> {
    let program = workload.program(scale);
    let base = baseline_cycles(&program, MAX_INSTRUCTIONS).expect("baseline runs");
    limits
        .iter()
        .map(|&limit| {
            let fabric = FabricConfig {
                segment_limit: limit,
                ..FabricConfig::paper()
            };
            let mut run = dual_core_run(&program, fabric);
            let report = run.run_to_completion(MAX_STEPS);
            assert!(
                report.completed,
                "{} did not finish at limit {limit}",
                workload.name
            );
            assert_eq!(report.segments_failed, 0, "clean run must verify clean");
            let campaign = fig7_campaign_with(workload, scale, injections, seed, fabric);
            SegmentSweepRow {
                limit,
                slowdown: report.main_finish_cycle as f64 / base as f64,
                segments: report.segments_checked,
                latency: campaign.stats,
            }
        })
        .collect()
}

/// One row of the FIFO-capacity ablation.
#[derive(Debug, Clone)]
pub struct FifoSweepRow {
    /// DBC SRAM entry capacity in bytes.
    pub entry_bytes: usize,
    /// Whether DMA spill to main memory was enabled.
    pub dma_spill: bool,
    /// Main-core slowdown vs unprotected execution.
    pub slowdown: f64,
    /// Steps the main core spent stalled on backpressure.
    pub backpressure_stalls: u64,
    /// Packets that overflowed the SRAM into the DMA spill path.
    pub spilled_packets: u64,
    /// High-water mark of SRAM entry bytes.
    pub peak_used_bytes: usize,
}

/// Sweeps the DBC SRAM capacity with and without DMA spill on one
/// workload.
///
/// # Panics
///
/// Panics if the workload fails to run to completion.
pub fn fifo_sweep(workload: &Workload, scale: Scale, sizes: &[usize]) -> Vec<FifoSweepRow> {
    let program = workload.program(scale);
    let base = baseline_cycles(&program, MAX_INSTRUCTIONS).expect("baseline runs");
    let mut rows = Vec::new();
    for &dma_spill in &[false, true] {
        for &entry_bytes in sizes {
            let fabric = FabricConfig {
                fifo_entry_bytes: entry_bytes,
                dma_spill,
                // SRAM-only mode needs the paper_strict checkpoint budget;
                // with spill the checkpoint slots never bind.
                checkpoint_slots: if dma_spill { 4 } else { 2 },
                ..FabricConfig::paper()
            };
            let mut run = dual_core_run(&program, fabric);
            let report = run.run_to_completion(MAX_STEPS);
            assert!(
                report.completed,
                "{} did not finish at {entry_bytes} B (spill={dma_spill})",
                workload.name
            );
            assert_eq!(report.segments_failed, 0);
            let fifo = &run.fabric().unit(0).fifo;
            rows.push(FifoSweepRow {
                entry_bytes,
                dma_spill,
                slowdown: report.main_finish_cycle as f64 / base as f64,
                backpressure_stalls: report.backpressure_stalls,
                spilled_packets: fifo.spilled_packets(),
                peak_used_bytes: fifo.peak_used_bytes(),
            });
        }
    }
    rows
}

/// One row of the virtual-deadline ablation.
#[derive(Debug, Clone)]
pub struct VdSweepRow {
    /// The uniform deadline fraction `θ` under test.
    pub theta: f64,
    /// Acceptance percentage per requested utilisation point.
    pub acceptance: Vec<f64>,
}

/// Sweeps a uniform virtual-deadline fraction `θ` (applied to both V2
/// and V3 tasks) over UUniFast task sets, reporting the percentage of
/// schedulable sets per utilisation point. The paper's split sits at the
/// acceptance peak.
pub fn vd_sweep(
    config: &Fig5Config,
    thetas: &[f64],
    utils: &[f64],
    sets_per_point: usize,
    seed: u64,
) -> Vec<VdSweepRow> {
    let &Fig5Config { m, n, alpha, beta } = config;
    thetas
        .iter()
        .map(|&theta| {
            let partitioner = VdFlexStepPartitioner::new(VdPolicy::uniform(theta));
            let acceptance = utils
                .iter()
                .enumerate()
                .map(|(pi, &u)| {
                    let mut ok = 0usize;
                    for s in 0..sets_per_point {
                        // The same seeds across θ values: every policy
                        // sees identical task sets.
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ (pi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (s as u64) << 24,
                        );
                        let params = GenParams::paper(n, u * m as f64, alpha, beta);
                        let ts = generate(&mut rng, &params);
                        if partitioner.schedulable(&ts, m) {
                            ok += 1;
                        }
                    }
                    100.0 * ok as f64 / sets_per_point as f64
                })
                .collect();
            VdSweepRow { theta, acceptance }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_workloads::by_name;

    #[test]
    fn shorter_segments_more_checkpoints() {
        let w = by_name("libquantum").unwrap();
        let rows = segment_sweep(&w, Scale::Test, &[500, 5000], 0, 1);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].segments > rows[1].segments,
            "500-instruction segments must outnumber 5000-instruction ones: {rows:?}"
        );
        assert!(
            rows[0].slowdown >= rows[1].slowdown - 0.005,
            "more checkpoints cost more"
        );
        for r in &rows {
            assert!(r.slowdown >= 1.0 && r.slowdown < 1.5);
        }
    }

    #[test]
    fn shorter_segments_detect_faster() {
        let w = by_name("libquantum").unwrap();
        let rows = segment_sweep(&w, Scale::Test, &[500, 10_000], 8, 3);
        let (short, long) = (&rows[0], &rows[1]);
        let (ss, ls) = (
            short.latency.expect("detections"),
            long.latency.expect("detections"),
        );
        assert!(
            ss.mean_us < ls.mean_us + 1e-9,
            "short segments cannot detect slower on average: {ss:?} vs {ls:?}"
        );
    }

    #[test]
    fn tiny_sram_without_spill_backpressures() {
        let w = by_name("dedup").unwrap();
        let rows = fifo_sweep(&w, Scale::Test, &[272, 4352]);
        let strict_small = rows
            .iter()
            .find(|r| !r.dma_spill && r.entry_bytes == 272)
            .unwrap();
        let spill_small = rows
            .iter()
            .find(|r| r.dma_spill && r.entry_bytes == 272)
            .unwrap();
        assert!(
            strict_small.backpressure_stalls > spill_small.backpressure_stalls,
            "hard SRAM bound must stall more: {rows:?}"
        );
        assert_eq!(
            spill_small.backpressure_stalls, 0,
            "spill never backpressures"
        );
        assert!(spill_small.spilled_packets > 0, "small SRAM must spill");
        for r in &rows {
            assert!(r.peak_used_bytes <= r.entry_bytes || r.dma_spill);
        }
    }

    #[test]
    fn paper_theta_peaks_acceptance() {
        let thetas = [0.3, 0.5, 0.7];
        let cfg = Fig5Config {
            m: 4,
            n: 16,
            alpha: 0.25,
            beta: 0.0,
        };
        let rows = vd_sweep(&cfg, &thetas, &[0.55], 60, 11);
        let at = |theta: f64| {
            rows.iter()
                .find(|r| (r.theta - theta).abs() < 1e-9)
                .unwrap()
                .acceptance[0]
        };
        assert!(
            at(0.5) >= at(0.3),
            "paper split beats a tight original window"
        );
        assert!(
            at(0.5) >= at(0.7),
            "paper split beats a tight checking window"
        );
    }
}
