//! Fault-coverage sweep (DESIGN.md §7 extension).
//!
//! The paper claims FlexStep's detection "is sufficient to cover over
//! 99.9% of hardware faults"; Fig. 7 measures *latency* but not coverage
//! per fault class. This sweep injects targeted faults — per packet class
//! (entry address / entry data / checkpoint / instruction count) and per
//! burst width (1, 2, 8 flipped bits) — and classifies each outcome by
//! *where* the checker caught it (log compare, ECP compare, count check,
//! replay derailment), giving the coverage table the paper's claim
//! implies.

use crate::{dual_core_run, MAX_STEPS};
use flexstep_core::{FabricConfig, FaultPlan, FaultTarget, MismatchKind, Scenario};
use flexstep_workloads::{Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Where a detection fired, coarsened from [`MismatchKind`] for tabulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetectionPoint {
    /// Caught comparing a memory-access log entry (address, data or kind).
    LogCompare,
    /// Caught at the end-checkpoint architectural-state comparison.
    EcpCompare,
    /// Caught by the instruction-count protocol (overrun/underrun).
    CountCheck,
    /// The corrupted state derailed replay into a fault.
    ReplayFault,
}

impl DetectionPoint {
    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            DetectionPoint::LogCompare => "log",
            DetectionPoint::EcpCompare => "ecp",
            DetectionPoint::CountCheck => "count",
            DetectionPoint::ReplayFault => "fault",
        }
    }
}

/// Coarsens a mismatch into its detection point.
pub fn detection_point(kind: &MismatchKind) -> DetectionPoint {
    match kind {
        MismatchKind::LogKind { .. }
        | MismatchKind::LogAddr { .. }
        | MismatchKind::LogData { .. } => DetectionPoint::LogCompare,
        MismatchKind::Ecp { .. } => DetectionPoint::EcpCompare,
        // Forwarded-outcome divergence is caught while walking the log,
        // before the count/ECP checks fire.
        MismatchKind::BranchOutcome { .. } => DetectionPoint::LogCompare,
        MismatchKind::CountOverrun { .. } | MismatchKind::LogUnderrun => DetectionPoint::CountCheck,
        MismatchKind::CheckerFault { .. } => DetectionPoint::ReplayFault,
    }
}

/// One row of the coverage sweep: a (target, burst-width) cell.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Packet class corrupted.
    pub target: FaultTarget,
    /// Bits flipped per injection.
    pub bits: u32,
    /// Successful injections.
    pub injected: usize,
    /// Injections detected before the run drained.
    pub detected: usize,
    /// Detections per detection point.
    pub by_point: BTreeMap<DetectionPoint, usize>,
}

impl CoverageRow {
    /// Detection coverage in percent.
    pub fn coverage_pct(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            100.0 * self.detected as f64 / self.injected as f64
        }
    }
}

/// The sweep grid: every packet class × burst widths 1, 2 and 8.
pub fn sweep_grid() -> Vec<(FaultTarget, u32)> {
    let targets = [
        FaultTarget::EntryAddr,
        FaultTarget::EntryData,
        FaultTarget::Checkpoint,
        FaultTarget::InstCount,
    ];
    let widths = [1u32, 2, 8];
    targets
        .iter()
        .flat_map(|&t| widths.iter().map(move |&b| (t, b)))
        .collect()
}

/// Runs the coverage campaign on one workload: `per_cell` injections for
/// every (target, bits) grid cell.
///
/// # Panics
///
/// Panics if the workload fails to run to completion fault-free (a bug,
/// not a result).
pub fn coverage_campaign(
    workload: &Workload,
    scale: Scale,
    per_cell: usize,
    seed: u64,
) -> Vec<CoverageRow> {
    let program = workload.program(scale);
    // Fault-free span for drawing injection instants.
    let mut probe = dual_core_run(&program, FabricConfig::paper());
    let span = probe.run_to_completion(MAX_STEPS);
    assert!(span.completed, "{} did not finish", workload.name);
    let horizon = span.main_finish_cycle.max(1);

    sweep_grid()
        .into_iter()
        .map(|(target, bits)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (bits as u64) << 32 ^ target_salt(target));
            let mut injected = 0;
            let mut detected = 0;
            let mut by_point: BTreeMap<DetectionPoint, usize> = BTreeMap::new();
            for _ in 0..per_cell {
                let at = rng.gen_range(horizon / 20..horizon);
                // Declarative targeted shot: arms at `at`, fires once a
                // packet of the requested class is in flight. Runs that
                // end first report no injection and are skipped.
                let shot_seed: u64 = rng.gen();
                let mut run = Scenario::new(&program)
                    .cores(2)
                    .fault_plan(
                        FaultPlan::bit_flip_at(at, target)
                            .bits(bits)
                            .with_seed(shot_seed),
                    )
                    .build()
                    .expect("setup");
                let report = run.run_to_completion(MAX_STEPS);
                if report.injections.is_empty() {
                    continue;
                }
                injected += 1;
                if let Some(d) = report.detections.first() {
                    detected += 1;
                    *by_point.entry(detection_point(&d.kind)).or_insert(0) += 1;
                }
            }
            CoverageRow {
                target,
                bits,
                injected,
                detected,
                by_point,
            }
        })
        .collect()
}

fn target_salt(target: FaultTarget) -> u64 {
    match target {
        FaultTarget::EntryAddr => 0x9E37_79B9,
        FaultTarget::EntryData => 0x85EB_CA6B,
        FaultTarget::Checkpoint => 0xC2B2_AE35,
        FaultTarget::InstCount => 0x27D4_EB2F,
        FaultTarget::BranchOutcome => 0x1656_67B1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexstep_workloads::by_name;

    #[test]
    fn grid_covers_all_targets_and_widths() {
        let g = sweep_grid();
        assert_eq!(g.len(), 12);
        assert!(g
            .iter()
            .any(|&(t, b)| t == FaultTarget::InstCount && b == 8));
    }

    #[test]
    fn detection_points_coarsen_every_kind() {
        assert_eq!(
            detection_point(&MismatchKind::LogAddr {
                expected: 0,
                actual: 1
            }),
            DetectionPoint::LogCompare
        );
        assert_eq!(
            detection_point(&MismatchKind::Ecp { diffs: vec![] }),
            DetectionPoint::EcpCompare
        );
        assert_eq!(
            detection_point(&MismatchKind::CountOverrun {
                expected: 1,
                actual: 2
            }),
            DetectionPoint::CountCheck
        );
        assert_eq!(
            detection_point(&MismatchKind::LogUnderrun),
            DetectionPoint::CountCheck
        );
        assert_eq!(
            detection_point(&MismatchKind::CheckerFault { what: "x".into() }),
            DetectionPoint::ReplayFault
        );
    }

    #[test]
    fn campaign_detects_single_bit_data_faults() {
        let w = by_name("libquantum").unwrap();
        let rows = coverage_campaign(&w, Scale::Test, 6, 99);
        let data1 = rows
            .iter()
            .find(|r| r.target == FaultTarget::EntryData && r.bits == 1)
            .expect("grid cell present");
        assert!(
            data1.injected >= 3,
            "injections must land: {}",
            data1.injected
        );
        assert!(
            data1.detected * 10 >= data1.injected * 7,
            "single-bit data faults are overwhelmingly detected: {}/{}",
            data1.detected,
            data1.injected
        );
    }

    #[test]
    fn coverage_pct_arithmetic() {
        let row = CoverageRow {
            target: FaultTarget::EntryData,
            bits: 1,
            injected: 8,
            detected: 6,
            by_point: BTreeMap::new(),
        };
        assert!((row.coverage_pct() - 75.0).abs() < 1e-12);
        let empty = CoverageRow {
            injected: 0,
            detected: 0,
            ..row
        };
        assert_eq!(empty.coverage_pct(), 0.0);
    }
}
